"""Classical network provenance (positive and negative).

This package provides the provenance graphs of Section 3.1 of the paper:
data-only causality between tuples, built from the NDlog engine's event and
derivation history.  Meta provenance (Section 3.2 onwards) builds on top of
it and lives in :mod:`repro.meta`.
"""

from .graph import ProvenanceGraph
from .query import ProvenanceQuery
from .vertices import (
    APPEAR,
    DELETE,
    DERIVE,
    DISAPPEAR,
    EXIST,
    INSERT,
    NAPPEAR,
    NDERIVE,
    NEGATIVE_KINDS,
    NEXIST,
    NINSERT,
    NRECEIVE,
    NSEND,
    POSITIVE_KINDS,
    RECEIVE,
    SEND,
    TuplePattern,
    UNDERIVE,
    Vertex,
    is_negative,
    negative_twin,
)

__all__ = [
    "ProvenanceGraph", "ProvenanceQuery",
    "APPEAR", "DELETE", "DERIVE", "DISAPPEAR", "EXIST", "INSERT",
    "NAPPEAR", "NDERIVE", "NEGATIVE_KINDS", "NEXIST", "NINSERT",
    "NRECEIVE", "NSEND", "POSITIVE_KINDS", "RECEIVE", "SEND",
    "TuplePattern", "UNDERIVE", "Vertex", "is_negative", "negative_twin",
]
