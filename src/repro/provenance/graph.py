"""The provenance graph data structure.

A provenance graph is a DAG whose vertices are events (:class:`Vertex`) and
whose edges point from an effect to its direct causes, so that the *leaves*
reached from the root are base-tuple insertions (or, for negative provenance,
missing base tuples).  The graph is built by :mod:`repro.provenance.query`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .vertices import Vertex


class ProvenanceGraph:
    """A rooted DAG of provenance vertices.

    Edges are stored effect -> causes ("the children of a vertex are its
    direct causes"), matching the QUERY(v) convention of Section 3.5.
    """

    def __init__(self, root: Optional[Vertex] = None):
        self.root = root
        self._vertices: Dict[int, Vertex] = {}
        self._children: Dict[int, List[int]] = {}
        self._parents: Dict[int, List[int]] = {}
        if root is not None:
            self.add_vertex(root)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_vertex(self, vertex: Vertex) -> Vertex:
        self._vertices.setdefault(vertex.vertex_id, vertex)
        self._children.setdefault(vertex.vertex_id, [])
        self._parents.setdefault(vertex.vertex_id, [])
        if self.root is None:
            self.root = vertex
        return vertex

    def add_edge(self, effect: Vertex, cause: Vertex):
        """Record that ``cause`` directly caused ``effect``."""
        self.add_vertex(effect)
        self.add_vertex(cause)
        if cause.vertex_id not in self._children[effect.vertex_id]:
            self._children[effect.vertex_id].append(cause.vertex_id)
            self._parents[cause.vertex_id].append(effect.vertex_id)

    def add_cause_chain(self, effect: Vertex, causes: Iterable[Vertex]):
        for cause in causes:
            self.add_edge(effect, cause)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def vertices(self) -> List[Vertex]:
        return list(self._vertices.values())

    def causes(self, vertex: Vertex) -> List[Vertex]:
        return [self._vertices[i] for i in self._children.get(vertex.vertex_id, [])]

    def effects(self, vertex: Vertex) -> List[Vertex]:
        return [self._vertices[i] for i in self._parents.get(vertex.vertex_id, [])]

    def leaves(self) -> List[Vertex]:
        return [v for v in self._vertices.values()
                if not self._children.get(v.vertex_id)]

    def size(self) -> int:
        return len(self._vertices)

    def depth(self) -> int:
        """Longest root-to-leaf path length (in edges)."""
        if self.root is None:
            return 0
        best = 0
        stack = [(self.root, 0)]
        seen: Set[Tuple[int, int]] = set()
        while stack:
            vertex, depth = stack.pop()
            best = max(best, depth)
            for cause in self.causes(vertex):
                key = (vertex.vertex_id, cause.vertex_id)
                if key in seen:
                    continue
                seen.add(key)
                stack.append((cause, depth + 1))
        return best

    def walk(self) -> Iterator[Tuple[Vertex, int]]:
        """Breadth-first traversal from the root yielding (vertex, depth)."""
        if self.root is None:
            return
        queue = deque([(self.root, 0)])
        visited = {self.root.vertex_id}
        while queue:
            vertex, depth = queue.popleft()
            yield vertex, depth
            for cause in self.causes(vertex):
                if cause.vertex_id not in visited:
                    visited.add(cause.vertex_id)
                    queue.append((cause, depth + 1))

    def contains_kind(self, kind: str) -> bool:
        return any(v.kind == kind for v in self._vertices.values())

    def find(self, predicate) -> List[Vertex]:
        return [v for v in self._vertices.values() if predicate(v)]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def to_text(self, max_depth: Optional[int] = None) -> str:
        """Render the graph as an indented tree (duplicates shown once)."""
        if self.root is None:
            return "(empty provenance graph)"
        lines: List[str] = []
        seen: Set[int] = set()

        def visit(vertex: Vertex, depth: int):
            if max_depth is not None and depth > max_depth:
                return
            marker = ""
            if vertex.vertex_id in seen:
                marker = " (see above)"
                lines.append("  " * depth + "- " + vertex.label() + marker)
                return
            seen.add(vertex.vertex_id)
            lines.append("  " * depth + "- " + vertex.label())
            for cause in self.causes(vertex):
                visit(cause, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)

    def to_dot(self) -> str:
        """Render the graph in Graphviz DOT format (for documentation)."""
        lines = ["digraph provenance {", "  rankdir=BT;"]
        for vertex in self._vertices.values():
            shape = "box" if not vertex.negative else "octagon"
            label = vertex.label().replace('"', "'")
            lines.append(f'  v{vertex.vertex_id} [label="{label}", shape={shape}];')
        for effect_id, cause_ids in self._children.items():
            for cause_id in cause_ids:
                lines.append(f"  v{cause_id} -> v{effect_id};")
        lines.append("}")
        return "\n".join(lines)

    def __len__(self):
        return self.size()
