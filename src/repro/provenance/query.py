"""Classical (data-only) provenance queries.

Positive provenance explains why a tuple exists: recursively, which rule
firings and which body tuples support it, down to base-tuple insertions.
Negative provenance explains why a tuple is absent: for every rule that could
have derived it, which preconditions failed.

These graphs are what existing SDN debuggers (ExSPAN, SNP, Y!) provide; the
paper's contribution — meta provenance — extends them with program elements
and lives in :mod:`repro.meta`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ndlog.ast import Const, Rule, Var
from ..ndlog.engine import Engine
from ..ndlog.expr import Bindings, evaluate, try_evaluate
from ..ndlog.tuples import NDTuple
from .graph import ProvenanceGraph
from .vertices import (
    APPEAR,
    DERIVE,
    EXIST,
    INSERT,
    NAPPEAR,
    NDERIVE,
    NEXIST,
    NINSERT,
    RECEIVE,
    SEND,
    TuplePattern,
    Vertex,
)


class ProvenanceQuery:
    """Builds provenance graphs from an engine's history."""

    def __init__(self, engine: Engine, max_depth: int = 20):
        self.engine = engine
        self.max_depth = max_depth

    # ------------------------------------------------------------------
    # Positive provenance
    # ------------------------------------------------------------------

    def explain_exists(self, tup: NDTuple) -> ProvenanceGraph:
        """Explain why ``tup`` exists (or existed) in the database."""
        node = tup.location(self.engine.database.schema(tup.table))
        root = Vertex(EXIST, tup, node=node)
        graph = ProvenanceGraph(root)
        self._expand_positive(graph, root, tup, depth=0, on_path=set())
        return graph

    def _expand_positive(self, graph: ProvenanceGraph, vertex: Vertex,
                         tup: NDTuple, depth: int, on_path: Set[NDTuple]):
        if depth > self.max_depth or tup in on_path:
            return
        on_path = on_path | {tup}
        derivations = self.engine.derivations_of(tup)
        if not derivations:
            # A base tuple: its cause is the external insertion.
            node = tup.location(self.engine.database.schema(tup.table))
            insert = Vertex(INSERT, tup, node=node)
            graph.add_edge(vertex, insert)
            return
        for record in derivations:
            derive = Vertex(DERIVE, tup, node=record.node, rule=record.rule,
                            time=record.time)
            graph.add_edge(vertex, derive)
            for body_tuple in record.body:
                body_node = body_tuple.location(
                    self.engine.database.schema(body_tuple.table))
                exist = Vertex(EXIST, body_tuple, node=body_node)
                if body_node is not None and record.node is not None \
                        and body_node != record.node:
                    send = Vertex(SEND, body_tuple, node=body_node)
                    receive = Vertex(RECEIVE, body_tuple, node=record.node)
                    graph.add_edge(derive, receive)
                    graph.add_edge(receive, send)
                    graph.add_edge(send, exist)
                else:
                    graph.add_edge(derive, exist)
                self._expand_positive(graph, exist, body_tuple, depth + 1, on_path)

    # ------------------------------------------------------------------
    # Negative provenance
    # ------------------------------------------------------------------

    def explain_missing(self, pattern: TuplePattern) -> ProvenanceGraph:
        """Explain why no tuple matching ``pattern`` exists."""
        root = Vertex(NEXIST, pattern)
        graph = ProvenanceGraph(root)
        self._expand_negative(graph, root, pattern, depth=0)
        return graph

    def _expand_negative(self, graph: ProvenanceGraph, vertex: Vertex,
                         pattern: TuplePattern, depth: int):
        if depth > self.max_depth:
            return
        rules = self.engine.program.rules_deriving(pattern.table)
        if not rules:
            # Base table: the tuple was simply never inserted.
            graph.add_edge(vertex, Vertex(NINSERT, pattern))
            return
        for rule in rules:
            nderive = Vertex(NDERIVE, pattern, rule=rule.name)
            graph.add_edge(vertex, nderive)
            self._explain_failed_rule(graph, nderive, rule, pattern, depth)

    def _explain_failed_rule(self, graph: ProvenanceGraph, nderive: Vertex,
                             rule: Rule, pattern: TuplePattern, depth: int):
        bindings = self._head_bindings(rule, pattern)
        if bindings is None:
            # A constant in the rule head already contradicts the pattern.
            graph.add_edge(nderive, Vertex(
                NAPPEAR, pattern, rule=rule.name))
            return
        for atom_index, atom in enumerate(rule.body):
            matching = self._matching_tuples(atom, bindings)
            if matching:
                best = matching[0]
                exist = Vertex(EXIST, best,
                               node=best.location(self.engine.database.schema(best.table)))
                graph.add_edge(nderive, exist)
            else:
                body_pattern = self._atom_pattern(atom, bindings)
                nexist = Vertex(NEXIST, body_pattern)
                graph.add_edge(nderive, nexist)
                if depth + 1 <= self.max_depth:
                    self._expand_negative(graph, nexist, body_pattern, depth + 1)
        failed = self._failed_selections(rule, bindings)
        for selection in failed:
            graph.add_edge(nderive, Vertex(
                NAPPEAR,
                TuplePattern("Sel", ((0, rule.name), (1, selection.to_ndlog()))),
                rule=rule.name))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _head_bindings(self, rule: Rule, pattern: TuplePattern) -> Optional[Bindings]:
        """Translate head-column constraints into variable bindings."""
        bindings = Bindings()
        for index, value in pattern.constraints:
            if index >= len(rule.head.args):
                return None
            arg = rule.head.args[index]
            if isinstance(arg, Var):
                if arg.name in bindings and bindings[arg.name] != value:
                    return None
                bindings[arg.name] = value
            elif isinstance(arg, Const):
                if arg.value != value:
                    return None
        # Assignments that fix head variables to constants may also conflict.
        for assignment in rule.assignments:
            if assignment.var in bindings:
                computed = try_evaluate(assignment.expr, bindings)
                if computed is not None and computed != bindings[assignment.var]:
                    return None
        return bindings

    def _matching_tuples(self, atom, bindings: Bindings) -> List[NDTuple]:
        """All historical tuples of the atom's table compatible with bindings."""
        matches = []
        for tup in self._historical_tuples(atom.table):
            if self.engine._match_atom(atom, tup, bindings) is not None:
                matches.append(tup)
        return matches

    def _historical_tuples(self, table) -> List[NDTuple]:
        current = set(self.engine.tuples(table))
        seen = set(current)
        out = list(current)
        for event in self.engine.events:
            if event.tuple.table == table and event.tuple not in seen:
                seen.add(event.tuple)
                out.append(event.tuple)
        return out

    def _atom_pattern(self, atom, bindings: Bindings) -> TuplePattern:
        constraints: Dict[int, object] = {}
        for index, arg in enumerate(atom.args):
            if isinstance(arg, Const):
                constraints[index] = arg.value
            elif isinstance(arg, Var) and arg.name in bindings:
                constraints[index] = bindings[arg.name]
        return TuplePattern.from_dict(atom.table, constraints)

    def _failed_selections(self, rule: Rule, bindings: Bindings):
        """Selections that are already falsified by the head-derived bindings."""
        failed = []
        for selection in rule.selections:
            value = try_evaluate(selection.expr, bindings)
            if value is False:
                failed.append(selection)
        return failed
