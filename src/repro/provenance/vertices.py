"""Vertex types of the (classical) provenance graph.

Section 3.1 of the paper defines positive vertexes (EXIST, INSERT, DELETE,
DERIVE, UNDERIVE, APPEAR, DISAPPEAR, SEND, RECEIVE) and a negative "twin" for
each (NEXIST, NAPPEAR, NDERIVE, ...).  A vertex describes an event concerning
a tuple at a node and time; edges point from an effect to its direct causes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..ndlog.tuples import NDTuple


# Positive vertex kinds.
EXIST = "EXIST"
INSERT = "INSERT"
DELETE = "DELETE"
DERIVE = "DERIVE"
UNDERIVE = "UNDERIVE"
APPEAR = "APPEAR"
DISAPPEAR = "DISAPPEAR"
SEND = "SEND"
RECEIVE = "RECEIVE"

# Negative twins.
NEXIST = "NEXIST"
NINSERT = "NINSERT"
NDERIVE = "NDERIVE"
NAPPEAR = "NAPPEAR"
NSEND = "NSEND"
NRECEIVE = "NRECEIVE"

POSITIVE_KINDS = (EXIST, INSERT, DELETE, DERIVE, UNDERIVE, APPEAR, DISAPPEAR,
                  SEND, RECEIVE)
NEGATIVE_KINDS = (NEXIST, NINSERT, NDERIVE, NAPPEAR, NSEND, NRECEIVE)

_NEGATIVE_TWIN = {
    EXIST: NEXIST,
    INSERT: NINSERT,
    DERIVE: NDERIVE,
    APPEAR: NAPPEAR,
    SEND: NSEND,
    RECEIVE: NRECEIVE,
}


def negative_twin(kind: str) -> str:
    """Return the negative twin of a positive vertex kind."""
    return _NEGATIVE_TWIN[kind]


def is_negative(kind: str) -> bool:
    return kind in NEGATIVE_KINDS


@dataclass(frozen=True)
class TuplePattern:
    """A partially-specified tuple, used by negative vertexes.

    ``constraints`` maps column index to a required value; unspecified
    columns are unconstrained.  A pattern with no constraints describes "any
    tuple of this table".
    """

    table: str
    constraints: Tuple[Tuple[int, object], ...] = ()

    @classmethod
    def from_dict(cls, table: str, constraints: Dict[int, object]) -> "TuplePattern":
        return cls(table, tuple(sorted(constraints.items())))

    def constraints_dict(self) -> Dict[int, object]:
        return dict(self.constraints)

    def matches(self, tup: NDTuple) -> bool:
        if tup.table != self.table:
            return False
        for index, value in self.constraints:
            if index >= len(tup.values) or tup.values[index] != value:
                return False
        return True

    def __str__(self):
        parts = [f"[{i}]={v!r}" for i, v in self.constraints]
        inner = ", ".join(parts) if parts else "..."
        return f"{self.table}({inner})"


_vertex_counter = itertools.count(1)


@dataclass(frozen=True)
class Vertex:
    """One vertex of the provenance graph."""

    kind: str
    subject: object                      # NDTuple or TuplePattern
    node: object = None
    time: Optional[int] = None
    interval: Optional[Tuple[int, Optional[int]]] = None
    rule: Optional[str] = None
    vertex_id: int = field(default_factory=lambda: next(_vertex_counter))

    @property
    def negative(self) -> bool:
        return is_negative(self.kind)

    def label(self) -> str:
        when = ""
        if self.interval is not None:
            end = self.interval[1] if self.interval[1] is not None else "now"
            when = f" @[{self.interval[0]}, {end}]"
        elif self.time is not None:
            when = f" @t={self.time}"
        where = f" on {self.node}" if self.node is not None else ""
        via = f" via {self.rule}" if self.rule else ""
        return f"{self.kind}({self.subject}){via}{where}{when}"

    def __str__(self):
        return self.label()
