"""Constant propagation through joined static tables.

The pass answers two questions, both *proofs* (a positive answer is never
wrong; "don't know" is always safe):

``packet_in_inert(values)``
    Can a PacketIn tuple with these concrete values ever make any rule
    fire?  Generalises the single-variable guard probe: besides constant
    arguments, repeated variables and pushable selection guards (evaluated
    with the engine's own wildcard-aware expression semantics), the pass
    propagates the tuple's constants through *joins with statically
    enumerable tables* — a key whose join column matches no static tuple is
    inert even though every guard alone is satisfiable.

``insert_inert(tup)``
    Is inserting ``tup`` at setup provably invisible to every replay?  True
    when (a) no rule can ever match the tuple (every consuming occurrence
    is ruled out by strict constant mismatch, an impossible wildcard join,
    a refuted guard, or an empty/mismatched static join), (b) the tuple is
    not in the flow table (whose contents are pushed to switches at
    ``on_start``), and (c) no rule could derive a tuple colliding with it
    (a pre-existing copy would suppress the runtime derivation delta, and
    under primary-key update semantics a key collision evicts).

Matching mirrors the engine exactly (see ``Engine._fire_rule`` /
``_match_plan``): constant arguments and variable joins are **strict** —
the wildcard is an ordinary value at the storage layer — while selection
predicates evaluate wildcard-aware (``'*' == x`` holds, ordered comparisons
against ``'*'`` are false).  Event tables (``PacketIn``) carry one axiom:
runtime tuples are built from packet headers and switch identifiers, so
they never contain the wildcard.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..ndlog.ast import (
    Atom, BinOp, Const, Expression, FuncCall, Program, Rule, Var, WILDCARD,
)
from ..ndlog.errors import EvaluationError
from ..ndlog.expr import evaluate
from ..ndlog.tuples import NDTuple, TableSchema


def _contains_call(expr: Expression) -> bool:
    if isinstance(expr, FuncCall):
        return True
    left = getattr(expr, "left", None)
    right = getattr(expr, "right", None)
    return any(_contains_call(sub) for sub in (left, right) if sub is not None)


class ConstantPropagation:
    """Constant propagation over one program plus its static base data."""

    def __init__(self, program: Program,
                 schemas: Optional[Dict[str, TableSchema]] = None,
                 static_tuples: Sequence[NDTuple] = (),
                 event_tables: Iterable[str] = (),
                 flow_table: Optional[str] = None,
                 closed_world: bool = True):
        self.program = program
        self.schemas = schemas or {}
        self.event_tables = set(event_tables)
        self.flow_table = flow_table
        #: Under the closed-world assumption, ``static_tuples`` is the
        #: *complete* extent of every non-derived, non-event table (true for
        #: controllers, whose only base insertions are their static setup
        #: tuples).  Callers that may insert base tuples at runtime must
        #: pass ``closed_world=False``, which disables static-join
        #: enumeration and falls back to guard/shape reasoning only.
        self.closed_world = closed_world
        self._extent: Dict[str, List[NDTuple]] = {}
        for tup in static_tuples:
            self._extent.setdefault(tup.table, []).append(tup)
        self._derived: Set[str] = {rule.head.table for rule in program.rules}
        self._occurrences: Dict[str, List[Tuple[Rule, int]]] = {}
        for rule in program.rules:
            for index, atom in enumerate(rule.body):
                self._occurrences.setdefault(atom.table, []).append(
                    (rule, index))
        self._inert_cache: Dict[Tuple[str, Tuple], Optional[str]] = {}

    # ------------------------------------------------------------------
    # Table classification
    # ------------------------------------------------------------------

    def enumerable(self, table: str) -> bool:
        """Is the table's full runtime extent known statically?

        True for tables that no rule derives and no event populates: their
        contents are exactly the static setup tuples (possibly none).
        Requires the closed-world assumption.
        """
        return (self.closed_world and table not in self._derived
                and table not in self.event_tables)

    def extent(self, table: str) -> List[NDTuple]:
        return self._extent.get(table, [])

    def never_wildcard(self, table: str, column: int) -> bool:
        """Can a tuple of ``table`` provably never carry ``'*'`` at
        ``column``?  Event tuples are built from concrete packet data
        (axiom); enumerable tables are checked tuple by tuple."""
        if table in self.event_tables:
            return True
        if self.enumerable(table):
            return all(tup.values[column] != WILDCARD
                       for tup in self.extent(table)
                       if column < len(tup.values))
        return False

    # ------------------------------------------------------------------
    # Occurrence-level reasoning
    # ------------------------------------------------------------------

    @staticmethod
    def _match_atom(atom: Atom, values: Tuple,
                    bindings: Dict[str, object]) -> Optional[Dict[str, object]]:
        """Strict engine-style match of ``values`` against ``atom``."""
        if len(atom.args) != len(values):
            return None
        new = dict(bindings)
        for column, arg in enumerate(atom.args):
            value = values[column]
            if isinstance(arg, Const):
                if value != arg.value:
                    return None
            elif isinstance(arg, Var):
                existing = new.get(arg.name, _MISSING)
                if existing is _MISSING:
                    new[arg.name] = value
                elif existing != value:
                    return None
            else:
                # Complex expression argument: evaluate when fully bound,
                # otherwise assume it could match.
                try:
                    computed = evaluate(arg, new)
                except EvaluationError:
                    continue
                if computed != value:
                    return None
        return new

    def _guard_refuted(self, rule: Rule, bindings: Dict[str, object]) -> bool:
        """Does a selection definitively fail under these bindings?

        Mirrors the engine's pushable-guard semantics: selections touching
        assigned variables wait for the assignment, selections that raise
        are deferred ("might fire"), function calls are never evaluated
        statically (they may be stateful).
        """
        assigned = {assignment.var for assignment in rule.assignments}
        for selection in rule.selections:
            vars_ = selection.variables()
            if vars_ & assigned:
                continue
            if not vars_ <= bindings.keys():
                continue
            if _contains_call(selection.expr):
                continue
            try:
                ok = evaluate(selection.expr, bindings)
            except EvaluationError:
                continue
            if not ok:
                return True
        return False

    def _wildcard_join_refuted(self, rule: Rule, skip_index: int,
                               bindings: Dict[str, object]) -> bool:
        """A ``'*'`` binding can never strictly unify with a column that is
        provably wildcard-free (event tuples, clean static tables)."""
        for index, atom in enumerate(rule.body):
            if index == skip_index or atom.negated:
                continue
            for column, arg in enumerate(atom.args):
                if (isinstance(arg, Var)
                        and bindings.get(arg.name) == WILDCARD
                        and self.never_wildcard(atom.table, column)):
                    return True
        return False

    def _static_join_refuted(self, rule: Rule, skip_index: int,
                             bindings: Dict[str, object]) -> bool:
        """Propagate the bindings through every statically enumerable body
        atom; refuted when no combination of static tuples is consistent."""
        enum_atoms = [atom for index, atom in enumerate(rule.body)
                      if index != skip_index and not atom.negated
                      and self.enumerable(atom.table)]
        if not enum_atoms:
            return False

        def search(position: int, env: Dict[str, object]) -> bool:
            if position == len(enum_atoms):
                return True
            atom = enum_atoms[position]
            for tup in self.extent(atom.table):
                extended = self._match_atom(atom, tup.values, env)
                if extended is None:
                    continue
                if self._guard_refuted(rule, extended):
                    continue
                if search(position + 1, extended):
                    return True
            return False

        return not search(0, dict(bindings))

    def occurrence_ruled_out(self, rule: Rule, atom_index: int,
                             values: Tuple) -> Optional[str]:
        """Why can ``values`` never fire ``rule`` at body position
        ``atom_index``?  ``None`` when the occurrence might fire."""
        atom = rule.body[atom_index]
        bindings = self._match_atom(atom, values, {})
        if bindings is None:
            return "shape-mismatch"
        if self._guard_refuted(rule, bindings):
            return "guard-refuted"
        if self._wildcard_join_refuted(rule, atom_index, bindings):
            return "join-impossible"
        if self._static_join_refuted(rule, atom_index, bindings):
            return "join-impossible"
        return None

    # ------------------------------------------------------------------
    # PacketIn inertness (the probe)
    # ------------------------------------------------------------------

    def tuple_inert(self, table: str, values: Tuple) -> bool:
        """Can a tuple of ``table`` with these values make no rule fire?"""
        key = (table, values)
        cached = self._inert_cache.get(key, _MISSING)
        if cached is not _MISSING:
            return cached is not None
        reason = self._tuple_inert_reason(table, values)
        self._inert_cache[key] = reason
        return reason is not None

    def _tuple_inert_reason(self, table: str, values: Tuple) -> Optional[str]:
        occurrences = self._occurrences.get(table, [])
        if not occurrences:
            return "unconsumed-table"
        reasons = []
        for rule, atom_index in occurrences:
            if rule.body[atom_index].negated:
                return None     # negation is beyond this analysis
            reason = self.occurrence_ruled_out(rule, atom_index, values)
            if reason is None:
                return None
            reasons.append(f"{rule.name}:{reason}")
        if any(reason.endswith("join-impossible") for reason in reasons):
            return "join-impossible"
        if any(reason.endswith("guard-refuted") for reason in reasons):
            return "guard-refuted"
        return "shape-mismatch"

    # ------------------------------------------------------------------
    # Insert inertness (candidate vetting)
    # ------------------------------------------------------------------

    def _may_derive_matching(self, table: str, values: Tuple,
                             columns: Iterable[int]) -> bool:
        """Could some rule derive a tuple of ``table`` agreeing with
        ``values`` on ``columns``?  Conservative: unknown head columns
        (plain variables) are assumed to match."""
        for rule in self.program.rules:
            if rule.head.table != table:
                continue
            if len(rule.head.args) != len(values):
                continue
            assigned_const = {
                assignment.var: assignment.expr.value
                for assignment in rule.assignments
                if isinstance(assignment.expr, Const)}
            compatible = True
            for column in columns:
                arg = rule.head.args[column]
                if isinstance(arg, Const):
                    if arg.value != values[column]:
                        compatible = False
                        break
                elif isinstance(arg, Var) and arg.name in assigned_const:
                    if assigned_const[arg.name] != values[column]:
                        compatible = False
                        break
                # otherwise: unknown, assume it can match
            if compatible:
                return True
        return False

    def insert_inert(self, tup: NDTuple) -> Optional[str]:
        """Reason why inserting ``tup`` at setup is provably behaviour-
        preserving, or ``None`` when it might have an effect."""
        if self.flow_table is not None and tup.table == self.flow_table:
            return None     # flow tuples are pushed to switches at on_start
        reason = self._tuple_inert_reason(tup.table, tup.values)
        if reason is None:
            return None
        # A rule deriving exactly this tuple at runtime would find it already
        # present — the derivation delta (and hence the emitted messages)
        # could differ from the un-inserted run.
        if self._may_derive_matching(tup.table, tup.values,
                                     range(len(tup.values))):
            return None
        schema = self.schemas.get(tup.table)
        if schema is not None and schema.primary_key:
            key_columns = schema.key_indexes()
            # Colliding with existing setup data would *replace* it.
            matched_self = False
            for other in self.extent(tup.table):
                if other == tup and not matched_self:
                    matched_self = True
                    continue
                if len(other.values) == len(tup.values) and all(
                        other.values[c] == tup.values[c]
                        for c in key_columns):
                    return None
            # A runtime derivation sharing the key would evict the insert —
            # update semantics make the delta order-visible.
            if self._may_derive_matching(tup.table, tup.values, key_columns):
                return None
        return reason


_MISSING = object()
