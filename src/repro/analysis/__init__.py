"""Static analysis over NDlog programs.

Four cooperating passes (Section "static program analysis" of the repair
pipeline):

``depgraph``
    Predicate-level program dependency graph with positive / negative /
    aggregate edges, strongly connected components, stratification and
    recursion-through-negation detection.

``safety``
    Range restriction (every head / negated / comparison variable bound by a
    positive body atom or an assignment), arity consistency against declared
    :class:`~repro.ndlog.tuples.TableSchema`, and a small type-inference
    lattice over join keys and comparison constants.

``constprop``
    Constant propagation through joined static tables: proves PacketIn keys
    inert across multi-atom joins (the engine-exact generalisation of the
    single-variable guard probe) and proves whole tuple *insertions* inert.

``vet``
    Candidate vetting: runs the passes over a repair candidate's patched
    program and classifies it ``ok | warn | reject`` with machine-readable
    :class:`~repro.analysis.findings.LintFinding` records.

The package only imports :mod:`repro.ndlog` leaf modules (``ast``, ``expr``,
``tuples``) so it can be used from the engine, controllers and repair layers
without import cycles.
"""

from .constprop import ConstantPropagation
from .depgraph import DependencyEdge, DependencyGraph
from .findings import LintFinding, Severity
from .lint import lint_program, lint_scenario
from .safety import check_safety
from .vet import CandidateVetter, VetResult

__all__ = [
    "CandidateVetter",
    "ConstantPropagation",
    "DependencyEdge",
    "DependencyGraph",
    "LintFinding",
    "Severity",
    "VetResult",
    "check_safety",
    "lint_program",
    "lint_scenario",
]
