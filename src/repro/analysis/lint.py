"""Program-level linting: the entry point behind ``repro lint``.

``lint_program`` runs the dependency-graph and safety passes plus a few
program-level checks (duplicate rules), returning every finding.  The
Q1-Q5 ground-truth programs lint clean; the tier-1 lint gate asserts this
for every registered scenario.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..ndlog.ast import Program
from ..ndlog.tuples import TableSchema

from .depgraph import DependencyGraph
from .findings import LintFinding, Severity, finding_at
from .safety import check_safety


def _check_duplicate_rules(program: Program) -> List[LintFinding]:
    """Two rules identical up to their name: the duplicate re-derives the
    same tuples and contributes nothing (the no-op-edit class)."""
    findings: List[LintFinding] = []
    seen = {}
    for rule in program.rules:
        # AST nodes are unhashable (mutable dataclasses); key on their
        # canonical rendering, which round-trips through the parser.
        key = (rule.head.to_ndlog(),
               tuple(a.to_ndlog() for a in rule.body),
               tuple(s.to_ndlog() for s in rule.selections),
               tuple(a.to_ndlog() for a in rule.assignments),
               tuple(a.negated for a in rule.body))
        original = seen.get(key)
        if original is not None:
            findings.append(finding_at(
                "lint", "duplicate-rule", Severity.WARNING,
                f"rule {rule.name} duplicates rule {original.name} "
                f"(identical head, body, selections and assignments): "
                f"a no-op edit",
                rule=rule))
        else:
            seen[key] = rule
    return findings


def lint_program(program: Program,
                 schemas: Optional[Dict[str, TableSchema]] = None,
                 static_tuples: Iterable = ()) -> List[LintFinding]:
    """Run every program-level pass; returns all findings, errors first."""
    findings: List[LintFinding] = []
    findings.extend(DependencyGraph(program).findings())
    findings.extend(check_safety(program, schemas, static_tuples))
    findings.extend(_check_duplicate_rules(program))
    order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.NOTE: 2}
    findings.sort(key=lambda f: (order.get(f.severity, 3),
                                 f.line if f.line is not None else 1 << 30,
                                 f.code))
    return findings


def lint_scenario(scenario) -> List[LintFinding]:
    """Lint a registered scenario's program with its schemas and base data."""
    schemas = {schema.name: schema for schema in scenario.schemas()}
    return lint_program(scenario.program, schemas=schemas,
                        static_tuples=scenario.static_tuples)
