"""Safety / schema checking for NDlog programs.

Three families of checks, all reported as :class:`LintFinding`s:

Range restriction (``unsafe-variable`` / ``unsafe-negation``)
    Every head variable must be bound by a positive body atom or computed by
    an assignment; every assignment may only read bound variables; every
    comparison (selection) variable must be bound; every variable of a
    negated atom must be bound by a positive atom.  Violations surface at
    runtime as :class:`~repro.ndlog.errors.UnboundVariableError` — the lint
    catches them before any packet is replayed.

Arity consistency (``arity-mismatch`` / ``arity-inconsistent``)
    Atom arity is checked against the declared
    :class:`~repro.ndlog.tuples.TableSchema` when one exists.  A *body* atom
    that can never match its table's tuples is an error (the rule is dead);
    a mis-shaped *head* is a warning — the engine tolerates mixed-arity
    derived tables (the controller drops tuples it cannot translate), and
    accepted repairs exploit this (Q4's retargeted rule derives a wider
    PacketOut than the original program).  Tables without a schema are
    checked for internal consistency across the program's atoms.

Type consistency (``type-clash``)
    A small inference lattice: each variable collects type evidence (``int``
    / ``str``) from the constants it is compared against and from constants
    or static-tuple values occupying the columns it binds.  Evidence of both
    types means a join or guard that can never be satisfied — a warning,
    because the engine evaluates such programs fine (the rule is just dead).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ndlog.ast import Atom, BinOp, Const, Program, Rule, Var, WILDCARD
from ..ndlog.tuples import TableSchema

from .findings import LintFinding, Severity, finding_at


def _value_type(value) -> Optional[str]:
    """Type-lattice element of a constant value (``None`` for wildcard)."""
    if value == WILDCARD:
        return None
    if isinstance(value, bool):
        return "int"
    if isinstance(value, int):
        return "int"
    if isinstance(value, str):
        return "str"
    return None


def column_type_evidence(program: Program,
                         static_tuples: Iterable = ()) -> Dict[Tuple[str, int], Set[str]]:
    """Evidence of what types inhabit each (table, column) pair.

    Sources: constant arguments of any atom at that column, and the values
    of static (base) tuples.  Wildcards contribute nothing.
    """
    evidence: Dict[Tuple[str, int], Set[str]] = {}
    for rule in program.rules:
        for atom in [rule.head] + list(rule.body):
            for column, arg in enumerate(atom.args):
                if isinstance(arg, Const):
                    tag = _value_type(arg.value)
                    if tag is not None:
                        evidence.setdefault((atom.table, column),
                                            set()).add(tag)
    for tup in static_tuples:
        for column, value in enumerate(tup.values):
            tag = _value_type(value)
            if tag is not None:
                evidence.setdefault((tup.table, column), set()).add(tag)
    return evidence


def _check_range_restriction(rule: Rule) -> List[LintFinding]:
    findings: List[LintFinding] = []
    positive_vars: Set[str] = set()
    for atom in rule.body:
        if not atom.negated:
            positive_vars |= atom.variables()
    bound = set(positive_vars)
    for assignment in rule.assignments:
        for name in sorted(assignment.expr.variables() - bound):
            findings.append(finding_at(
                "safety", "unsafe-variable", Severity.ERROR,
                f"assignment {assignment.var} := ... reads variable "
                f"{name!r} that no positive body atom binds",
                rule=rule))
        bound.add(assignment.var)
    for index, selection in enumerate(rule.selections):
        for name in sorted(selection.variables() - bound):
            findings.append(finding_at(
                "safety", "unsafe-variable", Severity.ERROR,
                f"selection {selection.to_ndlog()!r} compares variable "
                f"{name!r} that no positive body atom binds",
                rule=rule))
    for name in sorted(rule.head.variables() - bound):
        findings.append(finding_at(
            "safety", "unsafe-variable", Severity.ERROR,
            f"head variable {name!r} is bound by no positive body atom "
            f"and no assignment",
            rule=rule, atom=rule.head, atom_index=-1))
    for index, atom in enumerate(rule.body):
        if not atom.negated:
            continue
        for name in sorted(atom.variables() - positive_vars
                           - {a.var for a in rule.assignments}):
            findings.append(finding_at(
                "safety", "unsafe-negation", Severity.ERROR,
                f"negated atom !{atom.table} uses variable {name!r} that "
                f"no positive body atom binds",
                rule=rule, atom=atom, atom_index=index))
    return findings


def _check_arity(program: Program,
                 schemas: Dict[str, TableSchema]) -> List[LintFinding]:
    findings: List[LintFinding] = []
    #: arity observed per schema-less table: table -> {arity: first atom}
    observed: Dict[str, Dict[int, Tuple[Rule, Atom, int]]] = {}
    for rule in program.rules:
        anchored = [(rule.head, -1)] + [(atom, i)
                                        for i, atom in enumerate(rule.body)]
        for atom, index in anchored:
            schema = schemas.get(atom.table)
            if schema is not None:
                if atom.arity != schema.arity:
                    severity = (Severity.WARNING if index == -1
                                else Severity.ERROR)
                    where = "head" if index == -1 else "body atom"
                    findings.append(finding_at(
                        "safety", "arity-mismatch", severity,
                        f"{where} {atom.table}/{atom.arity} does not match "
                        f"declared schema {atom.table}/{schema.arity}",
                        rule=rule, atom=atom, atom_index=index))
            else:
                observed.setdefault(atom.table, {}).setdefault(
                    atom.arity, (rule, atom, index))
    for table, arities in observed.items():
        if len(arities) <= 1:
            continue
        rendered = "/".join(str(a) for a in sorted(arities))
        for arity, (rule, atom, index) in sorted(arities.items()):
            findings.append(finding_at(
                "safety", "arity-inconsistent", Severity.WARNING,
                f"table {table} is used with arities {rendered} "
                f"across the program (no schema declared)",
                rule=rule, atom=atom, atom_index=index))
    return findings


def _check_types(program: Program,
                 evidence: Dict[Tuple[str, int], Set[str]]) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for rule in program.rules:
        var_types: Dict[str, Set[str]] = {}
        anchor: Dict[str, Tuple[Atom, int]] = {}
        for index, atom in enumerate(rule.body):
            if atom.negated:
                continue
            for column, arg in enumerate(atom.args):
                if not isinstance(arg, Var):
                    continue
                tags = evidence.get((atom.table, column))
                if tags:
                    var_types.setdefault(arg.name, set()).update(tags)
                    anchor.setdefault(arg.name, (atom, index))
        for selection in rule.selections:
            expr = selection.expr
            if isinstance(expr, BinOp):
                pairs = ((expr.left, expr.right), (expr.right, expr.left))
                for side, other in pairs:
                    if isinstance(side, Var) and isinstance(other, Const):
                        tag = _value_type(other.value)
                        if tag is not None:
                            var_types.setdefault(side.name, set()).add(tag)
        for name, tags in sorted(var_types.items()):
            if len(tags) > 1:
                atom, index = anchor.get(name, (None, None))
                findings.append(finding_at(
                    "safety", "type-clash", Severity.WARNING,
                    f"variable {name!r} has conflicting type evidence "
                    f"({', '.join(sorted(tags))}): the join or guard can "
                    f"never be satisfied",
                    rule=rule, atom=atom, atom_index=index))
    return findings


def _check_negation_support(program: Program) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for rule in program.rules:
        for index, atom in enumerate(rule.body):
            if atom.negated:
                findings.append(finding_at(
                    "safety", "negation-unsupported", Severity.ERROR,
                    f"negated atom !{atom.table} is not supported by the "
                    f"reference evaluator (the engine refuses the program)",
                    rule=rule, atom=atom, atom_index=index))
    return findings


def check_safety(program: Program,
                 schemas: Optional[Dict[str, TableSchema]] = None,
                 static_tuples: Iterable = ()) -> List[LintFinding]:
    """Run the safety/schema/type checks; returns findings (possibly empty)."""
    schemas = schemas or {}
    findings: List[LintFinding] = []
    for rule in program.rules:
        findings.extend(_check_range_restriction(rule))
    findings.extend(_check_arity(program, schemas))
    findings.extend(_check_types(
        program, column_type_evidence(program, static_tuples)))
    findings.extend(_check_negation_support(program))
    return findings
