"""Predicate-level program dependency graph.

Nodes are table (predicate) names; an edge ``source -> target`` records that
a rule with head table ``target`` reads ``source`` in its body.  Edges carry
a polarity:

``positive``
    an ordinary body atom,
``negative``
    a negated body atom (``!Table(...)``),
``aggregate``
    the rule computes an aggregate function over its body (the body tables
    feed the aggregation, which is order-sensitive like negation).

Stratification follows the textbook construction: collapse the graph into
strongly connected components; a program is stratified iff no SCC contains
an internal negative or aggregate edge (recursion through negation).  The
stratum of a table is the length of the longest negative/aggregate-crossing
path below it in the condensation.

The graph also answers the cone queries used by program-delta eligibility
(:func:`repro.ndlog.engine.program_delta_eligible`): ``downstream(tables)``
is the set of tables whose contents may change when the given tables'
derivations change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..ndlog.ast import FuncCall, Program, Rule

from .findings import Severity, finding_at


#: Function names treated as aggregates for stratification purposes.  The
#: default registry does not currently provide them, but rules written with
#: them must still stratify like negation (order-sensitive evaluation).
AGGREGATE_FUNCTIONS = frozenset({"f_count", "f_sum", "f_min", "f_max"})


@dataclass(frozen=True)
class DependencyEdge:
    """One body-to-head dependency contributed by a single rule."""

    source: str
    target: str
    rule: str
    polarity: str    # "positive" | "negative" | "aggregate"

    @property
    def restricted(self) -> bool:
        """Does this edge forbid recursion through it (negation/aggregate)?"""
        return self.polarity != "positive"


def _rule_uses_aggregate(rule: Rule) -> bool:
    def scan(expr) -> bool:
        if isinstance(expr, FuncCall):
            if expr.name in AGGREGATE_FUNCTIONS:
                return True
            return any(scan(arg) for arg in expr.args)
        left = getattr(expr, "left", None)
        right = getattr(expr, "right", None)
        return any(scan(sub) for sub in (left, right) if sub is not None)

    for assignment in rule.assignments:
        if scan(assignment.expr):
            return True
    for arg in rule.head.args:
        if scan(arg):
            return True
    return False


class DependencyGraph:
    """Dependency graph of one program, with SCCs and stratification."""

    def __init__(self, program: Program):
        self.program = program
        self.nodes: Set[str] = set()
        self.edges: List[DependencyEdge] = []
        self._successors: Dict[str, Set[str]] = {}
        self._predecessors: Dict[str, Set[str]] = {}
        self._consuming_rules: Dict[str, List[Rule]] = {}
        self._deriving_rules: Dict[str, List[Rule]] = {}
        for rule in program.rules:
            head = rule.head.table
            self.nodes.add(head)
            self._deriving_rules.setdefault(head, []).append(rule)
            aggregate = _rule_uses_aggregate(rule)
            for atom in rule.body:
                self.nodes.add(atom.table)
                if atom.negated:
                    polarity = "negative"
                elif aggregate:
                    polarity = "aggregate"
                else:
                    polarity = "positive"
                self.edges.append(DependencyEdge(
                    source=atom.table, target=head,
                    rule=rule.name, polarity=polarity))
                self._successors.setdefault(atom.table, set()).add(head)
                self._predecessors.setdefault(head, set()).add(atom.table)
                self._consuming_rules.setdefault(atom.table, []).append(rule)
        self._sccs: Optional[List[FrozenSet[str]]] = None
        self._scc_index: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    def successors(self, table: str) -> Set[str]:
        return self._successors.get(table, set())

    def predecessors(self, table: str) -> Set[str]:
        return self._predecessors.get(table, set())

    def rules_consuming(self, table: str) -> List[Rule]:
        """Rules with ``table`` in their body (in program order)."""
        return list(self._consuming_rules.get(table, ()))

    def rules_deriving(self, table: str) -> List[Rule]:
        return list(self._deriving_rules.get(table, ()))

    def downstream(self, tables: Iterable[str]) -> Set[str]:
        """``tables`` plus every table transitively derivable from them."""
        out = set(tables)
        frontier = list(out)
        while frontier:
            current = frontier.pop()
            for succ in self._successors.get(current, ()):
                if succ not in out:
                    out.add(succ)
                    frontier.append(succ)
        return out

    def upstream(self, tables: Iterable[str]) -> Set[str]:
        """``tables`` plus every table they transitively read."""
        out = set(tables)
        frontier = list(out)
        while frontier:
            current = frontier.pop()
            for pred in self._predecessors.get(current, ()):
                if pred not in out:
                    out.add(pred)
                    frontier.append(pred)
        return out

    # ------------------------------------------------------------------
    # Strongly connected components (iterative Tarjan)
    # ------------------------------------------------------------------

    def sccs(self) -> List[FrozenSet[str]]:
        """SCCs in reverse-topological order (dependencies first)."""
        if self._sccs is not None:
            return self._sccs
        index_of: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        result: List[FrozenSet[str]] = []
        counter = [0]

        for root in sorted(self.nodes):
            if root in index_of:
                continue
            work: List[Tuple[str, Iterable[str]]] = [
                (root, iter(sorted(self._successors.get(root, ()))))]
            index_of[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index_of:
                        index_of[succ] = lowlink[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append(
                            (succ, iter(sorted(self._successors.get(succ, ())))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    component = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    result.append(frozenset(component))
        self._sccs = result
        return result

    def scc_index(self) -> Dict[str, int]:
        """Map each table to the position of its SCC in :meth:`sccs`."""
        if self._scc_index is None:
            self._scc_index = {}
            for number, component in enumerate(self.sccs()):
                for table in component:
                    self._scc_index[table] = number
        return self._scc_index

    def scc_of(self, table: str) -> FrozenSet[str]:
        number = self.scc_index().get(table)
        if number is None:
            return frozenset({table})
        return self.sccs()[number]

    def recursive_tables(self) -> Set[str]:
        """Tables involved in recursion (multi-node SCC or a self-loop)."""
        out: Set[str] = set()
        for component in self.sccs():
            if len(component) > 1:
                out |= component
        for edge in self.edges:
            if edge.source == edge.target:
                out.add(edge.source)
        return out

    # ------------------------------------------------------------------
    # Stratification
    # ------------------------------------------------------------------

    def unstratified_edges(self) -> List[DependencyEdge]:
        """Negative/aggregate edges inside an SCC (recursion through them)."""
        component_of: Dict[str, int] = {}
        for number, component in enumerate(self.sccs()):
            for table in component:
                component_of[table] = number
        recursive = self.recursive_tables()
        out = []
        for edge in self.edges:
            if not edge.restricted:
                continue
            if (component_of.get(edge.source) == component_of.get(edge.target)
                    and (edge.source in recursive or
                         edge.source == edge.target)):
                out.append(edge)
        return out

    def is_stratified(self) -> bool:
        return not self.unstratified_edges()

    def strata(self) -> Optional[Dict[str, int]]:
        """Stratum number per table, or ``None`` if unstratifiable.

        Base tables live in stratum 0; crossing a negative or aggregate edge
        increments the stratum.  SCCs are processed in topological order, so
        every table's stratum is final when assigned.
        """
        if not self.is_stratified():
            return None
        component_of = self.scc_index()
        components = self.sccs()
        edges_into: Dict[int, List[DependencyEdge]] = {}
        for edge in self.edges:
            edges_into.setdefault(component_of[edge.target], []).append(edge)
        strata: Dict[str, int] = {table: 0 for table in self.nodes}
        # ``sccs()`` is reverse-topological (dependencies first), so one pass
        # in that order propagates maxima correctly.
        for number, component in enumerate(components):
            for edge in edges_into.get(number, ()):
                bump = 1 if edge.restricted else 0
                candidate = strata[edge.source] + bump
                for member in component:
                    if candidate > strata[member]:
                        strata[member] = candidate
        return strata

    def evaluation_groups(self) -> List[Tuple[FrozenSet[str], int]]:
        """SCC groups in bulk-evaluation order: ``(tables, stratum)``.

        Groups come out dependency-first — the topological order of the SCC
        condensation (:meth:`sccs` emits the reverse) — which is exactly the
        order a stratum-by-stratum evaluation needs: every dependency edge,
        negative or positive, crosses forward, so each group sees its
        producers fully evaluated before it runs.  The stratum is attached
        as metadata (0 for every group of an unstratifiable program).
        """
        strata = self.strata()
        groups = []
        for component in reversed(self.sccs()):
            if strata is None:
                stratum = 0
            else:
                stratum = strata[next(iter(component))]
            groups.append((component, stratum))
        return groups

    # ------------------------------------------------------------------
    # Lint pass
    # ------------------------------------------------------------------

    def findings(self):
        """Stratification findings (``unstratified-negation``)."""
        out = []
        for edge in self.unstratified_edges():
            try:
                rule = self.program.rule_named(edge.rule)
            except KeyError:
                rule = None
            atom = None
            atom_index = None
            if rule is not None:
                for index, body_atom in enumerate(rule.body):
                    if body_atom.table == edge.source:
                        atom, atom_index = body_atom, index
                        break
            out.append(finding_at(
                "depgraph", "unstratified-negation", Severity.ERROR,
                f"recursion through {edge.polarity} dependency "
                f"{edge.source} -> {edge.target} (rule {edge.rule})",
                rule=rule, atom=atom, atom_index=atom_index))
        return out
