"""Machine-readable findings produced by the static-analysis passes.

A :class:`LintFinding` names the pass that produced it, a stable ``code``
slug (the veto taxonomy in EXPERIMENTS.md enumerates them), the rule and
atom it anchors to, and — when the program came from the parser — the
source line/column, so findings render as ``program.ndlog:12:4``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


class Severity:
    """Severity levels, ordered: ``note < warning < error``."""

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    _ORDER = {NOTE: 0, WARNING: 1, ERROR: 2}

    @classmethod
    def max(cls, severities):
        worst = cls.NOTE
        for severity in severities:
            if cls._ORDER[severity] > cls._ORDER[worst]:
                worst = severity
        return worst


@dataclass(frozen=True)
class LintFinding:
    """One diagnostic from a static-analysis pass.

    Attributes:
        pass_name: which pass produced it (``depgraph`` / ``safety`` /
            ``constprop`` / ``vet``).
        code: stable kebab-case slug identifying the finding class
            (e.g. ``unsafe-variable``, ``unstratified-negation``).
        severity: one of :class:`Severity`'s levels.
        message: human-readable description.
        rule: name of the rule the finding anchors to, or ``None`` for
            program-level findings.
        atom_index: index into the rule's body (``-1`` for the head),
            or ``None`` when the finding is not about a specific atom.
        line / column: 1-based source position when known.
    """

    pass_name: str
    code: str
    severity: str
    message: str
    rule: Optional[str] = None
    atom_index: Optional[int] = None
    line: Optional[int] = None
    column: Optional[int] = None

    def render(self, source_name: str = "<program>") -> str:
        location = source_name
        if self.line is not None:
            location += f":{self.line}"
            if self.column is not None:
                location += f":{self.column}"
        anchor = ""
        if self.rule is not None:
            anchor = f" [{self.rule}]"
        return (f"{location}: {self.severity}: "
                f"({self.pass_name}/{self.code}){anchor} {self.message}")

    def as_dict(self) -> dict:
        return {
            "pass": self.pass_name,
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "rule": self.rule,
            "atom_index": self.atom_index,
            "line": self.line,
            "column": self.column,
        }


def finding_at(pass_name, code, severity, message, rule=None, atom=None,
               atom_index=None):
    """Build a finding anchored at ``rule`` / ``atom`` (position-aware)."""
    line = column = None
    if atom is not None and atom.line is not None:
        line, column = atom.line, atom.column
    elif rule is not None and rule.line is not None:
        line, column = rule.line, rule.column
    return LintFinding(
        pass_name=pass_name, code=code, severity=severity, message=message,
        rule=rule.name if rule is not None else None,
        atom_index=atom_index, line=line, column=column)
