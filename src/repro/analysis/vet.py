"""Candidate vetting: static classification of repair candidates.

The vetter runs the analysis passes over a candidate's *patched* program
(and patched base data) and classifies it:

``reject``
    The candidate provably cannot change any backtest outcome, or provably
    fails to evaluate.  Sound reject classes:

    ``no-op-edit``
        the patched program and base data equal the originals;
    ``inert-insert``
        the edits only insert tuples, every one provably inert
        (:meth:`ConstantPropagation.insert_inert`);
    ``negation-unsupported``
        the patched program contains a negated atom — the engine refuses
        such programs at plan time, so the backtest would fail anyway;
    ``apply-failed``
        the edits cannot be applied to the program at all.

``warn``
    The candidate is backtested, but the passes found something suspicious
    (unsafe variable in a rule that may never fire, arity inconsistency,
    type clash, ...).  Findings ride along for reporting.

``ok``
    No findings.

Soundness contract (enforced by the differential test suite): a rejected
candidate either fails to evaluate or backtests bit-identical to the
unpatched program — no accepted repair is ever vetoed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..ndlog.ast import Program
from ..ndlog.tuples import NDTuple, TableSchema

from .constprop import ConstantPropagation
from .depgraph import DependencyGraph
from .findings import LintFinding, Severity
from .safety import check_safety


REJECT = "reject"
WARN = "warn"
OK = "ok"


@dataclass
class VetResult:
    """Outcome of vetting one candidate."""

    verdict: str                     # "ok" | "warn" | "reject"
    findings: List[LintFinding] = field(default_factory=list)
    reason: Optional[str] = None     # primary reject code

    @property
    def rejected(self) -> bool:
        return self.verdict == REJECT

    def describe(self) -> str:
        if self.verdict == REJECT:
            return f"vetoed ({self.reason})"
        if self.findings:
            codes = sorted({f.code for f in self.findings})
            return f"{self.verdict} ({', '.join(codes)})"
        return self.verdict


class CandidateVetter:
    """Vets repair candidates against one scenario's program and base data."""

    def __init__(self, program: Program,
                 schemas: Optional[Dict[str, TableSchema]] = None,
                 static_tuples: Sequence[NDTuple] = (),
                 event_tables: Iterable[str] = (),
                 flow_table: Optional[str] = None):
        self.program = program
        self.schemas = dict(schemas or {})
        self.static_tuples = list(static_tuples)
        self.event_tables = set(event_tables)
        self.flow_table = flow_table

    # ------------------------------------------------------------------

    def vet_candidate(self, candidate) -> VetResult:
        """Apply ``candidate`` to the base program, then vet the result."""
        from ..repair.apply import RepairApplicationError, apply_candidate

        try:
            repaired = apply_candidate(self.program, candidate)
        except RepairApplicationError as exc:
            return VetResult(verdict=REJECT, reason="apply-failed", findings=[
                LintFinding(pass_name="vet", code="apply-failed",
                            severity=Severity.ERROR, message=str(exc))])
        return self.vet(repaired)

    def vet(self, repaired) -> VetResult:
        """Vet an applied candidate (a ``RepairedProgram``-shaped object
        with ``program`` / ``inserted_tuples`` / ``removed_tuples``)."""
        patched: Program = repaired.program
        inserted: List[NDTuple] = list(repaired.inserted_tuples)
        removed: List[NDTuple] = list(repaired.removed_tuples)
        program_changed = patched.rules != self.program.rules

        findings: List[LintFinding] = []

        if not program_changed and not inserted and not removed:
            findings.append(LintFinding(
                pass_name="vet", code="no-op-edit", severity=Severity.ERROR,
                message="the edits leave the program and base data "
                        "unchanged — the backtest would repeat the baseline"))
            return VetResult(verdict=REJECT, reason="no-op-edit",
                             findings=findings)

        patched_static = self.static_tuples + inserted
        findings.extend(DependencyGraph(patched).findings())
        findings.extend(check_safety(patched, self.schemas, patched_static))

        # The engine refuses negated atoms at plan time, so the candidate
        # could never complete a backtest.
        if any(f.code == "negation-unsupported" for f in findings):
            return VetResult(verdict=REJECT, reason="negation-unsupported",
                             findings=findings)

        if inserted and not program_changed and not removed:
            propagation = ConstantPropagation(
                patched, schemas=self.schemas, static_tuples=patched_static,
                event_tables=self.event_tables, flow_table=self.flow_table)
            reasons = []
            for tup in inserted:
                reason = propagation.insert_inert(tup)
                if reason is None:
                    reasons = None
                    break
                reasons.append((tup, reason))
            if reasons is not None:
                for tup, reason in reasons:
                    findings.append(LintFinding(
                        pass_name="constprop", code="inert-insert",
                        severity=Severity.ERROR,
                        message=f"inserting {tup} is provably invisible "
                                f"to every replay ({reason})"))
                return VetResult(verdict=REJECT, reason="inert-insert",
                                 findings=findings)

        if findings:
            return VetResult(verdict=WARN, findings=findings)
        return VetResult(verdict=OK, findings=findings)
