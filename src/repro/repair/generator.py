"""High-level repair generation facade.

:class:`RepairGenerator` ties the meta provenance explorer to the engine's
history and exposes the two entry points of the paper's Figure 17 algorithm:
``find_repairs_for_missing`` (negative symptoms) and
``find_repairs_for_existing`` (positive symptoms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..ndlog.ast import Program
from ..ndlog.engine import Engine
from ..ndlog.tuples import NDTuple
from .candidates import RepairCandidate


@dataclass
class RepairGeneratorConfig:
    """Tunables forwarded to the meta provenance explorer."""

    max_candidates: int = 25
    max_constant_variants: int = 4
    enable_retarget_tasks: bool = True


class RepairGenerator:
    """Generates repair candidates for symptoms observed in an engine run."""

    def __init__(self, program: Program, engine: Optional[Engine] = None,
                 history=None, cost_model=None,
                 config: Optional[RepairGeneratorConfig] = None):
        # Imported here (not at module top) to keep the package import graph
        # acyclic: repro.meta imports repro.repair.candidates.
        from ..meta.costs import CostModel
        from ..meta.explorer import MetaProvenanceExplorer
        from ..meta.history import HistoryIndex

        self.program = program
        self.engine = engine
        if history is None:
            if engine is not None:
                history = HistoryIndex.from_engine(engine)
            else:
                history = HistoryIndex()
        self.history = history
        self.config = config or RepairGeneratorConfig()
        self.cost_model = cost_model or CostModel()
        self.explorer = MetaProvenanceExplorer(
            program, history, cost_model=self.cost_model,
            max_candidates=self.config.max_candidates,
            max_constant_variants=self.config.max_constant_variants,
            enable_retarget_tasks=self.config.enable_retarget_tasks)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def find_repairs_for_missing(self, table: str, constraints: Dict[int, object],
                                 node=None, description: str = ""):
        """Repairs that make a tuple matching ``constraints`` appear."""
        from ..meta.explorer import MissingTupleGoal

        goal = MissingTupleGoal.create(table, constraints, node=node,
                                       description=description)
        return self.explorer.explore_missing(goal)

    def find_repairs_for_existing(self, tup: NDTuple, description: str = ""):
        """Repairs that make the unwanted tuple ``tup`` disappear."""
        from ..meta.explorer import ExistingTupleGoal

        goal = ExistingTupleGoal(tup, description=description)
        derivations = self.engine.derivations_of(tup) if self.engine else []
        return self.explorer.explore_existing(goal, derivations)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def ranked_candidates(self, result) -> List[RepairCandidate]:
        return self.cost_model.rank(result.candidates)
