"""Repair candidates and the program edits they are made of.

A repair candidate (Section 4 of the paper) is a small set of edits to the
controller program and/or its base tuples, together with a cost (the
"implausibility" of the change) and the meta provenance tree that produced
it.  Candidates are applied to a program by :mod:`repro.repair.apply` and
evaluated by the backtesting subsystem (:mod:`repro.backtest`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ndlog.ast import (Assignment, Atom, BinOp, Const, Expression, FuncCall,
                         Rule, Selection, Var)
from ..ndlog.tuples import NDTuple


_candidate_counter = itertools.count(1)


def reset_candidate_ids(start: int = 1) -> None:
    """Restart the process-global candidate numbering at ``start``.

    Candidate ids (and the ``v<N>`` tags derived from them) are assigned
    from a process-global counter, so the N-th repair run in a process
    numbers its candidates differently from the first.  Long-lived
    service workers call this at the start of every repair job so that a
    report is a pure function of its config — bit-identical whether the
    run happened in a fresh ``repro repair`` process or on a worker that
    has served a thousand sessions.  Ids stay unique within a run, which
    is the only scope that ever compares them.
    """
    global _candidate_counter
    _candidate_counter = itertools.count(start)


# ---------------------------------------------------------------------------
# Edits
# ---------------------------------------------------------------------------


class Edit:
    """Base class for a single program or data change."""

    #: Symbolic kind name used by the cost model.
    kind = "edit"

    def describe(self) -> str:
        raise NotImplementedError

    def __str__(self):
        return self.describe()


@dataclass(frozen=True)
class ChangeConstant(Edit):
    """Change a constant inside a selection predicate.

    ``side`` is ``"left"`` or ``"right"``, naming which operand of the
    comparison holds the constant.
    """

    rule: str
    selection_index: int
    side: str
    old_value: object
    new_value: object

    kind = "change_constant"

    def describe(self):
        return (f"change constant {self.old_value!r} to {self.new_value!r} "
                f"in selection #{self.selection_index} of rule {self.rule}")


@dataclass(frozen=True)
class ChangeOperator(Edit):
    """Change the comparison operator of a selection predicate."""

    rule: str
    selection_index: int
    old_op: str
    new_op: str

    kind = "change_operator"

    def describe(self):
        return (f"change operator {self.old_op!r} to {self.new_op!r} "
                f"in selection #{self.selection_index} of rule {self.rule}")


@dataclass(frozen=True)
class DeleteSelection(Edit):
    """Delete a selection predicate from a rule."""

    rule: str
    selection_index: int
    text: str = ""

    kind = "delete_selection"

    def describe(self):
        what = self.text or f"selection #{self.selection_index}"
        return f"delete {what} in rule {self.rule}"


@dataclass(frozen=True)
class DeletePredicate(Edit):
    """Delete a body predicate (a joined table) from a rule."""

    rule: str
    predicate_index: int
    table: str = ""

    kind = "delete_predicate"

    def describe(self):
        what = self.table or f"predicate #{self.predicate_index}"
        return f"delete predicate {what} from rule {self.rule}"


@dataclass(frozen=True)
class ChangeAssignment(Edit):
    """Replace the expression assigned to a head variable."""

    rule: str
    assignment_index: int
    var: str
    old_text: str
    new_expr: Expression

    kind = "change_assignment"

    def describe(self):
        return (f"change assignment {self.var} := {self.old_text} to "
                f"{self.var} := {self.new_expr.to_ndlog()} in rule {self.rule}")


@dataclass(frozen=True)
class ChangeRuleHead(Edit):
    """Re-target the head of an existing rule (table and/or arguments)."""

    rule: str
    new_head: Atom

    kind = "change_head"

    def describe(self):
        return f"change head of rule {self.rule} to {self.new_head.to_ndlog()}"


@dataclass(frozen=True)
class CopyRule(Edit):
    """Add a copy of an existing rule with modifications already applied."""

    source_rule: str
    new_rule: Rule

    kind = "copy_rule"

    def describe(self):
        return (f"copy rule {self.source_rule} and replace it with "
                f"{self.new_rule.to_ndlog()}")


@dataclass(frozen=True)
class AddRule(Edit):
    """Add an entirely new rule to the program."""

    new_rule: Rule

    kind = "add_rule"

    def describe(self):
        return f"add rule {self.new_rule.to_ndlog()}"


@dataclass(frozen=True)
class DeleteRule(Edit):
    """Remove a rule from the program."""

    rule: str

    kind = "delete_rule"

    def describe(self):
        return f"delete rule {self.rule}"


@dataclass(frozen=True)
class InsertTuple(Edit):
    """Manually insert a base tuple (e.g. manually install a flow entry)."""

    tuple: NDTuple

    kind = "insert_tuple"

    def describe(self):
        return f"manually insert {self.tuple}"


@dataclass(frozen=True)
class DeleteTuple(Edit):
    """Remove a base tuple (e.g. withdraw a configuration entry)."""

    tuple: NDTuple

    kind = "delete_tuple"

    def describe(self):
        return f"delete base tuple {self.tuple}"


@dataclass(frozen=True)
class ChangeTuple(Edit):
    """Change one value of a base tuple."""

    tuple: NDTuple
    column: int
    new_value: object

    kind = "change_tuple"

    def describe(self):
        return (f"change column {self.column} of {self.tuple} to "
                f"{self.new_value!r}")


PROGRAM_EDIT_KINDS = (
    "change_constant", "change_operator", "delete_selection",
    "delete_predicate", "change_assignment", "change_head", "copy_rule",
    "add_rule", "delete_rule",
)

DATA_EDIT_KINDS = ("insert_tuple", "delete_tuple", "change_tuple")


# ---------------------------------------------------------------------------
# Repair candidates
# ---------------------------------------------------------------------------


@dataclass
class RepairCandidate:
    """A complete candidate repair: one or more edits plus bookkeeping."""

    edits: Tuple[Edit, ...]
    cost: float
    description: str = ""
    tree: object = None               # the MetaTree explaining this candidate
    candidate_id: int = field(default_factory=lambda: next(_candidate_counter))
    notes: Tuple[str, ...] = ()

    def __post_init__(self):
        if not isinstance(self.edits, tuple):
            self.edits = tuple(self.edits)
        if not self.description:
            self.description = "; ".join(e.describe() for e in self.edits)

    @property
    def tag(self) -> str:
        """Short identifier used for multi-query backtesting."""
        return f"v{self.candidate_id}"

    def is_program_change(self) -> bool:
        return any(e.kind in PROGRAM_EDIT_KINDS for e in self.edits)

    def is_data_change(self) -> bool:
        return any(e.kind in DATA_EDIT_KINDS for e in self.edits)

    def edit_kinds(self) -> Tuple[str, ...]:
        return tuple(e.kind for e in self.edits)

    def signature(self) -> Tuple:
        """Structural signature used for de-duplication across search paths."""
        return tuple(sorted(repr(e) for e in self.edits))

    def __str__(self):
        return f"[cost {self.cost:.2f}] {self.description}"


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------
#
# The distributed backtest fabric (repro.distrib) ships candidates to worker
# processes that cannot share memory with the coordinator.  Edits contain AST
# nodes and base tuples, so the wire format encodes them *structurally* into
# plain JSON-able dicts; the meta provenance tree stays coordinator-side
# (workers only evaluate, they never explain).


class WireFormatError(ValueError):
    """Raised when a candidate or edit cannot be (de)serialised."""


def _expr_to_wire(expr: Expression) -> Dict:
    if isinstance(expr, Const):
        return {"const": expr.value}
    if isinstance(expr, Var):
        return {"var": expr.name}
    if isinstance(expr, BinOp):
        return {"op": expr.op, "left": _expr_to_wire(expr.left),
                "right": _expr_to_wire(expr.right)}
    if isinstance(expr, FuncCall):
        return {"func": expr.name,
                "args": [_expr_to_wire(a) for a in expr.args]}
    raise WireFormatError(f"unsupported expression {expr!r}")


def _expr_from_wire(wire: Dict) -> Expression:
    if "const" in wire:
        return Const(wire["const"])
    if "var" in wire:
        return Var(wire["var"])
    if "op" in wire:
        return BinOp(wire["op"], _expr_from_wire(wire["left"]),
                     _expr_from_wire(wire["right"]))
    if "func" in wire:
        return FuncCall(wire["func"],
                        tuple(_expr_from_wire(a) for a in wire["args"]))
    raise WireFormatError(f"malformed expression wire {wire!r}")


def _atom_to_wire(atom: Atom) -> Dict:
    return {"table": atom.table,
            "args": [_expr_to_wire(a) for a in atom.args],
            "location_index": atom.location_index}


def _atom_from_wire(wire: Dict) -> Atom:
    return Atom(wire["table"], [_expr_from_wire(a) for a in wire["args"]],
                location_index=wire.get("location_index"))


def _rule_to_wire(rule: Rule) -> Dict:
    return {"name": rule.name,
            "head": _atom_to_wire(rule.head),
            "body": [_atom_to_wire(a) for a in rule.body],
            "selections": [_expr_to_wire(s.expr) for s in rule.selections],
            "assignments": [{"var": a.var, "expr": _expr_to_wire(a.expr)}
                            for a in rule.assignments]}


def _rule_from_wire(wire: Dict) -> Rule:
    return Rule(name=wire["name"],
                head=_atom_from_wire(wire["head"]),
                body=[_atom_from_wire(a) for a in wire["body"]],
                selections=[Selection(_expr_from_wire(s))
                            for s in wire["selections"]],
                assignments=[Assignment(a["var"], _expr_from_wire(a["expr"]))
                             for a in wire["assignments"]])


def _tuple_to_wire(tup: NDTuple) -> Dict:
    return {"table": tup.table, "values": list(tup.values)}


def _tuple_from_wire(wire: Dict) -> NDTuple:
    return NDTuple(wire["table"], tuple(wire["values"]))


#: Per-kind (encode, decode) handlers mapping edit fields to wire payloads.
_EDIT_CODECS = {
    "change_constant": (
        lambda e: {"rule": e.rule, "selection_index": e.selection_index,
                   "side": e.side, "old_value": e.old_value,
                   "new_value": e.new_value},
        lambda w: ChangeConstant(w["rule"], w["selection_index"], w["side"],
                                 w["old_value"], w["new_value"])),
    "change_operator": (
        lambda e: {"rule": e.rule, "selection_index": e.selection_index,
                   "old_op": e.old_op, "new_op": e.new_op},
        lambda w: ChangeOperator(w["rule"], w["selection_index"],
                                 w["old_op"], w["new_op"])),
    "delete_selection": (
        lambda e: {"rule": e.rule, "selection_index": e.selection_index,
                   "text": e.text},
        lambda w: DeleteSelection(w["rule"], w["selection_index"],
                                  w.get("text", ""))),
    "delete_predicate": (
        lambda e: {"rule": e.rule, "predicate_index": e.predicate_index,
                   "table": e.table},
        lambda w: DeletePredicate(w["rule"], w["predicate_index"],
                                  w.get("table", ""))),
    "change_assignment": (
        lambda e: {"rule": e.rule, "assignment_index": e.assignment_index,
                   "var": e.var, "old_text": e.old_text,
                   "new_expr": _expr_to_wire(e.new_expr)},
        lambda w: ChangeAssignment(w["rule"], w["assignment_index"], w["var"],
                                   w["old_text"],
                                   _expr_from_wire(w["new_expr"]))),
    "change_head": (
        lambda e: {"rule": e.rule, "new_head": _atom_to_wire(e.new_head)},
        lambda w: ChangeRuleHead(w["rule"], _atom_from_wire(w["new_head"]))),
    "copy_rule": (
        lambda e: {"source_rule": e.source_rule,
                   "new_rule": _rule_to_wire(e.new_rule)},
        lambda w: CopyRule(w["source_rule"], _rule_from_wire(w["new_rule"]))),
    "add_rule": (
        lambda e: {"new_rule": _rule_to_wire(e.new_rule)},
        lambda w: AddRule(_rule_from_wire(w["new_rule"]))),
    "delete_rule": (
        lambda e: {"rule": e.rule},
        lambda w: DeleteRule(w["rule"])),
    "insert_tuple": (
        lambda e: {"tuple": _tuple_to_wire(e.tuple)},
        lambda w: InsertTuple(_tuple_from_wire(w["tuple"]))),
    "delete_tuple": (
        lambda e: {"tuple": _tuple_to_wire(e.tuple)},
        lambda w: DeleteTuple(_tuple_from_wire(w["tuple"]))),
    "change_tuple": (
        lambda e: {"tuple": _tuple_to_wire(e.tuple), "column": e.column,
                   "new_value": e.new_value},
        lambda w: ChangeTuple(_tuple_from_wire(w["tuple"]), w["column"],
                              w["new_value"])),
}


def edit_to_wire(edit: Edit) -> Dict:
    """Encode one edit into a plain JSON-able dict."""
    try:
        encode, _ = _EDIT_CODECS[edit.kind]
    except KeyError as exc:
        raise WireFormatError(f"unsupported edit kind {edit.kind!r}") from exc
    wire = encode(edit)
    wire["kind"] = edit.kind
    return wire


def edit_from_wire(wire: Dict) -> Edit:
    """Decode one edit from its wire dict."""
    try:
        _, decode = _EDIT_CODECS[wire["kind"]]
    except KeyError as exc:
        raise WireFormatError(f"malformed edit wire {wire!r}") from exc
    return decode(wire)


def candidate_to_wire(candidate: RepairCandidate) -> Dict:
    """Encode a candidate for shipment to a worker.

    The meta provenance ``tree`` is intentionally dropped: it explains the
    candidate to the operator and can hold arbitrary explorer state, while
    workers only need the edits to apply and the bookkeeping that identifies
    the result.  The coordinator re-attaches the original candidate (tree
    included) when results stream back.
    """
    return {"edits": [edit_to_wire(e) for e in candidate.edits],
            "cost": candidate.cost,
            "description": candidate.description,
            "candidate_id": candidate.candidate_id,
            "notes": list(candidate.notes)}


def candidate_from_wire(wire: Dict) -> RepairCandidate:
    """Decode a worker-side candidate (same edits, id and tag; no tree)."""
    return RepairCandidate(
        edits=tuple(edit_from_wire(e) for e in wire["edits"]),
        cost=wire["cost"],
        description=wire.get("description", ""),
        tree=None,
        candidate_id=wire["candidate_id"],
        notes=tuple(wire.get("notes", ())))


def deduplicate(candidates: Sequence[RepairCandidate]) -> List[RepairCandidate]:
    """Drop candidates with identical edit sets, keeping the cheapest."""
    best = {}
    for candidate in candidates:
        key = candidate.signature()
        if key not in best or candidate.cost < best[key].cost:
            best[key] = candidate
    return sorted(best.values(), key=lambda c: (c.cost, c.candidate_id))
