"""Repair candidates and the program edits they are made of.

A repair candidate (Section 4 of the paper) is a small set of edits to the
controller program and/or its base tuples, together with a cost (the
"implausibility" of the change) and the meta provenance tree that produced
it.  Candidates are applied to a program by :mod:`repro.repair.apply` and
evaluated by the backtesting subsystem (:mod:`repro.backtest`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..ndlog.ast import Atom, Expression, Rule
from ..ndlog.tuples import NDTuple


_candidate_counter = itertools.count(1)


# ---------------------------------------------------------------------------
# Edits
# ---------------------------------------------------------------------------


class Edit:
    """Base class for a single program or data change."""

    #: Symbolic kind name used by the cost model.
    kind = "edit"

    def describe(self) -> str:
        raise NotImplementedError

    def __str__(self):
        return self.describe()


@dataclass(frozen=True)
class ChangeConstant(Edit):
    """Change a constant inside a selection predicate.

    ``side`` is ``"left"`` or ``"right"``, naming which operand of the
    comparison holds the constant.
    """

    rule: str
    selection_index: int
    side: str
    old_value: object
    new_value: object

    kind = "change_constant"

    def describe(self):
        return (f"change constant {self.old_value!r} to {self.new_value!r} "
                f"in selection #{self.selection_index} of rule {self.rule}")


@dataclass(frozen=True)
class ChangeOperator(Edit):
    """Change the comparison operator of a selection predicate."""

    rule: str
    selection_index: int
    old_op: str
    new_op: str

    kind = "change_operator"

    def describe(self):
        return (f"change operator {self.old_op!r} to {self.new_op!r} "
                f"in selection #{self.selection_index} of rule {self.rule}")


@dataclass(frozen=True)
class DeleteSelection(Edit):
    """Delete a selection predicate from a rule."""

    rule: str
    selection_index: int
    text: str = ""

    kind = "delete_selection"

    def describe(self):
        what = self.text or f"selection #{self.selection_index}"
        return f"delete {what} in rule {self.rule}"


@dataclass(frozen=True)
class DeletePredicate(Edit):
    """Delete a body predicate (a joined table) from a rule."""

    rule: str
    predicate_index: int
    table: str = ""

    kind = "delete_predicate"

    def describe(self):
        what = self.table or f"predicate #{self.predicate_index}"
        return f"delete predicate {what} from rule {self.rule}"


@dataclass(frozen=True)
class ChangeAssignment(Edit):
    """Replace the expression assigned to a head variable."""

    rule: str
    assignment_index: int
    var: str
    old_text: str
    new_expr: Expression

    kind = "change_assignment"

    def describe(self):
        return (f"change assignment {self.var} := {self.old_text} to "
                f"{self.var} := {self.new_expr.to_ndlog()} in rule {self.rule}")


@dataclass(frozen=True)
class ChangeRuleHead(Edit):
    """Re-target the head of an existing rule (table and/or arguments)."""

    rule: str
    new_head: Atom

    kind = "change_head"

    def describe(self):
        return f"change head of rule {self.rule} to {self.new_head.to_ndlog()}"


@dataclass(frozen=True)
class CopyRule(Edit):
    """Add a copy of an existing rule with modifications already applied."""

    source_rule: str
    new_rule: Rule

    kind = "copy_rule"

    def describe(self):
        return (f"copy rule {self.source_rule} and replace it with "
                f"{self.new_rule.to_ndlog()}")


@dataclass(frozen=True)
class AddRule(Edit):
    """Add an entirely new rule to the program."""

    new_rule: Rule

    kind = "add_rule"

    def describe(self):
        return f"add rule {self.new_rule.to_ndlog()}"


@dataclass(frozen=True)
class DeleteRule(Edit):
    """Remove a rule from the program."""

    rule: str

    kind = "delete_rule"

    def describe(self):
        return f"delete rule {self.rule}"


@dataclass(frozen=True)
class InsertTuple(Edit):
    """Manually insert a base tuple (e.g. manually install a flow entry)."""

    tuple: NDTuple

    kind = "insert_tuple"

    def describe(self):
        return f"manually insert {self.tuple}"


@dataclass(frozen=True)
class DeleteTuple(Edit):
    """Remove a base tuple (e.g. withdraw a configuration entry)."""

    tuple: NDTuple

    kind = "delete_tuple"

    def describe(self):
        return f"delete base tuple {self.tuple}"


@dataclass(frozen=True)
class ChangeTuple(Edit):
    """Change one value of a base tuple."""

    tuple: NDTuple
    column: int
    new_value: object

    kind = "change_tuple"

    def describe(self):
        return (f"change column {self.column} of {self.tuple} to "
                f"{self.new_value!r}")


PROGRAM_EDIT_KINDS = (
    "change_constant", "change_operator", "delete_selection",
    "delete_predicate", "change_assignment", "change_head", "copy_rule",
    "add_rule", "delete_rule",
)

DATA_EDIT_KINDS = ("insert_tuple", "delete_tuple", "change_tuple")


# ---------------------------------------------------------------------------
# Repair candidates
# ---------------------------------------------------------------------------


@dataclass
class RepairCandidate:
    """A complete candidate repair: one or more edits plus bookkeeping."""

    edits: Tuple[Edit, ...]
    cost: float
    description: str = ""
    tree: object = None               # the MetaTree explaining this candidate
    candidate_id: int = field(default_factory=lambda: next(_candidate_counter))
    notes: Tuple[str, ...] = ()

    def __post_init__(self):
        if not isinstance(self.edits, tuple):
            self.edits = tuple(self.edits)
        if not self.description:
            self.description = "; ".join(e.describe() for e in self.edits)

    @property
    def tag(self) -> str:
        """Short identifier used for multi-query backtesting."""
        return f"v{self.candidate_id}"

    def is_program_change(self) -> bool:
        return any(e.kind in PROGRAM_EDIT_KINDS for e in self.edits)

    def is_data_change(self) -> bool:
        return any(e.kind in DATA_EDIT_KINDS for e in self.edits)

    def edit_kinds(self) -> Tuple[str, ...]:
        return tuple(e.kind for e in self.edits)

    def signature(self) -> Tuple:
        """Structural signature used for de-duplication across search paths."""
        return tuple(sorted(repr(e) for e in self.edits))

    def __str__(self):
        return f"[cost {self.cost:.2f}] {self.description}"


def deduplicate(candidates: Sequence[RepairCandidate]) -> List[RepairCandidate]:
    """Drop candidates with identical edit sets, keeping the cheapest."""
    best = {}
    for candidate in candidates:
        key = candidate.signature()
        if key not in best or candidate.cost < best[key].cost:
            best[key] = candidate
    return sorted(best.values(), key=lambda c: (c.cost, c.candidate_id))
