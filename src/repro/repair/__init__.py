"""Repair candidates: representation, application, and generation."""

from .apply import RepairApplicationError, RepairedProgram, apply_candidate
from .candidates import (
    AddRule,
    ChangeAssignment,
    ChangeConstant,
    ChangeOperator,
    ChangeRuleHead,
    ChangeTuple,
    CopyRule,
    DATA_EDIT_KINDS,
    DeletePredicate,
    DeleteRule,
    DeleteSelection,
    DeleteTuple,
    Edit,
    InsertTuple,
    PROGRAM_EDIT_KINDS,
    RepairCandidate,
    WireFormatError,
    candidate_from_wire,
    candidate_to_wire,
    deduplicate,
    edit_from_wire,
    edit_to_wire,
    reset_candidate_ids,
)
from .generator import RepairGenerator, RepairGeneratorConfig

__all__ = [
    "RepairApplicationError", "RepairedProgram", "apply_candidate",
    "AddRule", "ChangeAssignment", "ChangeConstant", "ChangeOperator",
    "ChangeRuleHead", "ChangeTuple", "CopyRule", "DATA_EDIT_KINDS",
    "DeletePredicate", "DeleteRule", "DeleteSelection", "DeleteTuple",
    "Edit", "InsertTuple", "PROGRAM_EDIT_KINDS", "RepairCandidate",
    "WireFormatError", "candidate_from_wire", "candidate_to_wire",
    "deduplicate", "edit_from_wire", "edit_to_wire", "reset_candidate_ids",
    "RepairGenerator", "RepairGeneratorConfig",
]
