"""Applying repair candidates to programs and base data.

The result of applying a candidate is a :class:`RepairedProgram`: a cloned
and edited program, plus lists of base tuples to insert or remove before
replaying.  Applying never mutates the original program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..ndlog.ast import BinOp, Const, Program, Selection, Var
from ..ndlog.tuples import NDTuple
from .candidates import (
    AddRule,
    ChangeAssignment,
    ChangeConstant,
    ChangeOperator,
    ChangeRuleHead,
    ChangeTuple,
    CopyRule,
    DeletePredicate,
    DeleteRule,
    DeleteSelection,
    DeleteTuple,
    Edit,
    InsertTuple,
    RepairCandidate,
)


class RepairApplicationError(Exception):
    """Raised when an edit cannot be applied (e.g. unknown rule)."""


@dataclass
class RepairedProgram:
    """The outcome of applying a repair candidate."""

    program: Program
    inserted_tuples: List[NDTuple] = field(default_factory=list)
    removed_tuples: List[NDTuple] = field(default_factory=list)
    candidate: Optional[RepairCandidate] = None

    def summary(self) -> str:
        lines = [f"repaired program ({len(self.program.rules)} rules)"]
        if self.candidate is not None:
            lines.append(f"candidate: {self.candidate.description}")
        for tup in self.inserted_tuples:
            lines.append(f"  + insert {tup}")
        for tup in self.removed_tuples:
            lines.append(f"  - remove {tup}")
        return "\n".join(lines)


def apply_candidate(program: Program, candidate: RepairCandidate) -> RepairedProgram:
    """Apply every edit of ``candidate`` to a clone of ``program``."""
    repaired = RepairedProgram(program=program.clone(), candidate=candidate)
    # Deletions of selections/predicates must be applied from the highest
    # index down so earlier deletions do not shift later indexes.
    ordered = sorted(candidate.edits, key=_deletion_sort_key)
    for edit in ordered:
        _apply_edit(repaired, edit)
    return repaired


def _deletion_sort_key(edit: Edit):
    if isinstance(edit, DeleteSelection):
        return (1, -edit.selection_index)
    if isinstance(edit, DeletePredicate):
        return (1, -edit.predicate_index)
    return (0, 0)


def _rule(repaired: RepairedProgram, name: str):
    try:
        return repaired.program.rule_named(name)
    except KeyError as exc:
        raise RepairApplicationError(f"rule {name!r} not found") from exc


def _apply_edit(repaired: RepairedProgram, edit: Edit):
    if isinstance(edit, ChangeConstant):
        rule = _rule(repaired, edit.rule)
        _check_index(rule.selections, edit.selection_index, "selection", edit.rule)
        selection = rule.selections[edit.selection_index]
        if edit.side == "left":
            selection.expr = BinOp(selection.expr.op, Const(edit.new_value),
                                   selection.expr.right)
        else:
            selection.expr = BinOp(selection.expr.op, selection.expr.left,
                                   Const(edit.new_value))
    elif isinstance(edit, ChangeOperator):
        rule = _rule(repaired, edit.rule)
        _check_index(rule.selections, edit.selection_index, "selection", edit.rule)
        selection = rule.selections[edit.selection_index]
        selection.expr = BinOp(edit.new_op, selection.expr.left, selection.expr.right)
    elif isinstance(edit, DeleteSelection):
        rule = _rule(repaired, edit.rule)
        _check_index(rule.selections, edit.selection_index, "selection", edit.rule)
        del rule.selections[edit.selection_index]
    elif isinstance(edit, DeletePredicate):
        rule = _rule(repaired, edit.rule)
        _check_index(rule.body, edit.predicate_index, "predicate", edit.rule)
        if len(rule.body) <= 1:
            raise RepairApplicationError(
                f"cannot delete the only body predicate of rule {edit.rule}")
        del rule.body[edit.predicate_index]
    elif isinstance(edit, ChangeAssignment):
        rule = _rule(repaired, edit.rule)
        _check_index(rule.assignments, edit.assignment_index, "assignment", edit.rule)
        rule.assignments[edit.assignment_index].expr = edit.new_expr.clone()
    elif isinstance(edit, ChangeRuleHead):
        rule = _rule(repaired, edit.rule)
        rule.head = edit.new_head.clone()
    elif isinstance(edit, CopyRule):
        repaired.program.rules.append(edit.new_rule.clone())
    elif isinstance(edit, AddRule):
        repaired.program.rules.append(edit.new_rule.clone())
    elif isinstance(edit, DeleteRule):
        index = repaired.program.rule_index(edit.rule)
        del repaired.program.rules[index]
    elif isinstance(edit, InsertTuple):
        repaired.inserted_tuples.append(edit.tuple)
    elif isinstance(edit, DeleteTuple):
        repaired.removed_tuples.append(edit.tuple)
    elif isinstance(edit, ChangeTuple):
        repaired.removed_tuples.append(edit.tuple)
        repaired.inserted_tuples.append(edit.tuple.replace(edit.column, edit.new_value))
    else:
        raise RepairApplicationError(f"unknown edit type {type(edit).__name__}")


def _check_index(items, index, what, rule_name):
    if index < 0 or index >= len(items):
        raise RepairApplicationError(
            f"{what} index {index} out of range for rule {rule_name}")
