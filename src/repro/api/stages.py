"""The pipeline stages: Diagnose → Generate → Backtest → Rank.

Each :class:`Stage` is a small, pluggable unit with declared inputs
(:attr:`Stage.requires`) and one named output (:attr:`Stage.provides`).
Stages read and write the session's artifact store, so intermediate
results — the history index, the exploration, the backtest report — are
first-class: a session can stop after any stage, be inspected, and resume
where it left off; a custom pipeline can replace any stage (the policy-DSL
example substitutes its own Generate/Backtest stages while keeping the
session shell, event stream and CLI rendering).

The four standard stages reproduce exactly the legacy
``MetaProvenanceDebugger.diagnose()`` pipeline, phase timings included:

* :class:`DiagnoseStage` — replay the recorded trace under the buggy
  program and index the historical base tuples (``history_lookups``).
* :class:`GenerateStage` — explore the meta provenance forest and extract
  repair candidates in cost order (``constraint_solving`` +
  ``patch_generation``).
* :class:`BacktestStage` — evaluate every candidate against the recorded
  traffic, locally or through the distributed fabric (``replay``).
* :class:`RankStage` — order the survivors by complexity.
"""

from __future__ import annotations

from typing import Tuple

from ..backtest.ranking import rank_results
from ..events import (CandidateFound, CandidateVetoed, WarmEngineStats,
                      progress_to_events)
from ..meta.explorer import MetaProvenanceExplorer


class StageError(RuntimeError):
    """Raised when a stage cannot run (missing inputs, bad wiring)."""


class Stage:
    """One pluggable pipeline step.

    Subclasses set :attr:`name` (the event-stream / CLI label),
    :attr:`provides` (the artifact key they fill) and :attr:`requires`
    (artifact keys that must exist before :meth:`run`), and implement
    :meth:`run`, returning the artifact value.
    """

    name: str = "stage"
    provides: str = "artifact"
    requires: Tuple[str, ...] = ()

    def run(self, session):
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__} {self.name!r}>"


class DiagnoseStage(Stage):
    """Build the history index for the scenario's recorded trace."""

    name = "diagnose"
    provides = "history"

    def run(self, session):
        scenario = session.scenario
        return scenario.history_index(trace_limit=session.config.trace_limit)


class GenerateStage(Stage):
    """Explore meta provenance and extract candidates in cost order."""

    name = "generate"
    provides = "exploration"
    requires = ("history",)

    def run(self, session):
        scenario = session.scenario
        explorer = MetaProvenanceExplorer(
            scenario.program, session.artifacts["history"],
            cost_model=session.cost_model,
            max_candidates=session.config.max_candidates)
        exploration = explorer.explore_missing(scenario.goal())
        total = len(exploration.candidates)
        for index, candidate in enumerate(exploration.candidates, 1):
            session.events.emit(CandidateFound(
                index=index, total=total, tag=candidate.tag,
                description=candidate.description, cost=candidate.cost))
        return exploration


class BacktestStage(Stage):
    """Replay every candidate against the recorded traffic."""

    name = "backtest"
    provides = "backtest"
    requires = ("exploration",)

    def run(self, session):
        from ..ndlog.plan import PLAN_CACHE

        config = session.config
        telemetry = session.telemetry
        backtester = config.make_backtester(session.scenario)
        backtester.telemetry = telemetry
        session.backtester = backtester
        candidates = session.artifacts["exploration"].candidates
        scheduler = config.make_scheduler(events=session.events,
                                          telemetry=telemetry)
        plan_cache_before = PLAN_CACHE.stats()
        try:
            if scheduler is not None:
                # The coordinator publishes BacktestProgress itself.
                report = backtester.evaluate_all(candidates,
                                                 scheduler=scheduler)
            else:
                report = backtester.evaluate_all(
                    candidates, progress=progress_to_events(session.events))
        finally:
            if scheduler is not None:
                scheduler.close()
        for result in report.results:
            note = next((str(n) for n in result.notes
                         if str(n).startswith("vetoed by static analysis")),
                        None)
            if note is not None:
                reason = note.rsplit(": ", 1)[-1]
                session.events.emit(CandidateVetoed(
                    description=(result.candidate.description
                                 if result.candidate else ""),
                    reason=reason, note=note))
        probes = backtester.probe_counters()
        plan_cache_after = PLAN_CACHE.stats()
        plan_hits = plan_cache_after["hits"] - plan_cache_before["hits"]
        plan_misses = (plan_cache_after["misses"]
                       - plan_cache_before["misses"])
        if (backtester.warm_hits or backtester.warm_fallbacks
                or backtester.vetoed
                or probes["inert_probe_hits"] or probes["inert_probe_misses"]
                or plan_hits or plan_misses):
            session.events.emit(WarmEngineStats(
                hits=backtester.warm_hits,
                fallbacks=backtester.warm_fallbacks,
                vetoed=backtester.vetoed,
                probe_hits=probes["inert_probe_hits"],
                probe_misses=probes["inert_probe_misses"],
                plan_cache_hits=plan_hits,
                plan_cache_misses=plan_misses))
        if telemetry is not None:
            self._record_metrics(telemetry, backtester, report, probes,
                                 plan_hits, plan_misses)
        return report

    @staticmethod
    def _record_metrics(telemetry, backtester, report, probes, plan_hits,
                        plan_misses) -> None:
        """Consolidate the stage's scattered counters into the registry.

        These are the ad-hoc numbers that used to live only on backtester
        attributes and the WarmEngineStats event; with telemetry on they
        become first-class metrics (``repro stats``, Prometheus dump).
        """
        metrics = telemetry.metrics
        metrics.counter("plan_cache_hits").inc(plan_hits)
        metrics.counter("plan_cache_misses").inc(plan_misses)
        metrics.counter("warm_hits").inc(backtester.warm_hits)
        metrics.counter("warm_fallbacks").inc(backtester.warm_fallbacks)
        metrics.counter("candidates_vetoed").inc(backtester.vetoed)
        metrics.counter("probe_hits").inc(probes["inert_probe_hits"])
        metrics.counter("probe_misses").inc(probes["inert_probe_misses"])
        metrics.counter("candidates_backtested").inc(len(report.results))
        metrics.gauge("backtest_packet_count").set(report.packet_count)
        if report.elapsed_seconds:
            metrics.gauge("packets_replayed_per_second").set(
                report.packet_count * max(1, len(report.results))
                / report.elapsed_seconds)


class RankStage(Stage):
    """Order accepted repairs by complexity (what the operator sees)."""

    name = "rank"
    provides = "suggestions"
    requires = ("backtest",)

    def run(self, session):
        return rank_results(session.artifacts["backtest"].results,
                            accepted_only=True)


#: The standard pipeline, in order.
DEFAULT_STAGES: Tuple[Stage, ...] = (
    DiagnoseStage(), GenerateStage(), BacktestStage(), RankStage())
