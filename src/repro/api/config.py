"""Declarative configuration for a full repair run.

:class:`RepairConfig` absorbs every knob that used to be scattered across
constructors — the debugger's candidate budget and cost model, the
backtesters' ``workers``/``replay_batch_size``/``warm_engine``/KS
acceptance parameters, the scheduler's transport choice and the early-abort
policy — into one dataclass that round-trips to JSON alongside
:class:`~repro.scenarios.spec.ScenarioSpec`.  A serialized config plus its
scenario spec is therefore a complete, wire-shippable description of a
repair run: the same object can configure an in-process session, be saved
as a file for ``python -m repro repair --config``, or be dispatched to a
remote coordinator.

The config is *declarative*: it holds names and numbers, never live
objects.  Factory methods (:meth:`RepairConfig.build_scenario`,
:meth:`cost_model`, :meth:`make_backtester`, :meth:`make_scheduler`)
construct the runtime pieces, so construction logic lives in one place
instead of being hand-wired at every call site.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Optional

from ..backtest.abort import EarlyAbortPolicy
from ..distrib.faults import FaultToleranceConfig
from ..meta.costs import CostModel
from ..scenarios.spec import ScenarioSpec


class ConfigError(ValueError):
    """Raised for malformed or inconsistent repair configurations."""


@dataclass
class TelemetryConfig:
    """Knobs for the observability layer (:mod:`repro.obs`).

    ``RepairConfig.telemetry`` is ``None`` when telemetry is off — the
    default — so disabled runs construct nothing.
    """

    #: Master switch; ``TelemetryConfig()`` alone means "on".
    enabled: bool = True
    #: Emit a ``replay.slice`` span every N packets during candidate
    #: replays (``None`` = no slice spans, just per-candidate replay spans).
    slice_packets: Optional[int] = None
    #: Capture a cProfile per pipeline stage (pstats text tables on
    #: ``telemetry.profiles``).
    profile: bool = False
    #: Attach the tracer to replay engines so every PacketIn fixpoint gets
    #: its own span (``engine.fixpoint``) — verbose; for deep dives only.
    trace_fixpoints: bool = False

    def to_wire(self) -> Dict[str, object]:
        return {"enabled": self.enabled, "slice_packets": self.slice_packets,
                "profile": self.profile,
                "trace_fixpoints": self.trace_fixpoints}

    @classmethod
    def from_wire(cls, wire: Dict[str, object]) -> "TelemetryConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(wire) - known
        if unknown:
            raise ConfigError(f"unknown telemetry keys: {sorted(unknown)}")
        return cls(**wire)


@dataclass
class RepairConfig:
    """Every knob of the Diagnose → Generate → Backtest → Rank pipeline."""

    #: The scenario to repair, as a spawn-safe declarative handle.  May be
    #: ``None`` when the session is given a live scenario object directly
    #: (then the config is not fully serializable).
    scenario: Optional[ScenarioSpec] = None

    # -- Generate: candidate exploration --------------------------------
    #: Stop exploring once this many candidates were extracted.
    max_candidates: int = 20
    #: Per-edit-kind cost overrides (merged over the paper's defaults).
    cost_overrides: Dict[str, float] = field(default_factory=dict)
    #: Candidate cost cutoff; ``None`` keeps the cost model's default.
    cost_cutoff: Optional[float] = None
    #: Surcharge for far-away constant changes; ``None`` keeps the default.
    far_constant_surcharge: Optional[float] = None
    #: Per-vertex expansion cost; ``None`` keeps the default.
    expansion_cost: Optional[float] = None

    # -- Backtest: replay and acceptance --------------------------------
    #: Use the multi-query (shared-trunk) backtester of Section 4.4.
    multiquery: bool = False
    #: KS acceptance threshold; ``None`` uses the scenario's own default.
    ks_threshold: Optional[float] = None
    #: Significance level when ``use_significance`` is on.
    alpha: float = 0.05
    #: Accept by KS significance test instead of the fixed threshold.
    use_significance: bool = False
    #: Replay only this many trace packets (``None`` = whole trace).
    trace_limit: Optional[int] = None
    #: Reject repairs multiplying controller PacketIn load by more than this.
    max_packet_in_growth: Optional[float] = None
    #: Replay the trace in bursts of this size where statically safe.
    replay_batch_size: Optional[int] = None
    #: Switch candidates on a warm engine (checkpoint restore + rule delta).
    warm_engine: bool = True
    #: Statically vet candidates before replay; provably behaviour-
    #: preserving ones (inert inserts, no-op edits) skip backtesting and
    #: are reported rejected with a ``vetoed`` note.
    static_vet: bool = True
    #: Optional mid-trace kill switch for hopeless candidates.
    abort: Optional[EarlyAbortPolicy] = None

    # -- Scheduling: where candidate evaluations run --------------------
    #: Worker count for candidate evaluation (1 = serial).
    workers: int = 1
    #: Distributed-fabric transport name (``"inprocess"``, ``"spawn"``,
    #: ``"socket"``); ``None`` uses the local path (fork pool when
    #: ``workers > 1`` and the platform has fork).
    transport: Optional[str] = None
    #: Extra keyword arguments for the transport (e.g. socket ``port``).
    transport_options: Dict[str, object] = field(default_factory=dict)
    #: Fabric fault-tolerance policy (retry budget, worker restart budget,
    #: per-item deadlines, degradation floor); ``None`` = the defaults in
    #: :class:`repro.distrib.FaultToleranceConfig`, which keep fault-free
    #: runs bit-identical to a fabric without fault tolerance.
    fault_tolerance: Optional[FaultToleranceConfig] = None

    # -- Observability ---------------------------------------------------
    #: Tracing/metrics/profiling knobs; ``None`` = telemetry off (the
    #: disabled path constructs nothing and costs nothing).
    telemetry: Optional[TelemetryConfig] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def for_scenario(cls, name: str, params: Optional[Dict[str, object]] = None,
                     **knobs) -> "RepairConfig":
        """Config for a registered scenario: ``RepairConfig.for_scenario("Q1")``."""
        return cls(scenario=ScenarioSpec.create(name, params=params), **knobs)

    def with_updates(self, **knobs) -> "RepairConfig":
        """A copy with some knobs replaced (configs are cheap values)."""
        return replace(self, **knobs)

    # ------------------------------------------------------------------
    # Factories: the one place runtime pieces are wired from knobs
    # ------------------------------------------------------------------

    def build_scenario(self):
        if self.scenario is None:
            raise ConfigError("config has no ScenarioSpec; pass a scenario "
                              "object to RepairSession or set config.scenario")
        return self.scenario.build()

    def cost_model(self) -> CostModel:
        model = CostModel()
        if self.cost_overrides:
            model.costs.update(self.cost_overrides)
        if self.cost_cutoff is not None:
            model.cutoff = self.cost_cutoff
        if self.far_constant_surcharge is not None:
            model.far_constant_surcharge = self.far_constant_surcharge
        if self.expansion_cost is not None:
            model.expansion_cost = self.expansion_cost
        return model

    def resolve_ks_threshold(self, scenario) -> float:
        if self.ks_threshold is not None:
            return self.ks_threshold
        return getattr(scenario, "ks_threshold", 0.05)

    def make_backtester(self, scenario):
        """The configured backtester (class choice + every replay knob)."""
        from ..backtest.multiquery import MultiQueryBacktester
        from ..backtest.replay import Backtester
        backtester_class = MultiQueryBacktester if self.multiquery else Backtester
        return backtester_class(
            scenario,
            ks_threshold=self.resolve_ks_threshold(scenario),
            alpha=self.alpha,
            use_significance=self.use_significance,
            trace_limit=self.trace_limit,
            max_packet_in_growth=self.max_packet_in_growth,
            workers=self.workers,
            replay_batch_size=self.replay_batch_size,
            abort_policy=self.abort,
            warm_engine=self.warm_engine,
            static_vet=self.static_vet)

    def make_scheduler(self, progress=None, events=None, telemetry=None):
        """The configured distributed scheduler, or ``None`` for local runs.

        This is the single construction path from declarative knobs to a
        :class:`repro.distrib.Scheduler` — call sites no longer hand-wire
        transports, worker counts and abort policies.
        """
        if self.transport is None:
            return None
        from ..distrib.coordinator import Scheduler
        return Scheduler.from_config(self, progress=progress, events=events,
                                     telemetry=telemetry)

    def make_telemetry(self):
        """A live :class:`repro.obs.Telemetry` bundle, or ``None`` when the
        ``telemetry`` knob is absent or disabled."""
        if self.telemetry is None or not self.telemetry.enabled:
            return None
        from ..obs import Telemetry
        return Telemetry(slice_packets=self.telemetry.slice_packets,
                         profile=self.telemetry.profile,
                         trace_fixpoints=self.telemetry.trace_fixpoints)

    # ------------------------------------------------------------------
    # Wire format (rides alongside ScenarioSpec / candidate wires)
    # ------------------------------------------------------------------

    def to_wire(self) -> Dict[str, object]:
        wire: Dict[str, object] = {}
        for config_field in fields(self):
            value = getattr(self, config_field.name)
            if config_field.name in ("scenario", "abort", "telemetry",
                                     "fault_tolerance"):
                value = value.to_wire() if value is not None else None
            wire[config_field.name] = value
        return wire

    @classmethod
    def from_wire(cls, wire: Dict[str, object]) -> "RepairConfig":
        data = dict(wire)
        known = {config_field.name for config_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown config keys: {sorted(unknown)}")
        if data.get("scenario") is not None:
            data["scenario"] = ScenarioSpec.from_wire(data["scenario"])
        if data.get("abort") is not None:
            data["abort"] = EarlyAbortPolicy.from_wire(data["abort"])
        if data.get("telemetry") is not None:
            data["telemetry"] = TelemetryConfig.from_wire(data["telemetry"])
        if data.get("fault_tolerance") is not None:
            try:
                data["fault_tolerance"] = FaultToleranceConfig.from_wire(
                    data["fault_tolerance"])
            except ValueError as exc:
                raise ConfigError(str(exc)) from exc
        try:
            return cls(**data)
        except TypeError as exc:
            raise ConfigError(f"malformed repair config: {exc}") from exc

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_wire(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RepairConfig":
        try:
            wire = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"config is not valid JSON: {exc}") from exc
        if not isinstance(wire, dict):
            raise ConfigError("config JSON must be an object")
        return cls.from_wire(wire)

    @classmethod
    def from_file(cls, path) -> "RepairConfig":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
