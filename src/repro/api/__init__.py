"""The unified repair-pipeline API.

One import point for the redesigned end-to-end surface:

* :class:`RepairConfig` — every knob of a repair run in one declarative,
  JSON-round-trippable dataclass (:mod:`repro.api.config`);
* :class:`RepairSession` — the facade composing the pipeline stages
  Diagnose → Generate → Backtest → Rank with resumable artifacts
  (:mod:`repro.api.session`, :mod:`repro.api.stages`);
* the streaming event surface — :class:`EventBus` and the
  :class:`SessionEvent` hierarchy (re-exported from :mod:`repro.events`);
* :func:`repair` — the one-call convenience wrapper.

The legacy ``MetaProvenanceDebugger`` remains as a deprecation shim over
this API; new code should start here::

    from repro.api import RepairConfig, RepairSession

    config = RepairConfig.for_scenario("Q1", max_candidates=14)
    session = RepairSession(config)
    report = session.run()
"""

from ..distrib.faults import FaultPlan, FaultToleranceConfig
from ..events import (BacktestProgress, CandidateAborted, CandidateFound,
                      CandidateQuarantined, CandidateVetoed, EventBus,
                      FabricFaultStats, JsonlEventWriter, SessionEvent,
                      SessionFinished, SessionStarted, StageFinished,
                      StageStarted, WarmEngineStats, event_from_wire,
                      progress_to_events)
from .config import ConfigError, RepairConfig, TelemetryConfig
from .session import DiagnosisReport, PhaseTimings, RepairSession, repair
from .stages import (DEFAULT_STAGES, BacktestStage, DiagnoseStage,
                     GenerateStage, RankStage, Stage, StageError)

__all__ = [
    "BacktestProgress", "BacktestStage", "CandidateAborted", "CandidateFound",
    "CandidateQuarantined", "CandidateVetoed", "ConfigError", "DEFAULT_STAGES",
    "DiagnoseStage", "DiagnosisReport", "EventBus", "FabricFaultStats",
    "FaultPlan", "FaultToleranceConfig", "GenerateStage", "JsonlEventWriter",
    "PhaseTimings", "RankStage", "RepairConfig", "RepairSession",
    "SessionEvent", "SessionFinished", "SessionStarted", "Stage",
    "StageError", "StageFinished", "StageStarted", "TelemetryConfig",
    "WarmEngineStats", "event_from_wire", "progress_to_events", "repair",
]
