"""The :class:`RepairSession` facade: one object, the whole repair pipeline.

A session binds a declarative :class:`~repro.api.config.RepairConfig` to a
stage pipeline (default: Diagnose → Generate → Backtest → Rank) and an
:class:`~repro.events.EventBus`.  Running it produces the same
:class:`DiagnosisReport` the legacy ``MetaProvenanceDebugger.diagnose()``
returned — bit-identical candidates, verdicts and KS statistics — while
exposing what the monolithic call hid:

* **resumable artifacts** — ``session.run(until="generate")`` stops after
  candidate extraction; the partial results sit in ``session.artifacts``
  and a later ``session.run()`` picks up where it stopped instead of
  recomputing;
* **streaming events** — stage boundaries, extracted candidates, per-
  candidate backtest verdicts and warm-engine statistics are published on
  ``session.events`` while the run is in flight;
* **declarative scheduling** — the backtester, worker count, transport and
  abort policy all flow from the config, so the identical session
  description runs serially, on a local pool, or against remote workers.

Quickstart::

    from repro.api import RepairConfig, RepairSession

    config = RepairConfig.for_scenario("Q1", max_candidates=14)
    report = RepairSession(config).run()
    print(report.summary())
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..backtest.ranking import rank_results
from ..backtest.replay import BacktestReport, BacktestResult
from ..events import (EventBus, SessionFinished, SessionStarted,
                      StageFinished, StageStarted)
from ..meta.costs import CostModel
from ..meta.explorer import ExplorationResult
from ..repair.candidates import RepairCandidate
from .config import ConfigError, RepairConfig
from .stages import DEFAULT_STAGES, Stage, StageError


@dataclass
class PhaseTimings:
    """Wall-clock seconds per pipeline phase (the Figure 9a breakdown)."""

    history_lookups: float = 0.0
    constraint_solving: float = 0.0
    patch_generation: float = 0.0
    replay: float = 0.0

    @property
    def total(self) -> float:
        return (self.history_lookups + self.constraint_solving
                + self.patch_generation + self.replay)

    def as_dict(self):
        return {
            "history_lookups": self.history_lookups,
            "constraint_solving": self.constraint_solving,
            "patch_generation": self.patch_generation,
            "replay": self.replay,
            "total": self.total,
        }


@dataclass
class DiagnosisReport:
    """Everything one repair run produces for a diagnostic query."""

    scenario_name: str
    symptom: str
    exploration: ExplorationResult
    backtest: BacktestReport
    timings: PhaseTimings

    @property
    def candidates(self) -> List[RepairCandidate]:
        return self.exploration.candidates

    def suggestions(self) -> List[BacktestResult]:
        """Accepted repairs, in complexity order (what the operator sees)."""
        return rank_results(self.backtest.results, accepted_only=True)

    def counts(self):
        """(candidates generated, candidates surviving backtest) — Table 1."""
        return len(self.backtest.results), len(self.suggestions())

    def summary(self) -> str:
        generated, surviving = self.counts()
        lines = [
            f"Scenario {self.scenario_name}: {self.symptom}",
            f"  generated {generated} repair candidates, "
            f"{surviving} survived backtesting",
            f"  turnaround: {self.timings.total:.2f}s "
            f"(history {self.timings.history_lookups:.2f}s, "
            f"solving {self.timings.constraint_solving:.2f}s, "
            f"patches {self.timings.patch_generation:.2f}s, "
            f"replay {self.timings.replay:.2f}s)",
        ]
        for result in self.suggestions():
            lines.append(f"    suggested: {result.candidate.description} "
                         f"(KS {result.ks.statistic:.5f})")
        return "\n".join(lines)

    def to_wire(self) -> Dict[str, object]:
        """JSON-able view of the run (what ``repro repair --json`` prints)."""
        return {
            "scenario": self.scenario_name,
            "symptom": self.symptom,
            "generated": len(self.backtest.results),
            "surviving": len(self.suggestions()),
            "timings": self.timings.as_dict(),
            "packet_count": self.backtest.packet_count,
            "results": [
                {
                    "tag": result.candidate.tag,
                    "description": result.candidate.description,
                    "cost": result.candidate.cost,
                    "ks_statistic": result.ks.statistic,
                    "effective": result.effective,
                    "accepted": result.accepted,
                    "notes": list(result.notes),
                }
                for result in self.backtest.results
            ],
            "suggestions": [result.candidate.description
                            for result in self.suggestions()],
        }


class RepairSession:
    """Runs a configured repair pipeline, stage by stage.

    ``scenario`` may be passed explicitly for scenarios that are not in
    the registry (then the config's spec is optional); ``cost_model``
    likewise overrides the config's declarative cost knobs for callers
    holding a live :class:`CostModel`.  ``stages`` replaces the standard
    pipeline with a custom one.
    """

    def __init__(self, config: Optional[RepairConfig] = None,
                 scenario=None,
                 events: Optional[EventBus] = None,
                 stages: Optional[Sequence[Stage]] = None,
                 cost_model: Optional[CostModel] = None):
        self.config = config or RepairConfig()
        self.events = events if events is not None else EventBus()
        self.stages: List[Stage] = list(stages
                                        if stages is not None else DEFAULT_STAGES)
        self._scenario = scenario
        self._cost_model = cost_model
        #: Live telemetry bundle (``None`` when the config's ``telemetry``
        #: knob is off — the entire observability layer then costs nothing).
        self.telemetry = self.config.make_telemetry()
        if self.telemetry is not None:
            # Trace/span ids ride every event; sink failures land in the
            # session's metric registry.
            self.events.stamp = self.telemetry.stamp_event
            self.events.metrics = self.telemetry.metrics
        #: Intermediate results, keyed by each stage's ``provides`` name.
        self.artifacts: Dict[str, object] = {}
        #: Wall-clock seconds per completed stage, by stage name.
        self.stage_seconds: Dict[str, float] = {}
        #: The backtester built by the backtest stage (for warm statistics).
        self.backtester = None

    @classmethod
    def from_wire(cls, wire: Dict[str, object],
                  events: Optional[EventBus] = None,
                  stages: Optional[Sequence[Stage]] = None) -> "RepairSession":
        """A session from a ``RepairConfig`` wire dict.

        The construction path of the repair service: an HTTP body or a
        coordinator frame carries the config wire, and this turns it
        straight into a runnable session.  Raises
        :class:`~repro.api.config.ConfigError` on malformed wires.
        """
        if not isinstance(wire, dict):
            raise ConfigError("repair config wire must be an object")
        return cls(RepairConfig.from_wire(dict(wire)), events=events,
                   stages=stages)

    # ------------------------------------------------------------------
    # Lazy runtime pieces
    # ------------------------------------------------------------------

    @property
    def scenario(self):
        if self._scenario is None:
            self._scenario = self.config.build_scenario()
        return self._scenario

    @property
    def cost_model(self) -> CostModel:
        if self._cost_model is None:
            self._cost_model = self.config.cost_model()
        return self._cost_model

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def stage(self, name: str) -> Stage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise StageError(f"no stage named {name!r}; have "
                         f"{[s.name for s in self.stages]}")

    def completed(self, stage: Stage) -> bool:
        return stage.provides in self.artifacts

    def run_stage(self, stage: Stage):
        """Run one stage (its inputs must exist) and store its artifact."""
        missing = [key for key in stage.requires if key not in self.artifacts]
        if missing:
            raise StageError(f"stage {stage.name!r} requires artifacts "
                             f"{missing}; run the earlier stages first")
        span = profiler = None
        if self.telemetry is not None:
            span = self.telemetry.span(f"stage.{stage.name}",
                                       stage=stage.name)
            if self.telemetry.profile:
                from ..obs import StageProfiler
                profiler = StageProfiler().__enter__()
        self.events.emit(StageStarted(stage=stage.name))
        started = _time.perf_counter()
        try:
            artifact = stage.run(self)
        finally:
            elapsed = _time.perf_counter() - started
            if profiler is not None:
                profiler.__exit__(None, None, None)
                self.telemetry.profiles[stage.name] = profiler.text
            if span is not None:
                span.finish()
                self.telemetry.metrics.histogram(
                    "stage_seconds", stage=stage.name).observe(elapsed)
        self.artifacts[stage.provides] = artifact
        self.stage_seconds[stage.name] = elapsed
        self.events.emit(StageFinished(stage=stage.name,
                                       elapsed_seconds=elapsed))
        return artifact

    def run(self, until: Optional[str] = None) -> Optional[DiagnosisReport]:
        """Run the pipeline (resuming after completed stages).

        ``until`` names the last stage to run — later stages stay pending
        and their artifacts absent.  Returns the :class:`DiagnosisReport`
        once the standard artifacts exist, else ``None`` (partial runs and
        custom pipelines; the artifacts are on :attr:`artifacts`).
        """
        stages = self.stages
        if until is not None:
            self.stage(until)         # reject unknown names loudly
            cutoff = next(i for i, stage in enumerate(stages)
                          if stage.name == until)
            stages = stages[:cutoff + 1]
        pending = [stage for stage in stages if not self.completed(stage)]
        started = _time.perf_counter()
        session_span = None
        if pending and self.telemetry is not None:
            session_span = self.telemetry.span(
                "session", scenario=self._scenario_name())
        try:
            if pending:
                self.events.emit(SessionStarted(
                    scenario=self._scenario_name(),
                    symptom=self._symptom(),
                    stages=tuple(stage.name for stage in pending)))
            for stage in pending:
                self.run_stage(stage)
        finally:
            if session_span is not None:
                session_span.finish()
        report = self.report()
        if pending and report is not None and (until is None
                                               or until == self.stages[-1].name):
            generated, surviving = report.counts()
            self.events.emit(SessionFinished(
                scenario=report.scenario_name, generated=generated,
                surviving=surviving,
                elapsed_seconds=_time.perf_counter() - started))
        return report

    def reset(self, from_stage: Optional[str] = None) -> None:
        """Drop artifacts so stages re-run — all, or from one stage on."""
        if from_stage is not None:
            self.stage(from_stage)    # reject unknown names loudly
        dropping = False if from_stage is not None else True
        for stage in self.stages:
            if from_stage is not None and stage.name == from_stage:
                dropping = True
            if dropping:
                self.artifacts.pop(stage.provides, None)
                self.stage_seconds.pop(stage.name, None)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def timings(self) -> PhaseTimings:
        """Map stage timings onto the paper's Figure 9a phase breakdown."""
        timings = PhaseTimings()
        timings.history_lookups = self.stage_seconds.get("diagnose", 0.0)
        generation = self.stage_seconds.get("generate", 0.0)
        exploration = self.artifacts.get("exploration")
        solver_seconds = (exploration.stats.solver_seconds
                          if exploration is not None else 0.0)
        timings.constraint_solving = min(generation, solver_seconds)
        timings.patch_generation = max(0.0,
                                       generation - timings.constraint_solving)
        timings.replay = self.stage_seconds.get("backtest", 0.0)
        return timings

    def report(self) -> Optional[DiagnosisReport]:
        """The standard report, or ``None`` until its artifacts exist."""
        exploration = self.artifacts.get("exploration")
        backtest = self.artifacts.get("backtest")
        if exploration is None or backtest is None:
            return None
        return DiagnosisReport(
            scenario_name=self._scenario_name(),
            symptom=self._symptom(),
            exploration=exploration,
            backtest=backtest,
            timings=self.timings())

    def _scenario_name(self) -> str:
        if self._scenario is not None or self.config.scenario is None:
            return getattr(self.scenario, "name", "?")
        return self.config.scenario.name

    def _symptom(self) -> str:
        symptom = getattr(self.scenario, "symptom", None)
        return getattr(symptom, "description", "") if symptom else ""


def repair(scenario_name: str, events: Optional[EventBus] = None,
           **knobs) -> DiagnosisReport:
    """One-call convenience: ``repair("Q1", max_candidates=14)``."""
    config = RepairConfig.for_scenario(scenario_name, **knobs)
    return RepairSession(config, events=events).run()
