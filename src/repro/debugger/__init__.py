"""Top-level debugger API (symptom in, ranked repair suggestions out)."""

from .debugger import DiagnosisReport, MetaProvenanceDebugger, PhaseTimings

__all__ = ["DiagnosisReport", "MetaProvenanceDebugger", "PhaseTimings"]
