"""Legacy facade over the unified repair-pipeline API.

.. deprecated::
    :class:`MetaProvenanceDebugger` predates :mod:`repro.api`; it survives
    as a thin shim so existing imports keep working, but new code should
    use :class:`repro.api.RepairSession` with a declarative
    :class:`repro.api.RepairConfig`::

        from repro.api import RepairConfig, RepairSession

        config = RepairConfig.for_scenario("Q1", max_candidates=14)
        report = RepairSession(config).run()

:class:`DiagnosisReport` and :class:`PhaseTimings` now live in
:mod:`repro.api.session`; they are re-exported here unchanged, so result
handling code needs no migration.
"""

from __future__ import annotations

import warnings
from typing import Optional

from ..api.config import RepairConfig
from ..api.session import DiagnosisReport, PhaseTimings, RepairSession
from ..backtest.replay import Backtester
from ..meta.costs import CostModel
from ..meta.explorer import ExplorationResult
from ..meta.history import HistoryIndex

__all__ = ["DiagnosisReport", "MetaProvenanceDebugger", "PhaseTimings"]


class MetaProvenanceDebugger:
    """Deprecated one-call debugger; delegates to :class:`RepairSession`.

    The constructor signature is unchanged from the pre-API releases; every
    argument maps onto a :class:`RepairConfig` knob and ``diagnose()``
    simply runs a fresh session, so reports stay bit-identical to the old
    monolithic pipeline.
    """

    def __init__(self, scenario, cost_model: Optional[CostModel] = None,
                 max_candidates: int = 20,
                 use_multiquery_backtesting: bool = False,
                 trace_limit: Optional[int] = None,
                 max_packet_in_growth: Optional[float] = None,
                 ks_threshold: Optional[float] = None):
        warnings.warn(
            "MetaProvenanceDebugger is deprecated; use "
            "repro.api.RepairSession(RepairConfig) instead",
            DeprecationWarning, stacklevel=2)
        self.scenario = scenario
        self.cost_model = cost_model or CostModel()
        self.max_candidates = max_candidates
        self.use_multiquery_backtesting = use_multiquery_backtesting
        self.trace_limit = trace_limit
        self.max_packet_in_growth = max_packet_in_growth
        self.ks_threshold = (ks_threshold if ks_threshold is not None
                             else scenario.ks_threshold)

    @property
    def config(self) -> RepairConfig:
        """The equivalent declarative config, rebuilt from the *current*
        attributes — pre-API code that mutates e.g. ``max_candidates``
        between construction and ``diagnose()`` keeps working."""
        return RepairConfig(
            scenario=getattr(self.scenario, "spec", None),
            max_candidates=self.max_candidates,
            multiquery=self.use_multiquery_backtesting,
            trace_limit=self.trace_limit,
            max_packet_in_growth=self.max_packet_in_growth,
            ks_threshold=self.ks_threshold)

    def _session(self) -> RepairSession:
        return RepairSession(self.config, scenario=self.scenario,
                             cost_model=self.cost_model)

    # ------------------------------------------------------------------
    # Legacy pipeline surface (each step now runs one API stage)
    # ------------------------------------------------------------------

    def build_history(self) -> HistoryIndex:
        session = self._session()
        session.run(until="diagnose")
        return session.artifacts["history"]

    def generate_candidates(self, history: HistoryIndex) -> ExplorationResult:
        session = self._session()
        session.artifacts["history"] = history
        session.run(until="generate")
        return session.artifacts["exploration"]

    def backtester(self) -> Backtester:
        return self.config.make_backtester(self.scenario)

    def diagnose(self) -> DiagnosisReport:
        return self._session().run()
