"""The top-level debugger: from a symptom to a ranked list of repairs.

:class:`MetaProvenanceDebugger` runs the full pipeline of the paper for one
scenario:

1. **History lookups** — replay the recorded trace under the buggy program to
   rebuild controller state and index the historical base tuples.
2. **Repair generation** — explore the meta provenance forest for the
   symptom, extracting repair candidates in cost order (the "constraint
   solving" and "patch generation" phases of Figure 9a).
3. **Replay / backtesting** — evaluate every candidate against the historical
   traffic, weed out ineffective or harmful ones, and rank the survivors in
   complexity order.

The per-phase timings are recorded so the benchmark harness can regenerate
the Figure 9a/9c/10 breakdowns.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..backtest.multiquery import MultiQueryBacktester
from ..backtest.ranking import rank_results
from ..backtest.replay import BacktestReport, BacktestResult, Backtester
from ..meta.costs import CostModel
from ..meta.explorer import ExplorationResult, MetaProvenanceExplorer
from ..meta.history import HistoryIndex
from ..repair.candidates import RepairCandidate


@dataclass
class PhaseTimings:
    """Wall-clock seconds per pipeline phase (the Figure 9a breakdown)."""

    history_lookups: float = 0.0
    constraint_solving: float = 0.0
    patch_generation: float = 0.0
    replay: float = 0.0

    @property
    def total(self) -> float:
        return (self.history_lookups + self.constraint_solving
                + self.patch_generation + self.replay)

    def as_dict(self):
        return {
            "history_lookups": self.history_lookups,
            "constraint_solving": self.constraint_solving,
            "patch_generation": self.patch_generation,
            "replay": self.replay,
            "total": self.total,
        }


@dataclass
class DiagnosisReport:
    """Everything the debugger produces for one diagnostic query."""

    scenario_name: str
    symptom: str
    exploration: ExplorationResult
    backtest: BacktestReport
    timings: PhaseTimings

    @property
    def candidates(self) -> List[RepairCandidate]:
        return self.exploration.candidates

    def suggestions(self) -> List[BacktestResult]:
        """Accepted repairs, in complexity order (what the operator sees)."""
        return rank_results(self.backtest.results, accepted_only=True)

    def counts(self):
        """(candidates generated, candidates surviving backtest) — Table 1."""
        return len(self.backtest.results), len(self.suggestions())

    def summary(self) -> str:
        generated, surviving = self.counts()
        lines = [
            f"Scenario {self.scenario_name}: {self.symptom}",
            f"  generated {generated} repair candidates, "
            f"{surviving} survived backtesting",
            f"  turnaround: {self.timings.total:.2f}s "
            f"(history {self.timings.history_lookups:.2f}s, "
            f"solving {self.timings.constraint_solving:.2f}s, "
            f"patches {self.timings.patch_generation:.2f}s, "
            f"replay {self.timings.replay:.2f}s)",
        ]
        for result in self.suggestions():
            lines.append(f"    suggested: {result.candidate.description} "
                         f"(KS {result.ks.statistic:.5f})")
        return "\n".join(lines)


class MetaProvenanceDebugger:
    """Diagnoses a scenario's symptom and suggests backtested repairs."""

    def __init__(self, scenario, cost_model: Optional[CostModel] = None,
                 max_candidates: int = 20,
                 use_multiquery_backtesting: bool = False,
                 trace_limit: Optional[int] = None,
                 max_packet_in_growth: Optional[float] = None,
                 ks_threshold: Optional[float] = None):
        self.scenario = scenario
        self.cost_model = cost_model or CostModel()
        self.max_candidates = max_candidates
        self.use_multiquery_backtesting = use_multiquery_backtesting
        self.trace_limit = trace_limit
        self.max_packet_in_growth = max_packet_in_growth
        self.ks_threshold = (ks_threshold if ks_threshold is not None
                             else scenario.ks_threshold)

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------

    def build_history(self) -> HistoryIndex:
        return self.scenario.history_index(trace_limit=self.trace_limit)

    def generate_candidates(self, history: HistoryIndex) -> ExplorationResult:
        explorer = MetaProvenanceExplorer(
            self.scenario.program, history, cost_model=self.cost_model,
            max_candidates=self.max_candidates)
        return explorer.explore_missing(self.scenario.goal())

    def backtester(self) -> Backtester:
        backtester_class = (MultiQueryBacktester if self.use_multiquery_backtesting
                            else Backtester)
        return backtester_class(
            self.scenario, ks_threshold=self.ks_threshold,
            trace_limit=self.trace_limit,
            max_packet_in_growth=self.max_packet_in_growth)

    def diagnose(self) -> DiagnosisReport:
        timings = PhaseTimings()

        started = _time.perf_counter()
        history = self.build_history()
        timings.history_lookups = _time.perf_counter() - started

        started = _time.perf_counter()
        exploration = self.generate_candidates(history)
        generation_seconds = _time.perf_counter() - started
        timings.constraint_solving = min(generation_seconds,
                                         exploration.stats.solver_seconds)
        timings.patch_generation = max(0.0, generation_seconds
                                       - timings.constraint_solving)

        started = _time.perf_counter()
        backtest = self.backtester().evaluate_all(exploration.candidates)
        timings.replay = _time.perf_counter() - started

        return DiagnosisReport(
            scenario_name=self.scenario.name,
            symptom=self.scenario.symptom.description,
            exploration=exploration,
            backtest=backtest,
            timings=timings)
