"""Backtesting of repair candidates against historical traffic."""

from .abort import EarlyAbortPolicy
from .metrics import (
    KSResult,
    compare_traffic,
    delivery_delta,
    destination_distribution,
    ks_two_sample,
    per_host_counts,
    total_variation_distance,
)
from .multiquery import MultiQueryBacktester, MultiQueryReport, modified_rule_names
from .ranking import format_table, rank_results, suggestion_list
from .replay import (BacktestReport, BacktestResult, Backtester,
                     WarmEvaluationState)

__all__ = [
    "EarlyAbortPolicy",
    "KSResult", "compare_traffic", "delivery_delta", "destination_distribution",
    "ks_two_sample", "per_host_counts", "total_variation_distance",
    "MultiQueryBacktester", "MultiQueryReport", "modified_rule_names",
    "format_table", "rank_results", "suggestion_list",
    "BacktestReport", "BacktestResult", "Backtester", "WarmEvaluationState",
]
