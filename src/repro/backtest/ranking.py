"""Ranking of backtested repair candidates.

Section 5.3: "After backtesting, the remaining candidates are presented to
the operator in complexity order, i.e., the simplest candidate is shown
first."  The metrics can also be used to break ties: among candidates of the
same complexity, the one with the smallest impact on the overall network is
preferred (Section 4.3).
"""

from __future__ import annotations

from typing import List, Sequence

from .replay import BacktestReport, BacktestResult


def rank_results(results: Sequence[BacktestResult],
                 accepted_only: bool = True) -> List[BacktestResult]:
    """Order results by (cost, KS statistic, candidate id)."""
    pool = [r for r in results if r.accepted] if accepted_only else list(results)
    return sorted(pool, key=lambda r: (r.candidate.cost, r.ks.statistic,
                                       r.candidate.candidate_id))


def suggestion_list(report: BacktestReport, limit: int = 10) -> List[BacktestResult]:
    """The final list shown to the operator."""
    return rank_results(report.results, accepted_only=True)[:limit]


def format_table(results: Sequence[BacktestResult]) -> str:
    """Render results in the style of the paper's Table 2."""
    lines = [f"{'tag':<6} {'repair candidate':<70} {'KS':>9}  verdict"]
    for result in results:
        verdict = "accepted" if result.accepted else "rejected"
        lines.append(f"{result.candidate.tag:<6} "
                     f"{result.candidate.description[:70]:<70} "
                     f"{result.ks.statistic:>9.5f}  {verdict}")
    return "\n".join(lines)
