"""Backtesting repair candidates by replaying historical traffic.

The :class:`Backtester` runs the *original* (buggy) program over the recorded
trace once to obtain the baseline traffic distribution, then replays the same
trace against each repaired program.  A candidate is

* **effective** if it fixes the symptom (the scenario's effectiveness
  predicate holds, e.g. "the backup web server receives at least some HTTP
  traffic"), and
* **accepted** if it is effective *and* does not significantly distort the
  traffic distribution of unrelated flows (two-sample KS test, Section 5.3).

Scenarios (see :mod:`repro.scenarios.base`) provide the environment: a fresh
topology, a controller factory for an arbitrary program, the recorded trace
and the effectiveness predicate.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..ndlog.ast import Program
from ..repair.apply import RepairedProgram, apply_candidate
from ..repair.candidates import RepairCandidate
from ..sdn.network import NetworkSimulator, TrafficStats
from .metrics import KSResult, compare_traffic


@dataclass
class BacktestResult:
    """Outcome of backtesting a single repair candidate."""

    candidate: RepairCandidate
    stats: TrafficStats
    ks: KSResult
    effective: bool
    accepted: bool
    elapsed_seconds: float = 0.0
    notes: Tuple[str, ...] = ()

    def summary_row(self) -> Tuple[str, str, float, str]:
        verdict = "accepted" if self.accepted else "rejected"
        return (self.candidate.tag, self.candidate.description,
                self.ks.statistic, verdict)

    def __str__(self):
        verdict = "3" if self.accepted else "5"
        return (f"{self.candidate.description} ({verdict})  "
                f"KS={self.ks.statistic:.5f}")


@dataclass
class BacktestReport:
    """Results for a whole candidate list."""

    baseline: TrafficStats
    results: List[BacktestResult] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: Number of trace packets each candidate was evaluated against.
    packet_count: int = 0

    def accepted(self) -> List[BacktestResult]:
        return [r for r in self.results if r.accepted]

    def effective(self) -> List[BacktestResult]:
        return [r for r in self.results if r.effective]

    def counts(self) -> Tuple[int, int]:
        """(candidates generated, candidates surviving backtest) — Table 1."""
        return len(self.results), len(self.accepted())


class Backtester:
    """Sequentially backtests repair candidates against a scenario."""

    def __init__(self, scenario, ks_threshold: float = 0.05,
                 alpha: float = 0.05, use_significance: bool = False,
                 trace_limit: Optional[int] = None,
                 max_packet_in_growth: Optional[float] = None):
        self.scenario = scenario
        self.ks_threshold = ks_threshold
        self.alpha = alpha
        self.use_significance = use_significance
        self.trace_limit = trace_limit
        #: Optional extra side-effect metric: reject repairs that multiply the
        #: controller's PacketIn load by more than this factor (the paper
        #: rejects some Q4 candidates for "significant increases of controller
        #: traffic").
        self.max_packet_in_growth = max_packet_in_growth
        self._baseline: Optional[TrafficStats] = None

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------

    def _trace(self):
        trace = self.scenario.trace()
        if self.trace_limit is not None:
            return trace[: self.trace_limit]
        return trace

    def run_program(self, program: Optional[Program] = None,
                    extra_tuples: Sequence = (),
                    removed_tuples: Sequence = ()) -> TrafficStats:
        """Replay the trace under a program; return its traffic statistics."""
        topology = self.scenario.build_topology()
        controller = self.scenario.build_controller(
            program=program, extra_tuples=extra_tuples,
            removed_tuples=removed_tuples)
        simulator = NetworkSimulator(
            topology, controller,
            require_packet_out=self.scenario.require_packet_out,
            record_ingress=False)
        simulator.run_trace(self._trace())
        return simulator.stats

    def baseline(self) -> TrafficStats:
        """Traffic distribution of the original (buggy) program."""
        if self._baseline is None:
            self._baseline = self.run_program(None)
        return self._baseline

    # ------------------------------------------------------------------
    # Candidate evaluation
    # ------------------------------------------------------------------

    def evaluate(self, candidate: RepairCandidate) -> BacktestResult:
        started = _time.perf_counter()
        repaired = apply_candidate(self.scenario.program, candidate)
        stats = self.run_program(repaired.program,
                                 extra_tuples=repaired.inserted_tuples,
                                 removed_tuples=repaired.removed_tuples)
        ks = compare_traffic(self.baseline(), stats)
        effective = bool(self.scenario.is_effective(stats))
        accepted = effective and not self._distorts(ks) \
            and not self._overloads_controller(stats)
        elapsed = _time.perf_counter() - started
        return BacktestResult(candidate=candidate, stats=stats, ks=ks,
                              effective=effective, accepted=accepted,
                              elapsed_seconds=elapsed, notes=candidate.notes)

    def _overloads_controller(self, stats: TrafficStats) -> bool:
        if self.max_packet_in_growth is None:
            return False
        baseline_load = max(1, self.baseline().packet_in_count)
        return stats.packet_in_count > baseline_load * self.max_packet_in_growth

    def _distorts(self, ks: KSResult) -> bool:
        if self.use_significance:
            return ks.significant(self.alpha)
        return ks.statistic > self.ks_threshold

    def evaluate_all(self, candidates: Sequence[RepairCandidate]) -> BacktestReport:
        started = _time.perf_counter()
        report = BacktestReport(baseline=self.baseline())
        report.packet_count = len(self._trace())
        for candidate in candidates:
            report.results.append(self.evaluate(candidate))
        report.elapsed_seconds = _time.perf_counter() - started
        return report
