"""Backtesting repair candidates by replaying historical traffic.

The :class:`Backtester` runs the *original* (buggy) program over the recorded
trace once to obtain the baseline traffic distribution, then replays the same
trace against each repaired program.  A candidate is

* **effective** if it fixes the symptom (the scenario's effectiveness
  predicate holds, e.g. "the backup web server receives at least some HTTP
  traffic"), and
* **accepted** if it is effective *and* does not significantly distort the
  traffic distribution of unrelated flows (two-sample KS test, Section 5.3).

Scenarios (see :mod:`repro.scenarios.base`) provide the environment: a fresh
topology, a controller factory for an arbitrary program, the recorded trace
and the effectiveness predicate.
"""

from __future__ import annotations

import multiprocessing
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..ndlog.ast import Program
from ..repair.apply import RepairedProgram, apply_candidate
from ..repair.candidates import RepairCandidate
from ..sdn.network import NetworkSimulator, TrafficStats
from .abort import EarlyAbortPolicy
from .metrics import KSResult, compare_traffic


def fork_available() -> bool:
    """Can candidate evaluation be sharded across ``fork`` processes?

    Fork sharding is the cheapest parallel path: workers inherit the
    already-computed shared trunk (baseline statistics, base delivery
    records, response caches) by copy-on-write instead of pickling scenario
    closures, which are not picklable.  On platforms without ``fork``
    (macOS/Windows default to ``spawn``) the backtesters degrade to the
    distributed fabric's spawn transport when the scenario carries a
    :class:`~repro.scenarios.spec.ScenarioSpec`, and only fall back to the
    serial path when it does not.
    """
    return "fork" in multiprocessing.get_all_start_methods()


#: Per-process state inherited by forked pool workers.  Set immediately
#: before the pool is created; workers index into it by candidate position,
#: so the only data crossing process boundaries are integers (inputs) and
#: candidate-stripped results (outputs).
_WORKER_STATE: Optional[Tuple[object, Sequence[RepairCandidate], object]] = None


def _evaluate_shard(index: int):
    """Top-level pool worker: evaluate one candidate from inherited state."""
    backtester, candidates, trunk = _WORKER_STATE
    outcome = backtester._evaluate_for_shard(candidates[index], trunk)
    # The candidate (with its meta-provenance tree) stays in the parent;
    # shipping only the stripped result keeps pickling cheap and robust.
    outcome.result.candidate = None
    return outcome


def _run_sharded(backtester, candidates: Sequence[RepairCandidate],
                 trunk, workers: int):
    """Map candidates over a fork pool, preserving input order."""
    global _WORKER_STATE
    processes = min(workers, len(candidates))
    context = multiprocessing.get_context("fork")
    _WORKER_STATE = (backtester, candidates, trunk)
    try:
        with context.Pool(processes=processes) as pool:
            outcomes = pool.map(_evaluate_shard, range(len(candidates)))
    finally:
        _WORKER_STATE = None
    for candidate, outcome in zip(candidates, outcomes):
        outcome.result.candidate = candidate
    return outcomes


@dataclass
class ShardOutcome:
    """What one per-candidate evaluation sends back from a worker."""

    result: "BacktestResult"
    shared_evaluations: int = 0
    candidate_evaluations: int = 0


@dataclass
class BacktestResult:
    """Outcome of backtesting a single repair candidate."""

    candidate: RepairCandidate
    stats: TrafficStats
    ks: KSResult
    effective: bool
    accepted: bool
    elapsed_seconds: float = 0.0
    notes: Tuple[str, ...] = ()

    def summary_row(self) -> Tuple[str, str, float, str]:
        verdict = "accepted" if self.accepted else "rejected"
        return (self.candidate.tag, self.candidate.description,
                self.ks.statistic, verdict)

    def __str__(self):
        verdict = "PASS" if self.accepted else "FAIL"
        return (f"{self.candidate.description} ({verdict})  "
                f"KS={self.ks.statistic:.5f}")


@dataclass
class BacktestReport:
    """Results for a whole candidate list."""

    baseline: TrafficStats
    results: List[BacktestResult] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: Number of trace packets each candidate was evaluated against.
    packet_count: int = 0

    def accepted(self) -> List[BacktestResult]:
        return [r for r in self.results if r.accepted]

    def effective(self) -> List[BacktestResult]:
        return [r for r in self.results if r.effective]

    def counts(self) -> Tuple[int, int]:
        """(candidates generated, candidates surviving backtest) — Table 1."""
        return len(self.results), len(self.accepted())


class Backtester:
    """Sequentially backtests repair candidates against a scenario."""

    def __init__(self, scenario, ks_threshold: float = 0.05,
                 alpha: float = 0.05, use_significance: bool = False,
                 trace_limit: Optional[int] = None,
                 max_packet_in_growth: Optional[float] = None,
                 workers: int = 1,
                 replay_batch_size: Optional[int] = None,
                 abort_policy: Optional[EarlyAbortPolicy] = None):
        self.scenario = scenario
        self.ks_threshold = ks_threshold
        self.alpha = alpha
        self.use_significance = use_significance
        self.trace_limit = trace_limit
        #: Optional extra side-effect metric: reject repairs that multiply the
        #: controller's PacketIn load by more than this factor (the paper
        #: rejects some Q4 candidates for "significant increases of controller
        #: traffic").
        self.max_packet_in_growth = max_packet_in_growth
        #: Candidate evaluations are independent once the shared trunk is
        #: cached; ``workers > 1`` shards them across a fork pool.  Results
        #: are bit-identical to the serial path and returned in input order.
        self.workers = workers
        #: Replay the trace in bursts of this size (one engine fixpoint per
        #: burst of PacketIns) when the controller program admits it; see
        #: :mod:`repro.controllers.batching`.
        self.replay_batch_size = replay_batch_size
        #: Optional mid-trace kill switch for hopeless candidates; see
        #: :class:`repro.backtest.abort.EarlyAbortPolicy`.  ``None`` (the
        #: default) replays every candidate to completion, keeping all
        #: execution paths bit-identical.
        self.abort_policy = abort_policy
        self._baseline: Optional[TrafficStats] = None

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------

    def _trace(self):
        trace = self.scenario.trace()
        if self.trace_limit is not None:
            return trace[: self.trace_limit]
        return trace

    def run_program(self, program: Optional[Program] = None,
                    extra_tuples: Sequence = (),
                    removed_tuples: Sequence = ()) -> TrafficStats:
        """Replay the trace under a program; return its traffic statistics."""
        topology = self.scenario.build_topology()
        controller = self.scenario.build_controller(
            program=program, extra_tuples=extra_tuples,
            removed_tuples=removed_tuples)
        simulator = NetworkSimulator(
            topology, controller,
            require_packet_out=self.scenario.require_packet_out,
            record_ingress=False)
        simulator.run_trace(self._trace(), batch_size=self.replay_batch_size)
        return simulator.stats

    def baseline(self) -> TrafficStats:
        """Traffic distribution of the original (buggy) program."""
        if self._baseline is None:
            self._baseline = self.run_program(None)
        return self._baseline

    # ------------------------------------------------------------------
    # Candidate evaluation
    # ------------------------------------------------------------------

    def evaluate(self, candidate: RepairCandidate) -> BacktestResult:
        started = _time.perf_counter()
        repaired = apply_candidate(self.scenario.program, candidate)
        abort_note = None
        if self.abort_policy is None:
            stats = self.run_program(repaired.program,
                                     extra_tuples=repaired.inserted_tuples,
                                     removed_tuples=repaired.removed_tuples)
        else:
            stats, abort_note = self._run_program_with_abort(repaired)
        ks = compare_traffic(self.baseline(), stats)
        if abort_note is not None:
            effective = accepted = False
            notes = candidate.notes + (abort_note,)
        else:
            effective = bool(self.scenario.is_effective(stats))
            accepted = effective and not self._distorts(ks) \
                and not self._overloads_controller(stats)
            notes = candidate.notes
        elapsed = _time.perf_counter() - started
        return BacktestResult(candidate=candidate, stats=stats, ks=ks,
                              effective=effective, accepted=accepted,
                              elapsed_seconds=elapsed, notes=notes)

    def _run_program_with_abort(self, repaired: RepairedProgram):
        """Per-packet replay with the abort policy's mid-trace checks.

        Returns ``(stats, note)`` where ``note`` is ``None`` for a completed
        replay or the abort reason (the statistics then cover only the
        replayed prefix).  Abortable replays forgo burst batching: the
        policy needs to observe statistics between packets.
        """
        policy = self.abort_policy
        baseline = self.baseline()
        topology = self.scenario.build_topology()
        controller = self.scenario.build_controller(
            program=repaired.program,
            extra_tuples=repaired.inserted_tuples,
            removed_tuples=repaired.removed_tuples)
        simulator = NetworkSimulator(
            topology, controller,
            require_packet_out=self.scenario.require_packet_out,
            record_ingress=False)
        trace = self._trace()
        threshold = None if self.use_significance else self.ks_threshold
        for done, (switch_id, packet) in enumerate(trace, 1):
            simulator.inject(packet, switch_id)
            if policy.due(done, len(trace)):
                reason = policy.breach(simulator.stats, done, baseline,
                                       threshold, self.max_packet_in_growth)
                if reason is not None:
                    note = (f"aborted after {done}/{len(trace)} packets: "
                            f"{reason}")
                    return simulator.stats, note
        return simulator.stats, None

    def _overloads_controller(self, stats: TrafficStats) -> bool:
        if self.max_packet_in_growth is None:
            return False
        baseline_load = max(1, self.baseline().packet_in_count)
        return stats.packet_in_count > baseline_load * self.max_packet_in_growth

    def _distorts(self, ks: KSResult) -> bool:
        if self.use_significance:
            return ks.significant(self.alpha)
        return ks.statistic > self.ks_threshold

    def _evaluate_for_shard(self, candidate: RepairCandidate,
                            trunk) -> ShardOutcome:
        """Hermetic per-candidate evaluation used by serial and pool paths.

        Subclasses override this (together with :meth:`_build_trunk`) to
        share more precomputed state; the base backtester only needs the
        cached baseline, which :meth:`evaluate_all` computes before forking.
        """
        return ShardOutcome(result=self.evaluate(candidate))

    def _build_trunk(self):
        """Precompute state shared by every candidate (parent process only)."""
        self.baseline()
        return None

    def _use_workers(self, candidates, workers: Optional[int]) -> int:
        """Effective worker count (platform capability is decided later)."""
        workers = self.workers if workers is None else workers
        if workers is None or workers <= 1 or len(candidates) <= 1:
            return 1
        return workers

    def _run_candidates(self, candidates: List[RepairCandidate],
                        workers: Optional[int],
                        scheduler) -> List[ShardOutcome]:
        """Evaluate candidates via the requested execution path.

        ``scheduler`` (a :class:`repro.distrib.Scheduler`) routes through
        the distributed backtest fabric.  Otherwise ``workers > 1`` shards
        over a ``fork`` pool when the platform has one; without ``fork`` the
        evaluation degrades to the fabric's ``spawn`` transport (the
        scenario's :class:`ScenarioSpec` makes workers reconstructible)
        rather than silently running serial.  All paths return bit-identical
        outcomes in input order.
        """
        if scheduler is not None:
            return scheduler.run(self, candidates)
        workers = self._use_workers(candidates, workers)
        if workers > 1:
            if fork_available():
                trunk = self._build_trunk()
                return _run_sharded(self, candidates, trunk, workers)
            if getattr(self.scenario, "spec", None) is not None:
                from ..distrib import Scheduler
                with Scheduler(transport="spawn", workers=workers) as degraded:
                    return degraded.run(self, candidates)
        trunk = self._build_trunk()
        return [self._evaluate_for_shard(candidate, trunk)
                for candidate in candidates]

    def evaluate_all(self, candidates: Sequence[RepairCandidate],
                     workers: Optional[int] = None,
                     scheduler=None) -> BacktestReport:
        started = _time.perf_counter()
        report = BacktestReport(baseline=self.baseline())
        report.packet_count = len(self._trace())
        outcomes = self._run_candidates(list(candidates), workers, scheduler)
        report.results.extend(outcome.result for outcome in outcomes)
        report.elapsed_seconds = _time.perf_counter() - started
        return report
