"""Backtesting repair candidates by replaying historical traffic.

The :class:`Backtester` runs the *original* (buggy) program over the recorded
trace once to obtain the baseline traffic distribution, then replays the same
trace against each repaired program.  A candidate is

* **effective** if it fixes the symptom (the scenario's effectiveness
  predicate holds, e.g. "the backup web server receives at least some HTTP
  traffic"), and
* **accepted** if it is effective *and* does not significantly distort the
  traffic distribution of unrelated flows (two-sample KS test, Section 5.3).

Scenarios (see :mod:`repro.scenarios.base`) provide the environment: a fresh
topology, a controller factory for an arbitrary program, the recorded trace
and the effectiveness predicate.
"""

from __future__ import annotations

import multiprocessing
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..ndlog.ast import Program
from ..ndlog.engine import data_edit_eligible
from ..repair.apply import RepairedProgram, apply_candidate
from ..repair.candidates import RepairCandidate
from ..sdn.network import NetworkSimulator, TrafficStats
from .abort import EarlyAbortPolicy
from .metrics import KSResult, compare_traffic


def fork_available() -> bool:
    """Can candidate evaluation be sharded across ``fork`` processes?

    Fork sharding is the cheapest parallel path: workers inherit the
    already-computed shared trunk (baseline statistics, base delivery
    records, response caches) by copy-on-write instead of pickling scenario
    closures, which are not picklable.  On platforms without ``fork``
    (macOS/Windows default to ``spawn``) the backtesters degrade to the
    distributed fabric's spawn transport when the scenario carries a
    :class:`~repro.scenarios.spec.ScenarioSpec`, and only fall back to the
    serial path when it does not.
    """
    return "fork" in multiprocessing.get_all_start_methods()


#: Per-process state inherited by forked pool workers.  Set immediately
#: before the pool is created; workers index into it by candidate position,
#: so the only data crossing process boundaries are integers (inputs) and
#: candidate-stripped results (outputs).
_WORKER_STATE: Optional[Tuple[object, Sequence[RepairCandidate], object]] = None


def _evaluate_shard(index: int):
    """Top-level pool worker: evaluate one candidate from inherited state."""
    backtester, candidates, trunk = _WORKER_STATE
    telemetry = backtester.telemetry
    if telemetry is None:
        outcome = backtester._evaluate_for_shard(candidates[index], trunk)
    else:
        # The forked child inherited the parent's tracer (open stage span
        # included); explicit ``.f<index>`` ids keep sibling children from
        # colliding, and only spans/metrics accrued *here* ship back.
        mark = telemetry.fork_capture()
        parent_id = telemetry.tracer.context().span_id
        candidate = candidates[index]
        with telemetry.span("candidate", span_id=f"{parent_id}.f{index}",
                            index=index, tag=candidate.tag,
                            description=candidate.description):
            outcome = backtester._evaluate_for_shard(candidate, trunk)
        outcome.spans, outcome.metrics = telemetry.fork_collect(mark)
    # The candidate (with its meta-provenance tree) stays in the parent;
    # shipping only the stripped result keeps pickling cheap and robust.
    outcome.result.candidate = None
    return outcome


def _run_sharded(backtester, candidates: Sequence[RepairCandidate],
                 trunk, workers: int):
    """Map candidates over a fork pool, preserving input order."""
    global _WORKER_STATE
    processes = min(workers, len(candidates))
    context = multiprocessing.get_context("fork")
    _WORKER_STATE = (backtester, candidates, trunk)
    try:
        with context.Pool(processes=processes) as pool:
            outcomes = pool.map(_evaluate_shard, range(len(candidates)))
    finally:
        _WORKER_STATE = None
    for candidate, outcome in zip(candidates, outcomes):
        outcome.result.candidate = candidate
    return outcomes


@dataclass
class ShardOutcome:
    """What one per-candidate evaluation sends back from a worker."""

    result: "BacktestResult"
    shared_evaluations: int = 0
    candidate_evaluations: int = 0
    #: Telemetry piggyback: span wire dicts finished in the worker during
    #: this evaluation plus a metrics-registry delta.  Empty/None when
    #: telemetry is off or the evaluation ran in the parent process.
    spans: List[dict] = field(default_factory=list)
    metrics: Optional[dict] = None


class WarmEvaluationState:
    """One warm engine/controller/simulator trio, reused across candidates.

    Cold candidate evaluation pays a full setup per candidate: a fresh
    engine (static-tuple fixpoint included), controller, topology and
    simulator.  The warm state pays it once — for the *base* program — and
    then switches candidates in O(rule delta): restore the engine to the
    trace-start checkpoint, apply the candidate's rule diff through the
    DRed machinery, drop the controller's per-program caches, and wipe the
    data plane.  Results are bit-identical to the cold path; candidates
    whose delta is ineligible (data edits, keyed-table cones, ambiguous
    diffs) return ``None`` from the ``prepare_*`` methods and the caller
    falls back to a cold build.
    """

    def __init__(self, scenario):
        self.scenario = scenario
        self.base_program = scenario.program
        self.controller = scenario.build_controller(program=None)
        self.engine = self.controller.engine
        self.checkpoint = self.engine.checkpoint()
        self._schemas = {schema.name: schema for schema in scenario.schemas()}
        self.topology = scenario.build_topology()
        self.simulator = NetworkSimulator(
            self.topology, self.controller,
            require_packet_out=scenario.require_packet_out,
            record_ingress=False)

    def prepare_controller(self, repaired: RepairedProgram):
        """Restore + rule-delta switch; the warm controller, or ``None``.

        Data edits (inserted/removed base tuples) ride the warm path too:
        after the rule delta, removed tuples are retracted through the DRed
        machinery and inserted tuples run an incremental fixpoint — the same
        final state the cold path reaches by folding the edits into the
        static list before its from-scratch fixpoint.  That equivalence is
        order-dependent for keyed tables, so edits whose downstream cone
        (over both programs' graphs) touches a primary-key table fall back
        cold (:func:`repro.ndlog.engine.data_edit_eligible`).  Rule-delta
        eligibility is not pre-checked — ``apply_program_delta`` performs
        that analysis on its single program diff and raises for ineligible
        deltas, which (like any mid-delta failure, e.g. a repair deriving
        schema-violating tuples) rewinds the journal and falls back; the
        cold path then surfaces whatever the real error is.
        """
        edits = bool(repaired.inserted_tuples or repaired.removed_tuples)
        if edits and not data_edit_eligible(
                {t.table for t in repaired.inserted_tuples} |
                {t.table for t in repaired.removed_tuples},
                self.base_program, repaired.program, self._schemas):
            return None
        self.engine.restore(self.checkpoint)
        try:
            self.engine.apply_program_delta(self.base_program,
                                            repaired.program)
            if edits:
                self._apply_data_edits(repaired)
        except Exception:
            self.engine.restore(self.checkpoint)
            self.controller.rebind_program(self.base_program)
            return None
        self.controller.rebind_program(repaired.program)
        return self.controller

    def _apply_data_edits(self, repaired: RepairedProgram) -> None:
        """Fold the candidate's base-tuple edits into the warm engine.

        Mirrors ``build_controller``'s static-list construction: removed
        tuples drop out first (only those actually present as base tuples —
        a removal of something never inserted is a no-op cold, too), then
        insertions that are not themselves in the removed set.
        """
        engine = self.engine
        removed = set(repaired.removed_tuples)
        for tup in repaired.removed_tuples:
            if engine.database.is_base(tup):
                engine.remove(tup)
        for tup in repaired.inserted_tuples:
            if tup not in removed:
                engine.insert(tup)

    def reset_data_plane(self) -> None:
        """Wipe the shared topology's flow tables for the next replay."""
        for switch in self.topology.switches.values():
            switch.flow_table.clear()

    def prepare_simulator(self, repaired: RepairedProgram):
        """A replay-ready warm simulator for ``repaired``, or ``None``."""
        if self.prepare_controller(repaired) is None:
            return None
        self.simulator.reset_run()
        return self.simulator


@dataclass
class BacktestResult:
    """Outcome of backtesting a single repair candidate."""

    candidate: RepairCandidate
    stats: TrafficStats
    ks: KSResult
    effective: bool
    accepted: bool
    elapsed_seconds: float = 0.0
    notes: Tuple[str, ...] = ()

    def summary_row(self) -> Tuple[str, str, float, str]:
        verdict = "accepted" if self.accepted else "rejected"
        return (self.candidate.tag, self.candidate.description,
                self.ks.statistic, verdict)

    def __str__(self):
        verdict = "PASS" if self.accepted else "FAIL"
        return (f"{self.candidate.description} ({verdict})  "
                f"KS={self.ks.statistic:.5f}")


@dataclass
class BacktestReport:
    """Results for a whole candidate list."""

    baseline: TrafficStats
    results: List[BacktestResult] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: Number of trace packets each candidate was evaluated against.
    packet_count: int = 0
    #: Candidates rejected by static vetting before any replay ran; their
    #: results are still in :attr:`results` (marked by a ``vetoed`` note),
    #: so ``len(results)`` always equals the candidate count.
    vetoed_count: int = 0
    #: Candidates the fabric gave up on after exhausting their retry
    #: budget; like vetoes, their (deterministic, rejected) results stay
    #: in :attr:`results`, marked by a ``quarantined(<reason>)`` note.
    quarantined_count: int = 0

    def accepted(self) -> List[BacktestResult]:
        return [r for r in self.results if r.accepted]

    def effective(self) -> List[BacktestResult]:
        return [r for r in self.results if r.effective]

    def counts(self) -> Tuple[int, int]:
        """(candidates generated, candidates surviving backtest) — Table 1."""
        return len(self.results), len(self.accepted())


class Backtester:
    """Sequentially backtests repair candidates against a scenario."""

    def __init__(self, scenario, ks_threshold: float = 0.05,
                 alpha: float = 0.05, use_significance: bool = False,
                 trace_limit: Optional[int] = None,
                 max_packet_in_growth: Optional[float] = None,
                 workers: int = 1,
                 replay_batch_size: Optional[int] = None,
                 abort_policy: Optional[EarlyAbortPolicy] = None,
                 warm_engine: bool = True,
                 static_vet: bool = True,
                 parallel_min_seconds: float = 1.0):
        self.scenario = scenario
        self.ks_threshold = ks_threshold
        self.alpha = alpha
        self.use_significance = use_significance
        self.trace_limit = trace_limit
        #: Optional extra side-effect metric: reject repairs that multiply the
        #: controller's PacketIn load by more than this factor (the paper
        #: rejects some Q4 candidates for "significant increases of controller
        #: traffic").
        self.max_packet_in_growth = max_packet_in_growth
        #: Candidate evaluations are independent once the shared trunk is
        #: cached; ``workers > 1`` shards them across a fork pool.  Results
        #: are bit-identical to the serial path and returned in input order.
        self.workers = workers
        #: Replay the trace in bursts of this size (one engine fixpoint per
        #: burst of PacketIns) when the controller program admits it; see
        #: :mod:`repro.controllers.batching`.
        self.replay_batch_size = replay_batch_size
        #: Optional mid-trace kill switch for hopeless candidates; see
        #: :class:`repro.backtest.abort.EarlyAbortPolicy`.  ``None`` (the
        #: default) replays every candidate to completion, keeping all
        #: execution paths bit-identical.
        self.abort_policy = abort_policy
        #: Reuse one warm engine+simulator pair per worker, switching
        #: candidates via checkpoint restore + rule delta instead of a cold
        #: rebuild (see :class:`WarmEvaluationState`).  Bit-identical to the
        #: cold path; ineligible candidates fall back automatically.
        self.warm_engine = warm_engine
        self._warm_state: Optional[WarmEvaluationState] = None
        #: Vet each candidate with the static analyzer before replaying it;
        #: provably behaviour-preserving candidates (inert inserts, no-op
        #: edits) skip their replay entirely and are reported rejected with
        #: a ``vetoed`` note (see :class:`repro.analysis.vet.CandidateVetter`).
        self.static_vet = static_vet
        self._vetter = None
        #: Minimum estimated serial runtime (baseline replay time x
        #: candidate count) below which ``workers > 1`` degrades to the
        #: serial path: forking a pool costs a few hundred milliseconds of
        #: startup plus per-shard warm-state rebuilds (workers inherit the
        #: parent's warm engine copy-on-write but re-fault it), so tiny
        #: jobs run *slower* parallel — the Fig 9b crossover.  Set to 0 to
        #: always honour the requested worker count.
        self.parallel_min_seconds = parallel_min_seconds
        self._baseline_seconds: Optional[float] = None
        #: Per-process counters: candidates served warm vs cold fallbacks,
        #: plus candidates vetoed without any replay.
        self.warm_hits = 0
        self.warm_fallbacks = 0
        self.vetoed = 0
        self._baseline: Optional[TrafficStats] = None
        #: Live :class:`repro.obs.Telemetry` bundle, attached by the
        #: session stage or a distrib job runtime.  ``None`` (the default)
        #: keeps every replay path span-free and cost-free — this is a
        #: runtime object and deliberately not a constructor knob, so it
        #: never crosses the job wire inside backtester config fields.
        self.telemetry = None

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------

    def _trace(self):
        trace = self.scenario.trace()
        if self.trace_limit is not None:
            return trace[: self.trace_limit]
        return trace

    def run_program(self, program: Optional[Program] = None,
                    extra_tuples: Sequence = (),
                    removed_tuples: Sequence = ()) -> TrafficStats:
        """Replay the trace under a program; return its traffic statistics."""
        topology = self.scenario.build_topology()
        controller = self.scenario.build_controller(
            program=program, extra_tuples=extra_tuples,
            removed_tuples=removed_tuples)
        simulator = NetworkSimulator(
            topology, controller,
            require_packet_out=self.scenario.require_packet_out,
            record_ingress=False)
        simulator.run_trace(self._trace(), batch_size=self.replay_batch_size)
        return simulator.stats

    def baseline(self) -> TrafficStats:
        """Traffic distribution of the original (buggy) program.

        The wall-clock of the (cold) baseline replay doubles as the
        per-candidate cost estimate for the parallel min-work threshold:
        every candidate replays the same trace.
        """
        if self._baseline is None:
            started = _time.perf_counter()
            self._baseline = self.run_program(None)
            self._baseline_seconds = _time.perf_counter() - started
        return self._baseline

    # ------------------------------------------------------------------
    # Candidate evaluation
    # ------------------------------------------------------------------

    def _warm(self) -> Optional[WarmEvaluationState]:
        if not self.warm_engine:
            return None
        if self._warm_state is None:
            self._warm_state = WarmEvaluationState(self.scenario)
        return self._warm_state

    def probe_counters(self) -> Dict[str, int]:
        """Inert-probe hit/miss counts of the warm controller (zeros when
        no warm state exists, e.g. cold-only or remote runs)."""
        state = self._warm_state
        controller = getattr(state, "controller", None) \
            if state is not None else None
        if controller is not None and hasattr(controller, "probe_counters"):
            return controller.probe_counters()
        return {"inert_probe_hits": 0, "inert_probe_misses": 0}

    def _replay_simulator(self, repaired: RepairedProgram) -> NetworkSimulator:
        """A simulator ready to replay ``repaired`` — warm when eligible,
        otherwise a cold per-candidate build (bit-identical either way)."""
        warm = self._warm()
        if warm is not None:
            simulator = warm.prepare_simulator(repaired)
            if simulator is not None:
                self.warm_hits += 1
                return simulator
            self.warm_fallbacks += 1
        topology = self.scenario.build_topology()
        controller = self.scenario.build_controller(
            program=repaired.program,
            extra_tuples=repaired.inserted_tuples,
            removed_tuples=repaired.removed_tuples)
        return NetworkSimulator(
            topology, controller,
            require_packet_out=self.scenario.require_packet_out,
            record_ingress=False)

    def _engine_counters(self, simulator) -> Optional[Dict[str, int]]:
        """Sample the replay engine's monotone telemetry counters."""
        engine = getattr(simulator.controller, "engine", None)
        if engine is None or not hasattr(engine, "telemetry_counters"):
            return None
        return engine.telemetry_counters()

    def _traced_replay(self, simulator, span) -> TrafficStats:
        """Replay the whole trace under an open ``replay`` span.

        Engine fixpoint/derivation counters are sampled before and after
        (delta attrs on the span plus registry counters); with
        ``slice_packets`` configured the trace replays in chunks, each
        under its own ``replay.slice`` span — chunked ``run_trace`` is the
        same execution the early-abort path performs, so statistics stay
        bit-identical to the one-shot replay.
        """
        telemetry = self.telemetry
        if telemetry.trace_fixpoints:
            engine = getattr(simulator.controller, "engine", None)
            if engine is not None and hasattr(engine, "tracer"):
                engine.tracer = telemetry.tracer
        before = self._engine_counters(simulator)
        trace = self._trace()
        slice_size = telemetry.slice_packets
        if slice_size:
            for offset in range(0, len(trace), slice_size):
                chunk = trace[offset:offset + slice_size]
                with telemetry.span("replay.slice", offset=offset,
                                    packets=len(chunk)) as slice_span:
                    slice_before = self._engine_counters(simulator)
                    simulator.run_trace(chunk,
                                        batch_size=self.replay_batch_size)
                    self._span_engine_delta(slice_span, slice_before,
                                            self._engine_counters(simulator))
        else:
            simulator.run_trace(trace, batch_size=self.replay_batch_size)
        after = self._engine_counters(simulator)
        self._span_engine_delta(span, before, after, record_metrics=True)
        span.set("packets", len(trace))
        telemetry.metrics.counter("packets_replayed").inc(len(trace))
        return simulator.stats

    def _span_engine_delta(self, span, before, after,
                           record_metrics: bool = False) -> None:
        if before is None or after is None:
            return
        for key, value in after.items():
            delta = value - before.get(key, 0)
            span.set(key, delta)
            if record_metrics and delta:
                self.telemetry.metrics.counter(key).inc(delta)

    def evaluate(self, candidate: RepairCandidate) -> BacktestResult:
        started = _time.perf_counter()
        repaired = apply_candidate(self.scenario.program, candidate)
        abort_note = None
        if self.abort_policy is None:
            simulator = self._replay_simulator(repaired)
            if self.telemetry is not None:
                with self.telemetry.span("replay") as span:
                    stats = self._traced_replay(simulator, span)
            else:
                simulator.run_trace(self._trace(),
                                    batch_size=self.replay_batch_size)
                stats = simulator.stats
        else:
            stats, abort_note = self._run_program_with_abort(repaired)
        ks = compare_traffic(self.baseline(), stats)
        if abort_note is not None:
            effective = accepted = False
            notes = candidate.notes + (abort_note,)
        else:
            effective = bool(self.scenario.is_effective(stats))
            accepted = effective and not self._distorts(ks) \
                and not self._overloads_controller(stats)
            notes = candidate.notes
        elapsed = _time.perf_counter() - started
        if self.telemetry is not None:
            self.telemetry.metrics.histogram(
                "candidate_replay_seconds").observe(elapsed)
        return BacktestResult(candidate=candidate, stats=stats, ks=ks,
                              effective=effective, accepted=accepted,
                              elapsed_seconds=elapsed, notes=notes)

    def _run_program_with_abort(self, repaired: RepairedProgram):
        """Replay with the abort policy's mid-trace checks.

        Returns ``(stats, note)`` where ``note`` is ``None`` for a completed
        replay or the abort reason (the statistics then cover only the
        replayed prefix).  With a ``replay_batch_size`` the trace replays in
        bursts that *yield at batch boundaries*, where the policy's checks
        run — :meth:`EarlyAbortPolicy.due_span` answers whether a check
        point fell inside the burst just replayed (check points inside the
        final burst are subsumed by the completed report's verdict logic;
        see its docstring).  Without a batch size, the policy checks per
        packet.
        """
        policy = self.abort_policy
        baseline = self.baseline()
        simulator = self._replay_simulator(repaired)
        trace = self._trace()
        threshold = None if self.use_significance else self.ks_threshold
        total = len(trace)
        batch = self.replay_batch_size
        if batch is not None and batch > 1:
            done = 0
            while done < total:
                chunk = trace[done:done + batch]
                simulator.run_trace(chunk, batch_size=batch)
                previous, done = done, done + len(chunk)
                if policy.due_span(previous, done, total):
                    reason = policy.breach(simulator.stats, done, baseline,
                                           threshold,
                                           self.max_packet_in_growth)
                    if reason is not None:
                        note = (f"aborted after {done}/{total} packets: "
                                f"{reason}")
                        return simulator.stats, note
            return simulator.stats, None
        for done, (switch_id, packet) in enumerate(trace, 1):
            simulator.inject(packet, switch_id)
            if policy.due(done, total):
                reason = policy.breach(simulator.stats, done, baseline,
                                       threshold, self.max_packet_in_growth)
                if reason is not None:
                    note = (f"aborted after {done}/{total} packets: "
                            f"{reason}")
                    return simulator.stats, note
        return simulator.stats, None

    def _overloads_controller(self, stats: TrafficStats) -> bool:
        if self.max_packet_in_growth is None:
            return False
        baseline_load = max(1, self.baseline().packet_in_count)
        return stats.packet_in_count > baseline_load * self.max_packet_in_growth

    def _distorts(self, ks: KSResult) -> bool:
        if self.use_significance:
            return ks.significant(self.alpha)
        return ks.statistic > self.ks_threshold

    def _evaluate_for_shard(self, candidate: RepairCandidate,
                            trunk) -> ShardOutcome:
        """Hermetic per-candidate evaluation used by serial and pool paths.

        Subclasses override this (together with :meth:`_build_trunk`) to
        share more precomputed state; the base backtester only needs the
        cached baseline, which :meth:`evaluate_all` computes before forking.
        """
        return ShardOutcome(result=self.evaluate(candidate))

    def _build_trunk(self):
        """Precompute state shared by every candidate (parent process only)."""
        self.baseline()
        return None

    def _use_workers(self, candidates, workers: Optional[int]) -> int:
        """Effective worker count (platform capability is decided later)."""
        workers = self.workers if workers is None else workers
        if workers is None or workers <= 1 or len(candidates) <= 1:
            return 1
        return workers

    def _run_candidates(self, candidates: List[RepairCandidate],
                        workers: Optional[int],
                        scheduler, progress=None) -> List[ShardOutcome]:
        """Evaluate candidates via the requested execution path.

        ``scheduler`` (a :class:`repro.distrib.Scheduler`) routes through
        the distributed backtest fabric.  Otherwise ``workers > 1`` shards
        over a ``fork`` pool when the platform has one; without ``fork`` the
        evaluation degrades to the fabric's ``spawn`` transport (the
        scenario's :class:`ScenarioSpec` makes workers reconstructible)
        rather than silently running serial.  All paths return bit-identical
        outcomes in input order.

        ``progress(done, total, result)`` streams completed results on the
        serial and scheduler paths; the fork pool blocks until all shards
        return, so there it reports the finished outcomes in input order.
        """
        if scheduler is not None:
            if progress is None:      # keep duck-typed scheduler stubs happy
                return scheduler.run(self, candidates)
            return scheduler.run(self, candidates, progress=progress)
        workers = self._use_workers(candidates, workers)
        if workers > 1 and self.parallel_min_seconds > 0:
            # Min-work threshold (the Fig 9b crossover): when the whole
            # candidate list replays serially in less time than pool
            # startup amortises, parallel dispatch is a net loss.  The
            # baseline replay — needed anyway — is the per-candidate
            # estimate, since each candidate replays the same trace.
            self.baseline()
            estimate = (self._baseline_seconds or 0.0) * len(candidates)
            if estimate < self.parallel_min_seconds:
                workers = 1
        if workers > 1:
            if fork_available():
                trunk = self._build_trunk()
                outcomes = _run_sharded(self, candidates, trunk, workers)
                if progress is not None:
                    for done, outcome in enumerate(outcomes, 1):
                        progress(done, len(outcomes), outcome.result)
                return outcomes
            if getattr(self.scenario, "spec", None) is not None:
                from ..distrib import Scheduler
                with Scheduler(transport="spawn", workers=workers) as degraded:
                    if progress is None:
                        return degraded.run(self, candidates)
                    return degraded.run(self, candidates, progress=progress)
        trunk = self._build_trunk()
        outcomes = []
        for done, candidate in enumerate(candidates, 1):
            if self.telemetry is not None:
                with self.telemetry.span("candidate", index=done - 1,
                                         tag=candidate.tag,
                                         description=candidate.description):
                    outcome = self._evaluate_for_shard(candidate, trunk)
            else:
                outcome = self._evaluate_for_shard(candidate, trunk)
            outcomes.append(outcome)
            if progress is not None:
                progress(done, len(candidates), outcome.result)
        return outcomes

    def _absorb_outcomes(self, outcomes) -> None:
        """Stitch telemetry piggybacked on worker outcomes (fork pool or
        fabric) into this process's bundle; clear it so a re-absorb (e.g.
        a cached outcome) cannot double-count."""
        if self.telemetry is None:
            return
        for outcome in outcomes:
            spans = getattr(outcome, "spans", None)
            metrics = getattr(outcome, "metrics", None)
            if spans or metrics:
                self.telemetry.absorb(spans, metrics)
                outcome.spans = []
                outcome.metrics = None

    # ------------------------------------------------------------------
    # Static vetting (parent-side, before any replay)
    # ------------------------------------------------------------------

    def _candidate_vetter(self):
        if self._vetter is None:
            from ..analysis.vet import CandidateVetter
            scenario = self.scenario
            mapping = getattr(scenario, "mapping", None)
            schemas = {schema.name: schema for schema in scenario.schemas()}
            self._vetter = CandidateVetter(
                scenario.program, schemas=schemas,
                static_tuples=list(scenario.static_tuples),
                event_tables=({mapping.packet_in_table}
                              if mapping is not None else ()),
                flow_table=(mapping.flow_table
                            if mapping is not None else None))
        return self._vetter

    def _vetoed_result(self, candidate: RepairCandidate, verdict,
                       elapsed: float) -> BacktestResult:
        """The result a vetoed candidate's replay *would* have produced.

        Inert-insert and no-op vetoes are behaviour-preservation proofs:
        the patched run is bit-identical to the baseline, so the verdict
        fields are computed from the baseline statistics exactly as
        :meth:`evaluate` would have.  Candidates vetoed because they fail
        to evaluate at all (apply errors, unsupported negation) have no
        well-defined replay and are reported flatly rejected.
        """
        baseline = self.baseline()
        note = f"vetoed by static analysis: {verdict.reason}"
        ks = compare_traffic(baseline, baseline)
        if verdict.reason in ("apply-failed", "negation-unsupported"):
            effective = accepted = False
        else:
            effective = bool(self.scenario.is_effective(baseline))
            accepted = effective and not self._distorts(ks) \
                and not self._overloads_controller(baseline)
        return BacktestResult(candidate=candidate, stats=baseline, ks=ks,
                              effective=effective, accepted=accepted,
                              elapsed_seconds=elapsed,
                              notes=candidate.notes + (note,))

    def _prefilter(self, candidates: Sequence[RepairCandidate]):
        """Vet all candidates; returns (survivors, index -> vetoed result)."""
        if not self.static_vet:
            return list(candidates), {}
        vetter = self._candidate_vetter()
        survivors: List[RepairCandidate] = []
        vetoed: Dict[int, BacktestResult] = {}
        for index, candidate in enumerate(candidates):
            started = _time.perf_counter()
            verdict = vetter.vet_candidate(candidate)
            if verdict.rejected:
                elapsed = _time.perf_counter() - started
                vetoed[index] = self._vetoed_result(candidate, verdict,
                                                    elapsed)
                self.vetoed += 1
            else:
                survivors.append(candidate)
        return survivors, vetoed

    @staticmethod
    def _merge_results(report: BacktestReport, total: int, outcomes,
                       vetoed: Dict[int, BacktestResult]):
        """Interleave replayed and vetoed results back into input order."""
        replayed = iter(outcomes)
        merged = []
        for index in range(total):
            if index in vetoed:
                report.results.append(vetoed[index])
            else:
                outcome = next(replayed)
                report.results.append(outcome.result)
                merged.append(outcome)
        report.vetoed_count = len(vetoed)
        return merged

    def evaluate_all(self, candidates: Sequence[RepairCandidate],
                     workers: Optional[int] = None,
                     scheduler=None, progress=None) -> BacktestReport:
        started = _time.perf_counter()
        report = BacktestReport(baseline=self.baseline())
        report.packet_count = len(self._trace())
        all_candidates = list(candidates)
        survivors, vetoed = self._prefilter(all_candidates)
        outcomes = self._run_candidates(survivors, workers, scheduler,
                                        progress=progress)
        self._absorb_outcomes(outcomes)
        self._merge_results(report, len(all_candidates), outcomes, vetoed)
        report.quarantined_count = sum(
            1 for result in report.results
            if any(str(note).startswith("quarantined(")
                   for note in result.notes))
        report.elapsed_seconds = _time.perf_counter() - started
        return report
