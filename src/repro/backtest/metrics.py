"""Backtesting metrics.

Section 4.3: candidate repairs are evaluated by replaying historical traffic
and comparing "key statistics, such as the number of packets delivered to
each host".  The acceptance test is a two-sample Kolmogorov-Smirnov test on
the traffic distribution at end hosts, with significance level 0.05: a
repair is rejected if it significantly distorts the original distribution.

The KS statistic and asymptotic p-value are implemented directly (and
cross-checked against :func:`scipy.stats.ks_2samp` in the test suite) so the
backtester has no hard dependency on SciPy internals.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..sdn.network import TrafficStats


@dataclass(frozen=True)
class KSResult:
    """Result of a two-sample Kolmogorov-Smirnov test."""

    statistic: float
    p_value: float
    sample_sizes: Tuple[int, int]

    def significant(self, alpha: float = 0.05) -> bool:
        """True if the two samples differ significantly at level ``alpha``."""
        return self.p_value < alpha


def destination_distribution(stats: TrafficStats) -> List[int]:
    """Per-packet destination sample (host id, or -1 for dropped packets)."""
    return stats.destination_samples()


def per_host_counts(stats: TrafficStats) -> Dict[int, int]:
    return dict(stats.delivered_per_host)


def ks_two_sample(sample_a: Sequence[float], sample_b: Sequence[float]) -> KSResult:
    """Two-sample KS test over numeric samples.

    Destination samples are categorical host identifiers; using their numeric
    order is exactly what the paper's prototype does when it feeds per-host
    traffic counts to the KS test — the statistic measures how much
    probability mass moved between hosts, regardless of which hosts.
    """
    n_a, n_b = len(sample_a), len(sample_b)
    if n_a == 0 or n_b == 0:
        return KSResult(statistic=1.0 if (n_a or n_b) else 0.0, p_value=0.0,
                        sample_sizes=(n_a, n_b))
    counts_a = Counter(sample_a)
    counts_b = Counter(sample_b)
    values = sorted(set(counts_a) | set(counts_b))
    cdf_a = 0.0
    cdf_b = 0.0
    statistic = 0.0
    for value in values:
        cdf_a += counts_a.get(value, 0) / n_a
        cdf_b += counts_b.get(value, 0) / n_b
        statistic = max(statistic, abs(cdf_a - cdf_b))
    p_value = _ks_p_value(statistic, n_a, n_b)
    return KSResult(statistic=statistic, p_value=p_value, sample_sizes=(n_a, n_b))


def _ks_p_value(statistic: float, n_a: int, n_b: int) -> float:
    """Asymptotic (Kolmogorov) p-value for the two-sample statistic."""
    if statistic <= 0:
        return 1.0
    effective_n = n_a * n_b / (n_a + n_b)
    lam = (math.sqrt(effective_n) + 0.12 + 0.11 / math.sqrt(effective_n)) * statistic
    total = 0.0
    for j in range(1, 101):
        term = 2 * (-1) ** (j - 1) * math.exp(-2 * (j * lam) ** 2)
        total += term
        if abs(term) < 1e-12:
            break
    return max(0.0, min(1.0, total))


def compare_traffic(before: TrafficStats, after: TrafficStats) -> KSResult:
    """KS test between two runs' destination distributions."""
    return ks_two_sample(destination_distribution(before),
                         destination_distribution(after))


def delivery_delta(before: TrafficStats, after: TrafficStats) -> Dict[int, int]:
    """Per-host change in delivered packet counts (after - before)."""
    hosts = set(before.delivered_per_host) | set(after.delivered_per_host)
    return {host: after.delivered_to(host) - before.delivered_to(host)
            for host in sorted(hosts)}


def total_variation_distance(before: TrafficStats, after: TrafficStats) -> float:
    """Total variation distance between the two destination distributions.

    An additional side-effect metric operators can use alongside the KS test
    (Section 4.3 notes that operators "could easily add metrics of their
    own").
    """
    samples_a = destination_distribution(before)
    samples_b = destination_distribution(after)
    if not samples_a or not samples_b:
        return 1.0 if samples_a or samples_b else 0.0
    counts_a = Counter(samples_a)
    counts_b = Counter(samples_b)
    keys = set(counts_a) | set(counts_b)
    return 0.5 * sum(abs(counts_a.get(k, 0) / len(samples_a)
                         - counts_b.get(k, 0) / len(samples_b)) for k in keys)
