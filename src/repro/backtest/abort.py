"""Early-abort policy for candidate replays.

Backtesting cost is dominated by hopeless candidates: a repair that floods
the controller or visibly distorts the traffic distribution keeps replaying
the whole historical trace even though its fate is sealed long before the
end.  An :class:`EarlyAbortPolicy` lets the replay loops kill such a
candidate mid-trace.

Two checks run every ``check_every`` packets (once at least
``min_fraction`` of the trace has replayed):

* **controller overload** — the candidate's cumulative ``PacketIn`` count
  already exceeds the *final* baseline count times the growth bound.  The
  counter is monotone, so this abort is *sound*: the full replay would have
  been rejected by the same ``max_packet_in_growth`` test.
* **KS mid-trace** (opt-in via ``ks_slack``) — the KS statistic between the
  baseline's first ``k`` destination samples and the candidate's ``k``
  samples exceeds ``ks_threshold * ks_slack``.  This is a *heuristic*: a
  distribution can in principle recover late in the trace, so the slack
  factor should stay comfortably above 1.

Aborted candidates are reported as rejected (``effective=False,
accepted=False``) with an ``aborted after k/N packets: ...`` note.  With no
policy configured every replay runs to completion and results stay
bit-identical to the serial path — the parity suites run with the policy
off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from .metrics import ks_two_sample


@dataclass(frozen=True)
class EarlyAbortPolicy:
    """When and why to kill a candidate's replay mid-trace."""

    #: Run the checks every this many replayed packets.
    check_every: int = 32
    #: Overload bound; ``None`` falls back to the backtester's
    #: ``max_packet_in_growth`` (and the check is skipped if both are unset).
    max_packet_in_growth: Optional[float] = None
    #: Slack multiplier on the KS threshold for the mid-trace check;
    #: ``None`` disables the (heuristic) KS abort.
    ks_slack: Optional[float] = None
    #: Never abort before this fraction of the trace has replayed.
    min_fraction: float = 0.25

    def due(self, done: int, total: int) -> bool:
        """Is a check scheduled after ``done`` of ``total`` packets?"""
        if done >= total:
            return False          # a completed replay needs no abort check
        if done < self.min_fraction * total:
            return False
        return done % self.check_every == 0

    def due_span(self, start: int, done: int, total: int) -> bool:
        """Did the replay pass a scheduled check anywhere in ``(start, done]``?

        Burst-batched replays can only pause at batch boundaries; this
        answers "was a per-packet check due since the last boundary", so the
        abort cadence composes with ``replay_batch_size`` instead of forcing
        per-packet replay.  Checks run against the statistics at ``done``;
        the overload bound stays sound (the PacketIn counter is monotone)
        and the KS heuristic simply observes a slightly longer prefix.

        Like :meth:`due`, a completed replay (``done >= total``) schedules
        no check — check points that fall inside the *final* burst are
        subsumed by the full report's own verdict logic: the overload bound
        is re-applied to the complete statistics by the backtester
        (identical verdict), while the heuristic KS abort simply does not
        fire on a replay that finished — the documented cadence dependence
        of a heuristic whose prefix observations depend on ``check_every``
        and batch size to begin with.
        """
        if done >= total:
            return False
        lowest = max(start + 1, math.ceil(self.min_fraction * total))
        first = math.ceil(lowest / self.check_every) * self.check_every
        return first <= done

    def breach(self, stats, done: int, baseline_stats,
               ks_threshold: Optional[float],
               max_packet_in_growth: Optional[float]) -> Optional[str]:
        """Return an abort reason, or ``None`` to keep replaying.

        ``stats`` are the candidate's partial statistics after ``done``
        packets; ``baseline_stats`` the baseline's *complete* statistics.
        """
        growth = self.max_packet_in_growth
        if growth is None:
            growth = max_packet_in_growth
        if growth is not None:
            bound = max(1, baseline_stats.packet_in_count) * growth
            if stats.packet_in_count > bound:
                return (f"controller overload: {stats.packet_in_count} "
                        f"PacketIns > {bound:.0f} allowed")
        if self.ks_slack is not None and ks_threshold is not None:
            prefix = baseline_stats.destination_samples()[:done]
            ks = ks_two_sample(prefix, stats.destination_samples())
            if ks.statistic > ks_threshold * self.ks_slack:
                return (f"KS mid-trace: {ks.statistic:.4f} > "
                        f"{ks_threshold * self.ks_slack:.4f}")
        return None

    # ------------------------------------------------------------------
    # Wire format (the distributed fabric ships policies to workers)
    # ------------------------------------------------------------------

    def to_wire(self) -> Dict[str, object]:
        return {"check_every": self.check_every,
                "max_packet_in_growth": self.max_packet_in_growth,
                "ks_slack": self.ks_slack,
                "min_fraction": self.min_fraction}

    @classmethod
    def from_wire(cls, wire: Dict[str, object]) -> "EarlyAbortPolicy":
        return cls(check_every=int(wire.get("check_every", 32)),
                   max_packet_in_growth=wire.get("max_packet_in_growth"),
                   ks_slack=wire.get("ks_slack"),
                   min_fraction=float(wire.get("min_fraction", 0.25)))
