"""Multi-query backtesting (Section 4.4).

Backtesting one repair candidate means re-running the controller program over
the entire historical trace.  Because the candidates differ only in the small
edits they apply, almost all controller computation is shared between them.
The paper exploits this with a classic multi-query optimisation: tuples carry
*tags* naming the candidates they belong to, so the shared part of the
computation runs once and only the forked sub-flows run per candidate.

This module implements the same optimisation operationally:

* the *base* (unrepaired) controller response for each distinct packet is
  computed once and cached;
* for every candidate, the packets that could possibly be affected are
  identified by evaluating only the candidate's *modified rules* (old and new
  version) against the packet — a tiny fraction of the full program;
* only for affected packets is the candidate's full controller invoked, and
  the resulting flow entries are installed with the candidate's tag so a
  single simulated network can hold all candidates' flow tables side by side
  (tag-filtered lookups, see :meth:`repro.sdn.switch.FlowTable.lookup`).

The result is identical to sequential backtesting but considerably faster —
which is exactly the comparison of Figure 9b.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ndlog.ast import Program, Rule
from ..ndlog.engine import Engine
from ..ndlog.tuples import NDTuple
from ..repair.apply import apply_candidate
from ..repair.candidates import RepairCandidate
from ..sdn.log import DeliveryRecord
from ..sdn.network import NetworkSimulator, TrafficStats
from ..sdn.packets import Packet
from .metrics import compare_traffic
from .replay import BacktestReport, BacktestResult, Backtester, ShardOutcome


def modified_rule_names(program: Program, candidate: RepairCandidate) -> Set[str]:
    """Names of rules touched by a candidate (added rules included)."""
    names: Set[str] = set()
    for edit in candidate.edits:
        rule_name = getattr(edit, "rule", None)
        if isinstance(rule_name, str):
            names.add(rule_name)
        source = getattr(edit, "source_rule", None)
        if isinstance(source, str):
            names.add(source)
        new_rule = getattr(edit, "new_rule", None)
        if new_rule is not None:
            names.add(new_rule.name)
    return names


class _RuleDeltaChecker:
    """Decides, per packet, whether a candidate could change the response.

    Evaluates only the candidate's modified rules — in both their original
    and repaired form — against the single ``PacketIn`` tuple plus the static
    configuration tuples.  If old and new versions derive exactly the same
    heads, the candidate's response for this packet equals the base response
    and the full candidate program need not run.
    """

    def __init__(self, scenario, original: Program, candidate: RepairCandidate,
                 repaired: Program):
        self.scenario = scenario
        names = modified_rule_names(original, candidate)
        old_rules = [r for r in original.rules if r.name in names]
        new_rules = [r for r in repaired.rules if r.name in names]
        self.data_change = candidate.is_data_change()
        self._old_engine = self._build_engine(old_rules)
        self._new_engine = self._build_engine(new_rules)
        self._cache: Dict[Tuple, bool] = {}

    def _build_engine(self, rules: Sequence[Rule]) -> Optional[Engine]:
        if not rules:
            return None
        engine = Engine(Program(rules=[r.clone() for r in rules], name="delta"),
                        record_events=False)
        for schema in self.scenario.schemas():
            engine.register_schema(schema)
        engine.insert_many(list(self.scenario.static_tuples))
        return engine

    def affects(self, packet_tuple: NDTuple, static_tuples: Sequence[NDTuple]) -> bool:
        if self.data_change:
            return True
        key = packet_tuple.values
        if key in self._cache:
            return self._cache[key]
        old_heads = self._heads(self._old_engine, packet_tuple)
        new_heads = self._heads(self._new_engine, packet_tuple)
        affected = old_heads != new_heads
        self._cache[key] = affected
        return affected

    def affects_anywhere(self, packet, switch_ids: Sequence[int]) -> bool:
        """Could the candidate change this packet's fate at *any* switch?

        A packet raises PacketIns along its whole path, so the delta check
        must consider every switch the packet might traverse, not only its
        ingress switch.
        """
        if self.data_change:
            return True
        for switch_id in switch_ids:
            packet_tuple = self.scenario.packet_in_tuple(switch_id, packet)
            if self.affects(packet_tuple, ()):
                return True
        return False

    def _heads(self, engine: Optional[Engine], packet_tuple: NDTuple) -> frozenset:
        if engine is None:
            return frozenset()
        derived = engine.insert(packet_tuple)
        # Keep the delta engine stateless across probes: consume whatever this
        # packet derived (the transient PacketIn removes itself).
        for tup in derived:
            engine.consume(tup)
        return frozenset(derived)


@dataclass
class MultiQueryReport(BacktestReport):
    """Adds cache statistics to the standard report."""

    shared_evaluations: int = 0
    candidate_evaluations: int = 0

    def sharing_ratio(self) -> float:
        """Fraction of packet×candidate decisions served by the shared trunk.

        Each (packet, candidate) pair is counted exactly once, so the two
        counters always sum to ``len(trace) * len(candidates)``.
        """
        total = self.shared_evaluations + self.candidate_evaluations
        return self.shared_evaluations / total if total else 0.0


class _SharedResponseController:
    """Controller wrapper that forwards unaffected packets to a shared base.

    All candidates share one base controller and one response cache, so the
    unmodified part of the program is evaluated at most once per distinct
    packet across the whole candidate set — the operational equivalent of
    the paper's tagged backtesting program.
    """

    def __init__(self, scenario, base_controller, base_cache,
                 candidate_controller, checker, static_tuples):
        self.scenario = scenario
        self.base_controller = base_controller
        self.base_cache = base_cache
        self.candidate_controller = candidate_controller
        self.checker = checker
        self.static_tuples = static_tuples
        self.name = f"shared({candidate_controller.name})"

    def on_start(self, network):
        return self.candidate_controller.on_start(network)

    def handle_packet_in(self, event):
        # Sharing statistics are accounted once per packet×candidate in
        # MultiQueryBacktester.evaluate_all; counting again here (a packet
        # can raise several PacketIns along its path) double-counted
        # decisions and skewed MultiQueryReport.sharing_ratio().
        packet_tuple = self.scenario.packet_in_tuple(event.switch_id, event.packet,
                                                     in_port=event.in_port)
        if self.checker.affects(packet_tuple, self.static_tuples):
            return self.candidate_controller.handle_packet_in(event)
        key = (event.switch_id, packet_tuple.values)
        if key not in self.base_cache:
            self.base_cache[key] = self.base_controller.handle_packet_in(event)
        return self.base_cache[key]

    def reset(self):
        self.candidate_controller.reset()


@dataclass
class _SharedTrunk:
    """Per-candidate-independent state, computed once before sharding.

    The trunk is the operational analogue of the tagged backtesting
    program's shared sub-flows: the base network's delivery outcome and
    control-plane cost for every trace packet, plus the base controller's
    first response per distinct PacketIn key.  Candidate evaluations only
    read it, so forked workers inherit it copy-on-write.
    """

    trace: List[Tuple[int, Packet]]
    base_records: List[DeliveryRecord]
    #: Per trace entry: (packet_in, flow_mod, packet_out) counts of the base
    #: run, credited to candidates that adopt the shared outcome so their
    #: control-plane statistics stay comparable with sequential backtests.
    base_deltas: List[Tuple[int, int, int]]
    base_cache: Dict[Tuple, List[object]]
    switch_ids: List[int]


class _CachePrimingController:
    """Wraps the trunk's base controller, recording its responses.

    Delegates every PacketIn to the real controller (the trunk replay stays
    exact) while remembering the first response per distinct key — the same
    entries the lazy shared cache would eventually hold, now computed once
    in trace order before any candidate runs.
    """

    def __init__(self, scenario, inner, cache: Dict[Tuple, List[object]]):
        self.scenario = scenario
        self.inner = inner
        self.cache = cache
        self.name = f"priming({inner.name})"

    def on_start(self, network):
        return self.inner.on_start(network)

    def handle_packet_in(self, event):
        messages = self.inner.handle_packet_in(event)
        packet_tuple = self.scenario.packet_in_tuple(
            event.switch_id, event.packet, in_port=event.in_port)
        self.cache.setdefault((event.switch_id, packet_tuple.values), messages)
        return messages

    def reset(self):
        self.inner.reset()


class _LazyBaseController:
    """Builds a fresh base controller on first use (cache misses only).

    Keeping the fallback controller per candidate — instead of one shared
    mutable instance — makes candidate evaluations hermetic, which is what
    allows them to run in any order or in separate processes while staying
    bit-identical to the serial pass.
    """

    def __init__(self, scenario):
        self.scenario = scenario
        self._inner = None
        self.name = "lazy-base"

    def handle_packet_in(self, event):
        if self._inner is None:
            self._inner = self.scenario.build_controller(program=None)
        return self._inner.handle_packet_in(event)


class MultiQueryBacktester(Backtester):
    """Backtests many candidates jointly, sharing the common computation."""

    def _build_trunk(self) -> _SharedTrunk:
        self.baseline()   # cache before forking; workers inherit it
        trace = self._trace()
        base_cache: Dict[Tuple, List[object]] = {}
        topology = self.scenario.build_topology()
        priming = _CachePrimingController(
            self.scenario, self.scenario.build_controller(program=None),
            base_cache)
        simulator = NetworkSimulator(
            topology, priming,
            require_packet_out=self.scenario.require_packet_out,
            record_ingress=False)
        base_records: List[DeliveryRecord] = []
        base_deltas: List[Tuple[int, int, int]] = []
        stats = simulator.stats
        for switch_id, packet in trace:
            before = (stats.packet_in_count, stats.flow_mod_count,
                      stats.packet_out_count)
            base_records.append(simulator.inject(packet, switch_id))
            base_deltas.append((stats.packet_in_count - before[0],
                                stats.flow_mod_count - before[1],
                                stats.packet_out_count - before[2]))
        return _SharedTrunk(trace=trace, base_records=base_records,
                            base_deltas=base_deltas, base_cache=base_cache,
                            switch_ids=sorted(topology.switches))

    def _evaluate_for_shard(self, candidate: RepairCandidate,
                            trunk: _SharedTrunk) -> ShardOutcome:
        """Evaluate one candidate against the precomputed trunk (hermetic)."""
        started = _time.perf_counter()
        repaired = apply_candidate(self.scenario.program, candidate)
        checker = _RuleDeltaChecker(self.scenario, self.scenario.program,
                                    candidate, repaired.program)
        # Warm path: switch the per-worker engine to this candidate via a
        # checkpoint restore + rule delta and reuse the topology (flow
        # tables wiped); the shared-response wrapper and simulator are
        # per-candidate by design and stay cheap to rebuild.
        warm = self._warm()
        candidate_controller = (warm.prepare_controller(repaired)
                                if warm is not None else None)
        if candidate_controller is not None:
            self.warm_hits += 1
            warm.reset_data_plane()
            topology = warm.topology
        else:
            if warm is not None:
                self.warm_fallbacks += 1
            topology = self.scenario.build_topology()
            candidate_controller = self.scenario.build_controller(
                program=repaired.program,
                extra_tuples=repaired.inserted_tuples,
                removed_tuples=repaired.removed_tuples)
        shared = _SharedResponseController(
            self.scenario, _LazyBaseController(self.scenario),
            dict(trunk.base_cache), candidate_controller, checker,
            list(self.scenario.static_tuples))
        simulator = NetworkSimulator(
            topology, shared,
            require_packet_out=self.scenario.require_packet_out,
            record_ingress=False)
        shared_count = 0
        candidate_count = 0
        abort_note = None
        policy = self.abort_policy
        threshold = None if self.use_significance else self.ks_threshold
        total = len(trunk.trace)
        for index, (switch_id, packet) in enumerate(trunk.trace):
            if checker.affects_anywhere(packet, trunk.switch_ids):
                candidate_count += 1
                simulator.inject(packet, switch_id)
            else:
                shared_count += 1
                self._adopt_base_record(simulator, trunk.base_records[index],
                                        trunk.base_deltas[index])
            if policy is not None and policy.due(index + 1, total):
                reason = policy.breach(simulator.stats, index + 1,
                                       self.baseline(), threshold,
                                       self.max_packet_in_growth)
                if reason is not None:
                    abort_note = (f"aborted after {index + 1}/{total} "
                                  f"packets: {reason}")
                    break
        stats = simulator.stats
        ks = compare_traffic(self.baseline(), stats)
        if abort_note is not None:
            effective = accepted = False
            notes = candidate.notes + (abort_note,)
        else:
            effective = bool(self.scenario.is_effective(stats))
            accepted = effective and not self._distorts(ks) \
                and not self._overloads_controller(stats)
            notes = candidate.notes
        elapsed = _time.perf_counter() - started
        result = BacktestResult(candidate=candidate, stats=stats, ks=ks,
                                effective=effective, accepted=accepted,
                                elapsed_seconds=elapsed, notes=notes)
        return ShardOutcome(result=result, shared_evaluations=shared_count,
                            candidate_evaluations=candidate_count)

    def evaluate_all(self, candidates: Sequence[RepairCandidate],
                     workers: Optional[int] = None,
                     scheduler=None, progress=None) -> MultiQueryReport:
        started = _time.perf_counter()
        report = MultiQueryReport(baseline=self.baseline())
        all_candidates = list(candidates)
        survivors, vetoed = self._prefilter(all_candidates)
        outcomes = self._run_candidates(survivors, workers, scheduler,
                                        progress=progress)
        self._absorb_outcomes(outcomes)
        for outcome in self._merge_results(report, len(all_candidates),
                                           outcomes, vetoed):
            report.shared_evaluations += outcome.shared_evaluations
            report.candidate_evaluations += outcome.candidate_evaluations
        report.packet_count = len(self._trace())
        report.elapsed_seconds = _time.perf_counter() - started
        return report

    @staticmethod
    def _adopt_base_record(simulator: NetworkSimulator, record,
                           delta: Tuple[int, int, int] = (0, 0, 0)) -> None:
        """Credit a shared (base-network) delivery outcome to a candidate.

        Like the adopted delivery record itself, the adopted control-plane
        delta reflects the *base* network's handling of the packet.  That is
        the sharing premise — an unaffected packet behaves identically under
        the candidate — and it is exact whenever flow-entry match columns
        equal the PacketIn tuple fields (identical flow keys then imply
        identical tuples, which the delta checker classifies identically).
        Mappings with narrower match columns can in principle attribute a
        shared miss to both the base delta and a later affected same-key
        packet; the Q1-Q5 verdict-parity tests bound this approximation.
        """
        stats = simulator.stats
        stats.total += 1
        stats.delivery_records.append(record)
        if record.delivered:
            stats.delivered_per_host[record.delivered_to] = \
                stats.delivered_per_host.get(record.delivered_to, 0) + 1
        else:
            stats.dropped += 1
        stats.packet_in_count += delta[0]
        stats.flow_mod_count += delta[1]
        stats.packet_out_count += delta[2]
