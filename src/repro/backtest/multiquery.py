"""Multi-query backtesting (Section 4.4).

Backtesting one repair candidate means re-running the controller program over
the entire historical trace.  Because the candidates differ only in the small
edits they apply, almost all controller computation is shared between them.
The paper exploits this with a classic multi-query optimisation: tuples carry
*tags* naming the candidates they belong to, so the shared part of the
computation runs once and only the forked sub-flows run per candidate.

This module implements the same optimisation operationally:

* the *base* (unrepaired) controller response for each distinct packet is
  computed once and cached;
* for every candidate, the packets that could possibly be affected are
  identified by evaluating only the candidate's *modified rules* (old and new
  version) against the packet — a tiny fraction of the full program;
* only for affected packets is the candidate's full controller invoked, and
  the resulting flow entries are installed with the candidate's tag so a
  single simulated network can hold all candidates' flow tables side by side
  (tag-filtered lookups, see :meth:`repro.sdn.switch.FlowTable.lookup`).

The result is identical to sequential backtesting but considerably faster —
which is exactly the comparison of Figure 9b.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ndlog.ast import Program, Rule
from ..ndlog.engine import Engine
from ..ndlog.tuples import NDTuple
from ..repair.apply import apply_candidate
from ..repair.candidates import RepairCandidate
from ..sdn.network import NetworkSimulator, TrafficStats
from ..sdn.packets import Packet
from .metrics import compare_traffic
from .replay import BacktestReport, BacktestResult, Backtester


def modified_rule_names(program: Program, candidate: RepairCandidate) -> Set[str]:
    """Names of rules touched by a candidate (added rules included)."""
    names: Set[str] = set()
    for edit in candidate.edits:
        rule_name = getattr(edit, "rule", None)
        if isinstance(rule_name, str):
            names.add(rule_name)
        source = getattr(edit, "source_rule", None)
        if isinstance(source, str):
            names.add(source)
        new_rule = getattr(edit, "new_rule", None)
        if new_rule is not None:
            names.add(new_rule.name)
    return names


class _RuleDeltaChecker:
    """Decides, per packet, whether a candidate could change the response.

    Evaluates only the candidate's modified rules — in both their original
    and repaired form — against the single ``PacketIn`` tuple plus the static
    configuration tuples.  If old and new versions derive exactly the same
    heads, the candidate's response for this packet equals the base response
    and the full candidate program need not run.
    """

    def __init__(self, scenario, original: Program, candidate: RepairCandidate,
                 repaired: Program):
        self.scenario = scenario
        names = modified_rule_names(original, candidate)
        old_rules = [r for r in original.rules if r.name in names]
        new_rules = [r for r in repaired.rules if r.name in names]
        self.data_change = candidate.is_data_change()
        self._old_engine = self._build_engine(old_rules)
        self._new_engine = self._build_engine(new_rules)
        self._cache: Dict[Tuple, bool] = {}

    def _build_engine(self, rules: Sequence[Rule]) -> Optional[Engine]:
        if not rules:
            return None
        engine = Engine(Program(rules=[r.clone() for r in rules], name="delta"),
                        record_events=False)
        for schema in self.scenario.schemas():
            engine.register_schema(schema)
        engine.insert_many(list(self.scenario.static_tuples))
        return engine

    def affects(self, packet_tuple: NDTuple, static_tuples: Sequence[NDTuple]) -> bool:
        if self.data_change:
            return True
        key = packet_tuple.values
        if key in self._cache:
            return self._cache[key]
        old_heads = self._heads(self._old_engine, packet_tuple)
        new_heads = self._heads(self._new_engine, packet_tuple)
        affected = old_heads != new_heads
        self._cache[key] = affected
        return affected

    def affects_anywhere(self, packet, switch_ids: Sequence[int]) -> bool:
        """Could the candidate change this packet's fate at *any* switch?

        A packet raises PacketIns along its whole path, so the delta check
        must consider every switch the packet might traverse, not only its
        ingress switch.
        """
        if self.data_change:
            return True
        for switch_id in switch_ids:
            packet_tuple = self.scenario.packet_in_tuple(switch_id, packet)
            if self.affects(packet_tuple, ()):
                return True
        return False

    def _heads(self, engine: Optional[Engine], packet_tuple: NDTuple) -> frozenset:
        if engine is None:
            return frozenset()
        derived = engine.insert(packet_tuple)
        # Keep the delta engine stateless across probes: consume whatever this
        # packet derived (the transient PacketIn removes itself).
        for tup in derived:
            engine.consume(tup)
        return frozenset(derived)


@dataclass
class MultiQueryReport(BacktestReport):
    """Adds cache statistics to the standard report."""

    shared_evaluations: int = 0
    candidate_evaluations: int = 0

    def sharing_ratio(self) -> float:
        """Fraction of packet×candidate decisions served by the shared trunk.

        Each (packet, candidate) pair is counted exactly once, so the two
        counters always sum to ``len(trace) * len(candidates)``.
        """
        total = self.shared_evaluations + self.candidate_evaluations
        return self.shared_evaluations / total if total else 0.0


class _SharedResponseController:
    """Controller wrapper that forwards unaffected packets to a shared base.

    All candidates share one base controller and one response cache, so the
    unmodified part of the program is evaluated at most once per distinct
    packet across the whole candidate set — the operational equivalent of
    the paper's tagged backtesting program.
    """

    def __init__(self, scenario, base_controller, base_cache,
                 candidate_controller, checker, static_tuples):
        self.scenario = scenario
        self.base_controller = base_controller
        self.base_cache = base_cache
        self.candidate_controller = candidate_controller
        self.checker = checker
        self.static_tuples = static_tuples
        self.name = f"shared({candidate_controller.name})"

    def on_start(self, network):
        return self.candidate_controller.on_start(network)

    def handle_packet_in(self, event):
        # Sharing statistics are accounted once per packet×candidate in
        # MultiQueryBacktester.evaluate_all; counting again here (a packet
        # can raise several PacketIns along its path) double-counted
        # decisions and skewed MultiQueryReport.sharing_ratio().
        packet_tuple = self.scenario.packet_in_tuple(event.switch_id, event.packet,
                                                     in_port=event.in_port)
        if self.checker.affects(packet_tuple, self.static_tuples):
            return self.candidate_controller.handle_packet_in(event)
        key = (event.switch_id, packet_tuple.values)
        if key not in self.base_cache:
            self.base_cache[key] = self.base_controller.handle_packet_in(event)
        return self.base_cache[key]

    def reset(self):
        self.candidate_controller.reset()


class MultiQueryBacktester(Backtester):
    """Backtests many candidates jointly, sharing the common computation."""

    def evaluate_all(self, candidates: Sequence[RepairCandidate]) -> MultiQueryReport:
        started = _time.perf_counter()
        baseline = self.baseline()
        report = MultiQueryReport(baseline=baseline)
        trace = self._trace()
        static_tuples = list(self.scenario.static_tuples)

        # Shared base controller and response cache (computed lazily, once
        # per distinct packet across *all* candidates).
        base_controller = self.scenario.build_controller(program=None)
        base_cache: Dict[Tuple, List[object]] = {}
        counters = {"shared": 0, "candidate": 0}

        prepared = []
        for candidate in candidates:
            repaired = apply_candidate(self.scenario.program, candidate)
            checker = _RuleDeltaChecker(self.scenario, self.scenario.program,
                                        candidate, repaired.program)
            topology = self.scenario.build_topology()
            candidate_controller = self.scenario.build_controller(
                program=repaired.program,
                extra_tuples=repaired.inserted_tuples,
                removed_tuples=repaired.removed_tuples)
            shared = _SharedResponseController(
                self.scenario, base_controller, base_cache,
                candidate_controller, checker, static_tuples)
            simulator = NetworkSimulator(
                topology, shared,
                require_packet_out=self.scenario.require_packet_out,
                record_ingress=False)
            prepared.append((candidate, checker, simulator))

        # One shared pass over the trace: packets that a candidate's edits
        # cannot affect reuse the base network's delivery outcome (the shared
        # "trunk" of the paper's tagged backtesting program); only affected
        # packets are forwarded through that candidate's own network.
        base_topology = self.scenario.build_topology()
        base_simulator = NetworkSimulator(
            base_topology, self.scenario.build_controller(program=None),
            require_packet_out=self.scenario.require_packet_out,
            record_ingress=False)
        switch_ids = sorted(base_topology.switches)
        for switch_id, packet in trace:
            base_record = base_simulator.inject(packet, switch_id)
            for candidate, checker, simulator in prepared:
                if checker.affects_anywhere(packet, switch_ids):
                    counters["candidate"] += 1
                    simulator.inject(packet, switch_id)
                else:
                    counters["shared"] += 1
                    self._adopt_base_record(simulator, base_record)

        for candidate, checker, simulator in prepared:
            stats = simulator.stats
            ks = compare_traffic(baseline, stats)
            effective = bool(self.scenario.is_effective(stats))
            accepted = effective and not self._distorts(ks)
            report.results.append(BacktestResult(
                candidate=candidate, stats=stats, ks=ks, effective=effective,
                accepted=accepted, notes=candidate.notes))
        report.shared_evaluations = counters["shared"]
        report.candidate_evaluations = counters["candidate"]
        report.packet_count = len(trace)
        report.elapsed_seconds = _time.perf_counter() - started
        return report

    @staticmethod
    def _adopt_base_record(simulator: NetworkSimulator, record) -> None:
        """Credit a shared (base-network) delivery outcome to a candidate."""
        stats = simulator.stats
        stats.total += 1
        stats.delivery_records.append(record)
        if record.delivered:
            stats.delivered_per_host[record.delivered_to] = \
                stats.delivered_per_host.get(record.delivered_to, 0) + 1
        else:
            stats.dropped += 1
