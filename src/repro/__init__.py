"""repro: a reproduction of "Automated Bug Removal for Software-Defined
Networks" (Wu, Chen, Haeberlen, Zhou, Loo -- NSDI 2017).

The package provides, from the bottom up:

* :mod:`repro.ndlog` -- an NDlog/uDlog engine (the declarative controller
  substrate).
* :mod:`repro.provenance` -- classical positive/negative network provenance.
* :mod:`repro.meta` -- meta provenance: provenance over programs as well as
  data, cost-ordered exploration and constraint pools.
* :mod:`repro.solver` -- the mini constraint solver (Z3 substitute).
* :mod:`repro.repair` -- repair candidates, application and generation.
* :mod:`repro.backtest` -- replay-based backtesting with KS acceptance and
  multi-query optimization.
* :mod:`repro.sdn` -- a simulated SDN (switches, flow tables, topologies,
  traffic, historical logs): the Mininet substitute.
* :mod:`repro.controllers` -- NDlog, imperative ("RubyFlow"/Trema) and policy
  DSL (Pyretic) controller front ends with their meta models.
* :mod:`repro.scenarios` -- the five case studies Q1-Q5 of the evaluation.
* :mod:`repro.debugger` -- the end-to-end debugger
  (:class:`~repro.debugger.MetaProvenanceDebugger`).

Quickstart::

    from repro.scenarios import build_q1
    from repro.debugger import MetaProvenanceDebugger

    scenario = build_q1()
    report = MetaProvenanceDebugger(scenario).diagnose()
    print(report.summary())
"""

from .debugger import DiagnosisReport, MetaProvenanceDebugger, PhaseTimings

__version__ = "1.0.0"

__all__ = ["DiagnosisReport", "MetaProvenanceDebugger", "PhaseTimings",
           "__version__"]
