"""repro: a reproduction of "Automated Bug Removal for Software-Defined
Networks" (Wu, Chen, Haeberlen, Zhou, Loo -- NSDI 2017).

The package provides, from the bottom up:

* :mod:`repro.ndlog` -- an NDlog/uDlog engine (the declarative controller
  substrate).
* :mod:`repro.provenance` -- classical positive/negative network provenance.
* :mod:`repro.meta` -- meta provenance: provenance over programs as well as
  data, cost-ordered exploration and constraint pools.
* :mod:`repro.solver` -- the mini constraint solver (Z3 substitute).
* :mod:`repro.repair` -- repair candidates, application and generation.
* :mod:`repro.backtest` -- replay-based backtesting with KS acceptance and
  multi-query optimization.
* :mod:`repro.sdn` -- a simulated SDN (switches, flow tables, topologies,
  traffic, historical logs): the Mininet substitute.
* :mod:`repro.controllers` -- NDlog, imperative ("RubyFlow"/Trema) and policy
  DSL (Pyretic) controller front ends with their meta models.
* :mod:`repro.scenarios` -- the five case studies Q1-Q5 of the evaluation.
* :mod:`repro.distrib` -- the distributed backtest fabric (work-queue
  scheduling over in-process, spawn and socket transports).
* :mod:`repro.api` -- the unified repair-pipeline API:
  :class:`~repro.api.RepairSession` (staged Diagnose → Generate →
  Backtest → Rank pipeline), the declarative
  :class:`~repro.api.RepairConfig`, and the streaming event bus of
  :mod:`repro.events`.

Quickstart::

    from repro.api import RepairConfig, RepairSession

    config = RepairConfig.for_scenario("Q1", max_candidates=14)
    report = RepairSession(config).run()
    print(report.summary())

Or from a shell: ``python -m repro repair q1`` (see ``python -m repro
--help``).  The legacy one-call :class:`MetaProvenanceDebugger` remains
importable but is deprecated.
"""

from .api import (DiagnosisReport, EventBus, PhaseTimings, RepairConfig,
                  RepairSession, SessionEvent, repair)
from .debugger import MetaProvenanceDebugger

__version__ = "2.0.0"

__all__ = ["DiagnosisReport", "EventBus", "MetaProvenanceDebugger",
           "PhaseTimings", "RepairConfig", "RepairSession", "SessionEvent",
           "repair", "__version__"]
