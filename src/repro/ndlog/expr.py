"""Expression evaluation for the NDlog engine.

Expressions appear in selection predicates and assignments.  Evaluation is
performed against a *binding* (a dict mapping variable names to values).
Comparisons yield Python booleans; arithmetic yields integers.

The wildcard constant ``*`` (see :data:`repro.ndlog.ast.WILDCARD`) compares
equal to every value, mirroring its use in flow-table matches and in the
paper's meta rules (the JID wildcard matched by ``f_match``).
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from .ast import BinOp, Const, Expression, FuncCall, Var, WILDCARD
from .errors import EvaluationError, UnboundVariableError


class Bindings(dict):
    """A variable binding environment (a thin ``dict`` wrapper).

    The subclass exists mainly for readability at call sites and to offer the
    :meth:`extended` helper used during joins.
    """

    def extended(self, more: Mapping[str, object]) -> "Bindings":
        new = Bindings(self)
        new.update(more)
        return new


def _is_wildcard(value):
    return value == WILDCARD


def values_equal(a, b):
    """Equality that treats the wildcard as matching anything."""
    if _is_wildcard(a) or _is_wildcard(b):
        return True
    return a == b


def _compare(op, left, right):
    if op == "==":
        return values_equal(left, right)
    if op == "!=":
        if _is_wildcard(left) or _is_wildcard(right):
            return False
        return left != right
    if _is_wildcard(left) or _is_wildcard(right):
        # Ordered comparisons against a wildcard are undefined; they fail.
        return False
    try:
        if op == "<":
            return left < right
        if op == ">":
            return left > right
        if op == "<=":
            return left <= right
        if op == ">=":
            return left >= right
    except TypeError as exc:
        raise EvaluationError(f"cannot compare {left!r} {op} {right!r}") from exc
    raise EvaluationError(f"unknown comparison operator {op!r}")


def _arith(op, left, right):
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left // right if isinstance(left, int) and isinstance(right, int) else left / right
        if op == "%":
            return left % right
    except TypeError as exc:
        raise EvaluationError(f"cannot compute {left!r} {op} {right!r}") from exc
    raise EvaluationError(f"unknown arithmetic operator {op!r}")


class FunctionRegistry:
    """Registry of built-in functions callable from NDlog expressions.

    The default registry provides the helpers used by the paper's meta rules:
    ``f_match`` (wildcard-aware equality), ``f_join`` (wildcard resolution)
    and ``f_unique`` (fresh identifiers).
    """

    def __init__(self):
        self._functions: Dict[str, Callable] = {}
        self._unique_counter = 0
        self.register("f_match", self._f_match)
        self.register("f_join", self._f_join)
        self.register("f_unique", self._f_unique)
        self.register("f_concat", self._f_concat)

    def register(self, name, func):
        self._functions[name] = func

    def lookup(self, name):
        if name not in self._functions:
            raise EvaluationError(f"unknown function {name!r}")
        return self._functions[name]

    # -- built-ins ----------------------------------------------------------

    @staticmethod
    def _f_match(a, b):
        return values_equal(a, b)

    @staticmethod
    def _f_join(a, b):
        if _is_wildcard(a):
            return b
        return a

    def _f_unique(self):
        self._unique_counter += 1
        return self._unique_counter

    @staticmethod
    def _f_concat(*parts):
        return "".join(str(p) for p in parts)


_DEFAULT_FUNCTIONS = FunctionRegistry()


def evaluate(expr: Expression, bindings: Optional[Mapping[str, object]] = None,
             functions: Optional[FunctionRegistry] = None, rule_name: str = "<expr>"):
    """Evaluate ``expr`` under ``bindings``.

    Raises:
        UnboundVariableError: if the expression references a variable absent
            from the binding environment.
    """
    bindings = bindings or {}
    functions = functions or _DEFAULT_FUNCTIONS
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        if expr.name not in bindings:
            raise UnboundVariableError(rule_name, expr.name)
        return bindings[expr.name]
    if isinstance(expr, BinOp):
        left = evaluate(expr.left, bindings, functions, rule_name)
        right = evaluate(expr.right, bindings, functions, rule_name)
        if expr.is_comparison():
            return _compare(expr.op, left, right)
        return _arith(expr.op, left, right)
    if isinstance(expr, FuncCall):
        func = functions.lookup(expr.name)
        args = [evaluate(a, bindings, functions, rule_name) for a in expr.args]
        return func(*args)
    raise EvaluationError(f"cannot evaluate expression of type {type(expr).__name__}")


def try_evaluate(expr: Expression, bindings: Optional[Mapping[str, object]] = None,
                 functions: Optional[FunctionRegistry] = None):
    """Like :func:`evaluate` but returns ``None`` instead of raising on
    unbound variables (used during partial evaluation in the repair search)."""
    try:
        return evaluate(expr, bindings, functions)
    except (UnboundVariableError, EvaluationError):
        return None
