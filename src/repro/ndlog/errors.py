"""Exception hierarchy for the NDlog engine."""


class NDlogError(Exception):
    """Base class for all NDlog engine errors."""


class ParseError(NDlogError):
    """Raised when a program cannot be parsed.

    Attributes:
        message: human readable description of the problem.
        line: 1-based line number where the error was detected (0 if unknown).
        column: 1-based column number where the error was detected (0 if unknown).
    """

    def __init__(self, message, line=0, column=0):
        self.message = message
        self.line = line
        self.column = column
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")


class SchemaError(NDlogError):
    """Raised when a tuple does not match its table schema."""


class EvaluationError(NDlogError):
    """Raised when rule evaluation fails (e.g. an unbound variable)."""


class UnboundVariableError(EvaluationError):
    """Raised when a rule references a variable that is never bound."""

    def __init__(self, rule_name, variable):
        self.rule_name = rule_name
        self.variable = variable
        super().__init__(
            f"rule {rule_name!r} uses unbound variable {variable!r}"
        )
