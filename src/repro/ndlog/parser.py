"""Parser for NDlog / µDlog surface syntax.

The accepted syntax matches the paper's examples, e.g.::

    r1 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), WebLoadBalancer(@C,Hdr,Prt), Swi == 1.
    r2 FlowTable(@Swi,Hdr,Prt) :- PacketIn(@C,Swi,Hdr), Swi == 1, Hdr == 53, Prt := 2.

A rule is ``<name> <head> :- <terms>.`` where each term is either a body atom
(``Table(@Loc, Arg, ...)``), a selection predicate (``Expr op Expr`` with a
comparison operator) or an assignment (``Var := Expr``).  Rule names are
optional; anonymous rules receive sequential names ``r1``, ``r2``, ...

Comments start with ``//`` or ``#`` and run to the end of the line.
"""

from __future__ import annotations

from typing import List, Optional

from .ast import (
    Assignment,
    Atom,
    BinOp,
    COMPARISON_OPERATORS,
    Const,
    Expression,
    FuncCall,
    Program,
    Rule,
    Selection,
    Var,
    WILDCARD,
)
from .errors import ParseError


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TWO_CHAR = (":-", ":=", "==", "!=", "<=", ">=")
_ONE_CHAR = "(),.@<>+-*/%"


class Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind, text, line, column):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source):
    """Split ``source`` into a list of tokens, dropping comments."""
    tokens = []
    line = 1
    column = 1
    index = 0
    length = len(source)
    while index < length:
        ch = source[index]
        if ch == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if ch in " \t\r":
            index += 1
            column += 1
            continue
        if source.startswith("//", index) or ch == "#":
            while index < length and source[index] != "\n":
                index += 1
            continue
        if source.startswith(tuple(_TWO_CHAR), index):
            for op in _TWO_CHAR:
                if source.startswith(op, index):
                    tokens.append(Token("op", op, line, column))
                    index += len(op)
                    column += len(op)
                    break
            continue
        if ch == '"':
            end = source.find('"', index + 1)
            if end == -1:
                raise ParseError("unterminated string literal", line, column)
            tokens.append(Token("string", source[index + 1 : end], line, column))
            column += end - index + 1
            index = end + 1
            continue
        if ch.isdigit() or (ch == "-" and index + 1 < length and source[index + 1].isdigit()
                            and (not tokens or tokens[-1].kind in ("op", "punct"))
                            and (not tokens or tokens[-1].text not in (")",))):
            start = index
            index += 1
            while index < length and source[index].isdigit():
                index += 1
            tokens.append(Token("number", source[start:index], line, column))
            column += index - start
            continue
        if ch.isalpha() or ch == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] in "_'"):
                index += 1
            tokens.append(Token("ident", source[start:index], line, column))
            column += index - start
            continue
        if ch in _ONE_CHAR or ch == "!":
            kind = "punct" if ch in "(),.@" else "op"
            tokens.append(Token(kind, ch, line, column))
            index += 1
            column += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", line, column)
    return tokens


# ---------------------------------------------------------------------------
# Recursive-descent parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0
        self.anonymous_counter = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset=0) -> Optional[Token]:
        index = self.pos + offset
        if index < len(self.tokens):
            return self.tokens[index]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            if self.tokens:
                last = self.tokens[-1]
                raise ParseError("unexpected end of input", last.line, last.column)
            raise ParseError("unexpected end of input")
        self.pos += 1
        return token

    def _expect(self, text) -> Token:
        token = self._next()
        if token.text != text:
            raise ParseError(
                f"expected {text!r}, found {token.text!r}", token.line, token.column
            )
        return token

    def _at(self, text, offset=0):
        token = self._peek(offset)
        return token is not None and token.text == text

    # -- grammar ------------------------------------------------------------

    def parse_program(self, name="program"):
        rules = []
        while self._peek() is not None:
            rules.append(self.parse_rule())
        return Program(rules=rules, name=name)

    def parse_rule(self):
        start = self._peek()
        name = self._parse_rule_name()
        head = self.parse_atom()
        if head.negated:
            raise ParseError(
                f"rule head {head.table!r} must not be negated",
                head.line or 0, head.column or 0)
        self._expect(":-")
        body, selections, assignments = [], [], []
        while True:
            term = self._parse_term()
            if isinstance(term, Atom):
                body.append(term)
            elif isinstance(term, Selection):
                selections.append(term)
            else:
                assignments.append(term)
            token = self._next()
            if token.text == ".":
                break
            if token.text != ",":
                raise ParseError(
                    f"expected ',' or '.', found {token.text!r}",
                    token.line,
                    token.column,
                )
        return Rule(name=name, head=head, body=body,
                    selections=selections, assignments=assignments,
                    line=start.line if start else None,
                    column=start.column if start else None)

    def _parse_rule_name(self):
        # A rule name is an identifier immediately followed by another
        # identifier (the head table).  Without a name the head table is
        # followed directly by "(".
        first = self._peek()
        second = self._peek(1)
        if (
            first is not None
            and second is not None
            and first.kind == "ident"
            and second.kind == "ident"
        ):
            self._next()
            return first.text
        self.anonymous_counter += 1
        return f"r{self.anonymous_counter}"

    def parse_atom(self):
        negated = False
        if self._at("!"):
            self._next()
            negated = True
        table_token = self._next()
        if table_token.kind != "ident":
            raise ParseError(
                f"expected table name, found {table_token.text!r}",
                table_token.line,
                table_token.column,
            )
        self._expect("(")
        args = []
        location_index = None
        if not self._at(")"):
            while True:
                if self._at("@"):
                    self._next()
                    location_index = len(args)
                args.append(self.parse_expression())
                if self._at(","):
                    self._next()
                    continue
                break
        self._expect(")")
        return Atom(table_token.text, args, location_index=location_index,
                    negated=negated, line=table_token.line,
                    column=table_token.column)

    def _parse_term(self):
        # Negated body atom: "!" ident "(" ...
        token = self._peek()
        nxt = self._peek(1)
        after = self._peek(2)
        if (token is not None and token.text == "!" and nxt is not None
                and nxt.kind == "ident" and after is not None and after.text == "("):
            return self.parse_atom()
        # Body atom: ident "(" ...
        if token is not None and token.kind == "ident" and nxt is not None and nxt.text == "(":
            # Distinguish function-call selections (f_match(...) == True) from
            # atoms by looking for a trailing comparison operator; plain
            # function calls used as whole terms are treated as selections.
            saved = self.pos
            atom = self.parse_atom()
            if self._peek() is not None and self._peek().text in COMPARISON_OPERATORS:
                self.pos = saved
            else:
                return atom
        # Assignment: Var ":=" expr
        if token is not None and token.kind == "ident" and nxt is not None and nxt.text == ":=":
            var_token = self._next()
            self._next()  # consume ':='
            expr = self.parse_expression()
            return Assignment(var_token.text, expr)
        # Otherwise a selection predicate.
        left = self.parse_expression()
        op_token = self._next()
        if op_token.text not in COMPARISON_OPERATORS:
            raise ParseError(
                f"expected comparison operator, found {op_token.text!r}",
                op_token.line,
                op_token.column,
            )
        right = self.parse_expression()
        return Selection(BinOp(op_token.text, left, right))

    # Expressions: additive over multiplicative over primary.

    def parse_expression(self):
        return self._parse_additive()

    def _parse_additive(self):
        left = self._parse_multiplicative()
        while self._peek() is not None and self._peek().text in ("+", "-"):
            op = self._next().text
            right = self._parse_multiplicative()
            left = BinOp(op, left, right)
        return left

    def _parse_multiplicative(self):
        left = self._parse_primary()
        while self._peek() is not None and self._peek().text in ("*", "/", "%"):
            # "*" followed by "," or ")" is the wildcard constant, not a
            # multiplication; only treat it as an operator when an operand
            # follows.
            nxt = self._peek(1)
            if self._peek().text == "*" and (nxt is None or nxt.text in (",", ")", ".")):
                break
            op = self._next().text
            right = self._parse_primary()
            left = BinOp(op, left, right)
        return left

    def _parse_primary(self):
        token = self._next()
        if token.kind == "number":
            return Const(int(token.text))
        if token.kind == "string":
            return Const(token.text)
        if token.text == "*":
            return Const(WILDCARD)
        if token.text == "(":
            expr = self.parse_expression()
            self._expect(")")
            return expr
        if token.kind == "ident":
            if self._at("("):
                self._next()
                args = []
                if not self._at(")"):
                    while True:
                        args.append(self.parse_expression())
                        if self._at(","):
                            self._next()
                            continue
                        break
                self._expect(")")
                return FuncCall(token.text, tuple(args))
            lowered = token.text.lower()
            if lowered == "true":
                return Const(1)
            if lowered == "false":
                return Const(0)
            return Var(token.text)
        raise ParseError(
            f"unexpected token {token.text!r}", token.line, token.column
        )


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def parse_program(source, name="program") -> Program:
    """Parse NDlog source text into a :class:`~repro.ndlog.ast.Program`."""
    return _Parser(tokenize(source)).parse_program(name=name)


def parse_rule(source) -> Rule:
    """Parse a single rule (must end with a period)."""
    parser = _Parser(tokenize(source))
    rule = parser.parse_rule()
    if parser._peek() is not None:
        extra = parser._peek()
        raise ParseError(
            f"unexpected trailing input {extra.text!r}", extra.line, extra.column
        )
    return rule


def parse_expression(source) -> Expression:
    """Parse a standalone expression (used in tests and repair synthesis).

    A single trailing comparison is allowed, so both ``"Swi + 1"`` and
    ``"Swi == 2"`` parse.
    """
    parser = _Parser(tokenize(source))
    expr = parser.parse_expression()
    token = parser._peek()
    if token is not None and token.text in COMPARISON_OPERATORS:
        parser._next()
        right = parser.parse_expression()
        expr = BinOp(token.text, expr, right)
    if parser._peek() is not None:
        extra = parser._peek()
        raise ParseError(
            f"unexpected trailing input {extra.text!r}", extra.line, extra.column
        )
    return expr
