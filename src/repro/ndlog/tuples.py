"""Tuples, table schemas and per-node databases for the NDlog engine.

In NDlog the state of every node (switch, controller, server) is a set of
tables containing tuples.  Tuples are either *base* tuples, inserted from the
outside (configuration, packets arriving at border switches), or *derived*
tuples computed by rules.  This module provides the storage layer; the
evaluation logic lives in :mod:`repro.ndlog.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple as PyTuple

from .errors import SchemaError


@dataclass(frozen=True)
class TableSchema:
    """Schema of an NDlog table.

    Attributes:
        name: table name.
        fields: column names (the first column is conventionally the location).
        primary_key: names of columns forming the primary key.  When a new
            tuple shares its primary key with an existing one, the old tuple
            is replaced (NDlog "update" semantics).  An empty primary key
            means the whole tuple is the key (pure set semantics).
        persistent: ``True`` for materialised state tables, ``False`` for
            transient event tables (e.g. ``PacketIn``) which are consumed
            after triggering derivations.
        location_index: index of the location column.
    """

    name: str
    fields: PyTuple[str, ...]
    primary_key: PyTuple[str, ...] = ()
    persistent: bool = True
    location_index: int = 0

    @property
    def arity(self):
        return len(self.fields)

    def key_indexes(self):
        """Column indexes of the primary key (all columns if no key given)."""
        if not self.primary_key:
            return tuple(range(len(self.fields)))
        return tuple(self.fields.index(name) for name in self.primary_key)


@dataclass(frozen=True)
class NDTuple:
    """An immutable NDlog tuple: a table name plus a vector of values.

    The node on which the tuple resides is carried in the value at the
    schema's location index (by convention index 0).
    """

    table: str
    values: PyTuple

    def __post_init__(self):
        # Normalise lists into tuples so instances remain hashable.
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))

    @property
    def arity(self):
        return len(self.values)

    def value(self, index):
        return self.values[index]

    def location(self, schema: Optional[TableSchema] = None):
        index = schema.location_index if schema is not None else 0
        if index >= len(self.values):
            return None
        return self.values[index]

    def key(self, schema: Optional[TableSchema] = None):
        """Primary-key projection used for update semantics."""
        if schema is None or not schema.primary_key:
            return self.values
        return tuple(self.values[i] for i in schema.key_indexes())

    def replace(self, index, value):
        """Return a copy of the tuple with one value replaced."""
        values = list(self.values)
        values[index] = value
        return NDTuple(self.table, tuple(values))

    def __str__(self):
        rendered = ", ".join(repr(v) if isinstance(v, str) else str(v) for v in self.values)
        return f"{self.table}({rendered})"


def make_tuple(table, *values):
    """Convenience constructor mirroring NDlog surface syntax."""
    return NDTuple(table, tuple(values))


class Database:
    """Multiset-free storage of tuples grouped by table.

    The database distinguishes base tuples (inserted) from derived tuples
    (computed by rules) so that provenance and repair code can tell them
    apart.  Tuples are globally stored; location is just a value, matching
    the simulator's "omniscient" view used for offline analysis.
    """

    def __init__(self, schemas: Optional[Dict[str, TableSchema]] = None):
        self._schemas: Dict[str, TableSchema] = dict(schemas or {})
        self._tables: Dict[str, Set[NDTuple]] = {}
        self._base: Set[NDTuple] = set()
        self._derived: Set[NDTuple] = set()

    # -- schema management -------------------------------------------------

    def register_schema(self, schema: TableSchema):
        existing = self._schemas.get(schema.name)
        if existing is not None and existing != schema:
            raise SchemaError(
                f"conflicting schema registration for table {schema.name!r}"
            )
        self._schemas[schema.name] = schema

    def schema(self, table) -> Optional[TableSchema]:
        return self._schemas.get(table)

    def schemas(self) -> Dict[str, TableSchema]:
        return dict(self._schemas)

    # -- queries -----------------------------------------------------------

    def tables(self):
        return set(self._tables)

    def tuples(self, table) -> Set[NDTuple]:
        """Return the set of tuples currently stored for ``table``."""
        return set(self._tables.get(table, ()))

    def all_tuples(self) -> Iterator[NDTuple]:
        for table_tuples in self._tables.values():
            yield from table_tuples

    def base_tuples(self) -> Set[NDTuple]:
        return set(self._base)

    def derived_tuples(self) -> Set[NDTuple]:
        return set(self._derived)

    def contains(self, tup: NDTuple) -> bool:
        return tup in self._tables.get(tup.table, set())

    def is_base(self, tup: NDTuple) -> bool:
        return tup in self._base

    def count(self, table=None) -> int:
        if table is not None:
            return len(self._tables.get(table, ()))
        return sum(len(t) for t in self._tables.values())

    # -- mutation ----------------------------------------------------------

    def _check_schema(self, tup: NDTuple):
        schema = self._schemas.get(tup.table)
        if schema is not None and schema.arity != tup.arity:
            raise SchemaError(
                f"tuple {tup} has arity {tup.arity}, schema of "
                f"{tup.table!r} expects {schema.arity}"
            )
        return schema

    def _evict_key_conflicts(self, tup: NDTuple, schema: Optional[TableSchema]):
        """Remove tuples sharing the primary key (NDlog update semantics)."""
        if schema is None or not schema.primary_key:
            return []
        key = tup.key(schema)
        conflicting = [
            other
            for other in self._tables.get(tup.table, set())
            if other.key(schema) == key and other != tup
        ]
        for other in conflicting:
            self.remove(other)
        return conflicting

    def insert(self, tup: NDTuple, derived=False):
        """Insert a tuple; returns ``True`` if it was not already present."""
        schema = self._check_schema(tup)
        self._evict_key_conflicts(tup, schema)
        bucket = self._tables.setdefault(tup.table, set())
        fresh = tup not in bucket
        bucket.add(tup)
        if derived:
            self._derived.add(tup)
        else:
            self._base.add(tup)
        return fresh

    def remove(self, tup: NDTuple):
        """Remove a tuple; returns ``True`` if it was present."""
        bucket = self._tables.get(tup.table)
        if bucket is None or tup not in bucket:
            return False
        bucket.remove(tup)
        self._base.discard(tup)
        self._derived.discard(tup)
        return True

    def clear_table(self, table):
        for tup in list(self._tables.get(table, ())):
            self.remove(tup)

    def snapshot(self) -> "Database":
        """Return a deep copy of the database (schemas shared, data copied)."""
        copy = Database(self._schemas)
        for table, tuples in self._tables.items():
            copy._tables[table] = set(tuples)
        copy._base = set(self._base)
        copy._derived = set(self._derived)
        return copy

    def __len__(self):
        return self.count()

    def __contains__(self, tup):
        return isinstance(tup, NDTuple) and self.contains(tup)
