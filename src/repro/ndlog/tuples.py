"""Tuples, table schemas and per-node databases for the NDlog engine.

In NDlog the state of every node (switch, controller, server) is a set of
tables containing tuples.  Tuples are either *base* tuples, inserted from the
outside (configuration, packets arriving at border switches), or *derived*
tuples computed by rules.  This module provides the storage layer; the
evaluation logic lives in :mod:`repro.ndlog.engine`.

Storage details that the evaluation layer relies on:

* A tuple's base/derived status is kept as a pair of *flags* rather than two
  overlapping sets: a tuple inserted from the outside and later re-derived by
  a rule is both base and derived at once, and dropping one flag never evicts
  the tuple while the other flag remains.
* Tables are stored column-oriented underneath the set interface: besides the
  membership set, each table keeps an insertion-ordered row list (removals
  swap-pop, keeping it dense) from which per-column value blocks are sliced
  on demand (:meth:`Database.columns`, cached per mutation epoch).
* Secondary hash indexes keyed on ``(column, value)`` let joins probe the
  tuples matching an already-bound variable instead of scanning (and
  copying) the whole table.  Indexes are *lazy*: a column's buckets are
  materialised from the row list the first time a probe constrains that
  column, and only materialised columns are maintained afterwards — tables
  that are only ever scanned (or probed on one column) never pay for
  indexing the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple as PyTuple

from .errors import SchemaError


#: Flag bits used by :class:`Database` to track how a tuple entered the store.
BASE_FLAG = 1
DERIVED_FLAG = 2


@dataclass(frozen=True)
class TableSchema:
    """Schema of an NDlog table.

    Attributes:
        name: table name.
        fields: column names (the first column is conventionally the location).
        primary_key: names of columns forming the primary key.  When a new
            tuple shares its primary key with an existing one, the old tuple
            is replaced (NDlog "update" semantics).  An empty primary key
            means the whole tuple is the key (pure set semantics).
        persistent: ``True`` for materialised state tables, ``False`` for
            transient event tables (e.g. ``PacketIn``) which are consumed
            after triggering derivations.
        location_index: index of the location column.
    """

    name: str
    fields: PyTuple[str, ...]
    primary_key: PyTuple[str, ...] = ()
    persistent: bool = True
    location_index: int = 0

    def __post_init__(self):
        for column in self.primary_key:
            if column not in self.fields:
                raise SchemaError(
                    f"primary key column {column!r} of table {self.name!r} "
                    f"is not one of its fields {tuple(self.fields)}"
                )

    @property
    def arity(self):
        return len(self.fields)

    def key_indexes(self):
        """Column indexes of the primary key (all columns if no key given)."""
        if not self.primary_key:
            return tuple(range(len(self.fields)))
        return tuple(self.fields.index(name) for name in self.primary_key)


@dataclass(frozen=True)
class NDTuple:
    """An immutable NDlog tuple: a table name plus a vector of values.

    The node on which the tuple resides is carried in the value at the
    schema's location index (by convention index 0).
    """

    table: str
    values: PyTuple

    def __post_init__(self):
        # Normalise lists into tuples so instances remain hashable.
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))
        # Tuples are hashed on every index probe and set membership test in
        # the engine's hot loop; cache the hash once at construction.
        object.__setattr__(self, "_hash", hash((self.table, self.values)))

    def __hash__(self):
        return self._hash

    def __getstate__(self):
        # The cached hash must not cross process boundaries: string hashing
        # is per-process (PYTHONHASHSEED), so a pickled hash would be stale
        # in a worker.  Recompute it on unpickle.
        return (self.table, self.values)

    def __setstate__(self, state):
        table, values = state
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "_hash", hash((table, values)))

    @property
    def arity(self):
        return len(self.values)

    def value(self, index):
        return self.values[index]

    def location(self, schema: Optional[TableSchema] = None):
        index = schema.location_index if schema is not None else 0
        if index >= len(self.values):
            return None
        return self.values[index]

    def key(self, schema: Optional[TableSchema] = None):
        """Primary-key projection used for update semantics."""
        if schema is None or not schema.primary_key:
            return self.values
        return tuple(self.values[i] for i in schema.key_indexes())

    def replace(self, index, value):
        """Return a copy of the tuple with one value replaced."""
        values = list(self.values)
        values[index] = value
        return NDTuple(self.table, tuple(values))

    def __str__(self):
        rendered = ", ".join(repr(v) if isinstance(v, str) else str(v) for v in self.values)
        return f"{self.table}({rendered})"


def make_tuple(table, *values):
    """Convenience constructor mirroring NDlog surface syntax."""
    return NDTuple(table, tuple(values))


class Database:
    """Multiset-free storage of tuples grouped by table.

    The database distinguishes base tuples (inserted) from derived tuples
    (computed by rules) so that provenance and repair code can tell them
    apart; a tuple can carry both flags at once.  Tuples are globally stored;
    location is just a value, matching the simulator's "omniscient" view used
    for offline analysis.
    """

    def __init__(self, schemas: Optional[Dict[str, TableSchema]] = None):
        self._schemas: Dict[str, TableSchema] = dict(schemas or {})
        #: Names of non-persistent tables, so the engine's post-fixpoint
        #: transient sweep can skip the schema lookups when there are none.
        self.transient_tables: Set[str] = {
            name for name, schema in self._schemas.items()
            if not schema.persistent}
        self._tables: Dict[str, Set[NDTuple]] = {}
        #: Per-tuple BASE_FLAG / DERIVED_FLAG bits.
        self._flags: Dict[NDTuple, int] = {}
        #: Column-store backbone: dense insertion-ordered rows per table
        #: (removals swap-pop) plus each live tuple's current position.
        self._rows: Dict[str, List[NDTuple]] = {}
        self._row_pos: Dict[str, Dict[NDTuple, int]] = {}
        #: Per-table secondary indexes: (column, value) -> set of tuples.
        #: Only the columns in ``_indexed_columns[table]`` are materialised;
        #: others are built on first probe (see :meth:`_ensure_column`).
        self._indexes: Dict[str, Dict[PyTuple[int, object], Set[NDTuple]]] = {}
        self._indexed_columns: Dict[str, Set[int]] = {}
        #: Mutation counter per table; invalidates the column-block cache.
        self._epoch: Dict[str, int] = {}
        self._columns_cache: Dict[str, PyTuple[int, PyTuple[tuple, ...]]] = {}
        #: Monotone count of lazily materialised secondary indexes
        #: (:meth:`_ensure_column` actually building buckets) — sampled by
        #: the observability layer; never rewound.
        self.index_materializations = 0
        #: Called with each tuple evicted by a primary-key update, so an
        #: engine can keep its incremental bookkeeping consistent.
        self.eviction_hook = None
        #: Undo journal shared with an :class:`~repro.ndlog.engine.Engine`
        #: checkpoint.  While set, every mutation appends an inverse entry;
        #: :meth:`apply_undo` plays entries back (newest first) to rewind.
        self.journal: Optional[List] = None

    # -- schema management -------------------------------------------------

    def register_schema(self, schema: TableSchema):
        existing = self._schemas.get(schema.name)
        if existing is not None and existing != schema:
            raise SchemaError(
                f"conflicting schema registration for table {schema.name!r}"
            )
        self._schemas[schema.name] = schema
        if not schema.persistent:
            self.transient_tables.add(schema.name)
        else:
            self.transient_tables.discard(schema.name)

    def schema(self, table) -> Optional[TableSchema]:
        return self._schemas.get(table)

    def schemas(self) -> Dict[str, TableSchema]:
        return dict(self._schemas)

    # -- queries -----------------------------------------------------------

    def tables(self):
        return set(self._tables)

    def tuples(self, table) -> Set[NDTuple]:
        """Return a copy of the set of tuples currently stored for ``table``."""
        return set(self._tables.get(table, ()))

    def table(self, name) -> Set[NDTuple]:
        """The live tuple set of a table.  Callers must not mutate it."""
        return self._tables.get(name, _EMPTY_SET)

    def rows(self, name) -> List[NDTuple]:
        """The live, dense row list of a table in insertion order (removals
        swap-pop, so positions are not stable).  Callers must not mutate it.

        Unlike :meth:`table`, iteration order does not depend on the string
        hash seed — bulk evaluation passes batches in this order.
        """
        return self._rows.get(name, _EMPTY_ROWS)

    def columns(self, name) -> PyTuple[tuple, ...]:
        """Per-column value blocks of a table, aligned with :meth:`rows`.

        ``columns(t)[c][i] == rows(t)[i].values[c]``.  Blocks are sliced
        lazily from the row list and cached until the table next mutates.
        Returns ``()`` for an empty or unknown table.
        """
        rows = self._rows.get(name)
        if not rows:
            return ()
        epoch = self._epoch.get(name, 0)
        cached = self._columns_cache.get(name)
        if cached is not None and cached[0] == epoch:
            return cached[1]
        blocks = tuple(zip(*(row.values for row in rows)))
        self._columns_cache[name] = (epoch, blocks)
        return blocks

    def _ensure_column(self, table, column) -> None:
        """Materialise the ``(column, value)`` buckets of one table column."""
        indexed = self._indexed_columns.setdefault(table, set())
        if column in indexed:
            return
        indexed.add(column)
        self.index_materializations += 1
        index = self._indexes.setdefault(table, {})
        for tup in self._rows.get(table, ()):
            values = tup.values
            if column < len(values):
                index.setdefault((column, values[column]), set()).add(tup)

    def lookup(self, table, column, value) -> Set[NDTuple]:
        """Tuples of ``table`` whose ``column`` holds exactly ``value``.

        Returns the live index bucket (do not mutate).  Comparison is strict
        equality — wildcard values are ordinary values at the storage layer.
        """
        indexed = self._indexed_columns.get(table)
        if indexed is None or column not in indexed:
            self._ensure_column(table, column)
        index = self._indexes.get(table)
        if index is None:
            return _EMPTY_SET
        return index.get((column, value), _EMPTY_SET)

    def candidates(self, table, constraints: Sequence[PyTuple[int, object]]) -> Set[NDTuple]:
        """Smallest candidate set for a join probe.

        ``constraints`` is a sequence of ``(column, value)`` equality
        constraints; the smallest matching index bucket is returned (the full
        table when no constraint is given).  The result is a live set — it
        over-approximates the match, so callers still verify each tuple.
        """
        bucket = self._tables.get(table)
        if not bucket:
            return _EMPTY_SET
        if not constraints:
            return bucket
        indexed = self._indexed_columns.get(table)
        if indexed is None:
            indexed = self._indexed_columns.setdefault(table, set())
        index = self._indexes.get(table)
        if index is None:
            index = self._indexes.setdefault(table, {})
        best = bucket
        for key in constraints:
            if key[0] not in indexed:
                self._ensure_column(table, key[0])
            found = index.get(key)
            if not found:
                return _EMPTY_SET
            if len(found) < len(best):
                best = found
        return best

    def all_tuples(self) -> Iterator[NDTuple]:
        for table_tuples in self._tables.values():
            yield from table_tuples

    def base_tuples(self) -> Set[NDTuple]:
        return {t for t, flags in self._flags.items() if flags & BASE_FLAG}

    def derived_tuples(self) -> Set[NDTuple]:
        return {t for t, flags in self._flags.items() if flags & DERIVED_FLAG}

    def contains(self, tup: NDTuple) -> bool:
        return tup in self._tables.get(tup.table, _EMPTY_SET)

    def is_base(self, tup: NDTuple) -> bool:
        return bool(self._flags.get(tup, 0) & BASE_FLAG)

    def is_derived(self, tup: NDTuple) -> bool:
        return bool(self._flags.get(tup, 0) & DERIVED_FLAG)

    def count(self, table=None) -> int:
        if table is not None:
            return len(self._tables.get(table, ()))
        return sum(len(t) for t in self._tables.values())

    # -- mutation ----------------------------------------------------------

    def _check_schema(self, tup: NDTuple):
        schema = self._schemas.get(tup.table)
        if schema is not None and schema.arity != tup.arity:
            raise SchemaError(
                f"tuple {tup} has arity {tup.arity}, schema of "
                f"{tup.table!r} expects {schema.arity}"
            )
        return schema

    def _evict_key_conflicts(self, tup: NDTuple, schema: Optional[TableSchema]):
        """Remove tuples sharing the primary key (NDlog update semantics)."""
        if schema is None or not schema.primary_key:
            return []
        key_columns = schema.key_indexes()
        key = tup.key(schema)
        # Probe the index on the first key column instead of scanning.
        candidates = self.lookup(tup.table, key_columns[0], tup.values[key_columns[0]])
        conflicting = [other for other in candidates
                       if other != tup and other.key(schema) == key]
        for other in conflicting:
            self.remove(other)
            if self.eviction_hook is not None:
                self.eviction_hook(other)
        return conflicting

    def _index_add(self, tup: NDTuple):
        """Register a fresh tuple in the row store and materialised buckets."""
        table = tup.table
        rows = self._rows.get(table)
        if rows is None:
            rows = self._rows[table] = []
            self._row_pos[table] = {}
        self._row_pos[table][tup] = len(rows)
        rows.append(tup)
        self._epoch[table] = self._epoch.get(table, 0) + 1
        indexed = self._indexed_columns.get(table)
        if indexed:
            index = self._indexes[table]
            values = tup.values
            for column in indexed:
                if column < len(values):
                    index.setdefault((column, values[column]), set()).add(tup)

    def _index_discard(self, tup: NDTuple):
        """Drop a tuple from the row store (swap-pop) and the buckets."""
        table = tup.table
        positions = self._row_pos.get(table)
        if positions is not None:
            position = positions.pop(tup, None)
            if position is not None:
                rows = self._rows[table]
                last = rows.pop()
                if last != tup:     # equality, not identity: the stored
                    rows[position] = last   # instance may differ from ``tup``
                    positions[last] = position
                self._epoch[table] = self._epoch.get(table, 0) + 1
        indexed = self._indexed_columns.get(table)
        if indexed:
            index = self._indexes[table]
            values = tup.values
            for column in indexed:
                if column >= len(values):
                    continue
                key = (column, values[column])
                bucket = index.get(key)
                if bucket is not None:
                    bucket.discard(tup)
                    if not bucket:
                        del index[key]

    def insert(self, tup: NDTuple, derived=False):
        """Insert a tuple; returns ``True`` if it was not already present."""
        schema = self._check_schema(tup)
        self._evict_key_conflicts(tup, schema)
        bucket = self._tables.setdefault(tup.table, set())
        fresh = tup not in bucket
        if fresh:
            bucket.add(tup)
            self._index_add(tup)
            if self.journal is not None:
                self.journal.append(("dbadd", tup))
            flag = DERIVED_FLAG if derived else BASE_FLAG
            self._flags[tup] = flag
            return True
        flag = DERIVED_FLAG if derived else BASE_FLAG
        old = self._flags.get(tup, 0)
        new = old | flag
        if new != old:
            if self.journal is not None:
                self.journal.append(("dbflag", tup, old))
            self._flags[tup] = new
        return fresh

    def remove(self, tup: NDTuple):
        """Remove a tuple entirely (both flags); returns ``True`` if present."""
        bucket = self._tables.get(tup.table)
        if bucket is None or tup not in bucket:
            return False
        if self.journal is not None:
            self.journal.append(("dbrem", tup, self._flags.get(tup, 0)))
        bucket.remove(tup)
        self._index_discard(tup)
        self._flags.pop(tup, None)
        return True

    def clear_base_flag(self, tup: NDTuple) -> bool:
        """Drop the base flag; the tuple survives while still derived.

        Returns ``True`` if the tuple left the database (it carried no other
        flag), ``False`` if it remains as a derived tuple or was absent.
        """
        flags = self._flags.get(tup)
        if flags is None or not flags & BASE_FLAG:
            return False
        remaining = flags & ~BASE_FLAG
        if remaining:
            if self.journal is not None:
                self.journal.append(("dbflag", tup, flags))
            self._flags[tup] = remaining
            return False
        return self.remove(tup)

    def clear_derived_flag(self, tup: NDTuple) -> bool:
        """Drop the derived flag; the tuple survives while still base.

        Returns ``True`` if the tuple left the database, ``False`` otherwise.
        """
        flags = self._flags.get(tup)
        if flags is None or not flags & DERIVED_FLAG:
            return False
        remaining = flags & ~DERIVED_FLAG
        if remaining:
            if self.journal is not None:
                self.journal.append(("dbflag", tup, flags))
            self._flags[tup] = remaining
            return False
        return self.remove(tup)

    def apply_undo(self, entry) -> None:
        """Invert one journal entry (callers replay the journal newest-first).

        Undo bypasses schema checks, key-conflict eviction and further
        journaling on purpose: the entry describes the exact storage-level
        change to revert, nothing more.
        """
        kind = entry[0]
        if kind == "dbadd":
            tup = entry[1]
            bucket = self._tables.get(tup.table)
            if bucket is not None and tup in bucket:
                bucket.discard(tup)
                self._index_discard(tup)
            self._flags.pop(tup, None)
        elif kind == "dbrem":
            _, tup, flags = entry
            bucket = self._tables.setdefault(tup.table, set())
            if tup not in bucket:
                bucket.add(tup)
                self._index_add(tup)
            self._flags[tup] = flags
        elif kind == "dbflag":
            _, tup, flags = entry
            self._flags[tup] = flags
        else:                        # pragma: no cover — engine-side entry
            raise ValueError(f"unknown database journal entry {kind!r}")

    def clear_table(self, table):
        for tup in list(self._tables.get(table, ())):
            self.remove(tup)

    def snapshot(self) -> "Database":
        """Return a deep copy of the database (schemas shared, data copied)."""
        copy = Database(self._schemas)
        for table, tuples in self._tables.items():
            copy._tables[table] = set(tuples)
        for table, rows in self._rows.items():
            copy._rows[table] = list(rows)
            copy._row_pos[table] = dict(self._row_pos[table])
        for table, index in self._indexes.items():
            copy._indexes[table] = {key: set(bucket) for key, bucket in index.items()}
        for table, indexed in self._indexed_columns.items():
            copy._indexed_columns[table] = set(indexed)
        copy._flags = dict(self._flags)
        return copy

    def index_consistent(self) -> bool:
        """Do the row store and every materialised bucket agree with the
        live tuple sets?  (Diagnostic used by the checkpoint tests.)"""
        for table, live in self._tables.items():
            rows = self._rows.get(table, [])
            if len(rows) != len(live) or set(rows) != live:
                return False
            positions = self._row_pos.get(table, {})
            if any(rows[pos] != tup for tup, pos in positions.items()):
                return False
        for table, index in self._indexes.items():
            live = self._tables.get(table, _EMPTY_SET)
            indexed = self._indexed_columns.get(table, set())
            for (column, value), bucket in index.items():
                if column not in indexed:
                    return False
                if any(tup not in live or tup.values[column] != value
                       for tup in bucket):
                    return False
            for tup in live:
                for column in indexed:
                    if column < len(tup.values) and \
                            tup not in index.get((column, tup.values[column]),
                                                 _EMPTY_SET):
                        return False
        return True

    def __len__(self):
        return self.count()

    def __contains__(self, tup):
        return isinstance(tup, NDTuple) and self.contains(tup)


_EMPTY_SET: Set[NDTuple] = frozenset()
_EMPTY_ROWS: List[NDTuple] = []
