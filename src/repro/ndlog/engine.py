"""Semi-naive evaluation engine for NDlog programs.

The engine stores tuples in a :class:`~repro.ndlog.tuples.Database`, evaluates
rules to a fixpoint whenever base tuples are inserted, and keeps two kinds of
history used by the provenance subsystem:

* a chronological event log (`EngineEvent` records: INSERT / DERIVE /
  APPEAR / SEND / RECEIVE / ... ), and
* the set of `DerivationRecord`s, one per successful rule firing, storing
  the head tuple, the body tuples and the variable bindings.

The engine is deliberately single-threaded and deterministic: logical time is
a simple counter, and rule/body iteration order is the program order.  This
determinism is what makes backtesting reproducible.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .ast import Atom, Const, Program, Rule, Var
from .errors import EvaluationError
from .events import (
    APPEAR,
    DELETE,
    DERIVE,
    DISAPPEAR,
    INSERT,
    RECEIVE,
    SEND,
    UNDERIVE,
    DerivationRecord,
    EngineEvent,
)
from .expr import Bindings, FunctionRegistry, evaluate
from .tuples import Database, NDTuple, TableSchema


class Engine:
    """Evaluates an NDlog program over a database of tuples."""

    def __init__(self, program: Program,
                 schemas: Optional[Dict[str, TableSchema]] = None,
                 functions: Optional[FunctionRegistry] = None,
                 record_events: bool = True,
                 max_derivations: int = 1_000_000):
        self.program = program
        self.database = Database(schemas)
        self.functions = functions or FunctionRegistry()
        self.record_events = record_events
        self.max_derivations = max_derivations
        self.clock = 0
        self.events: List[EngineEvent] = []
        self.derivations: List[DerivationRecord] = []
        self._derivations_by_head: Dict[NDTuple, List[DerivationRecord]] = defaultdict(list)
        self._rules_by_body_table: Dict[str, List[Tuple[Rule, int]]] = defaultdict(list)
        self._index_rules()

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------

    def _index_rules(self):
        self._rules_by_body_table.clear()
        for rule in self.program.rules:
            for position, atom in enumerate(rule.body):
                self._rules_by_body_table[atom.table].append((rule, position))

    def set_program(self, program: Program):
        """Swap in a new program (used when backtesting a repair candidate)."""
        self.program = program
        self._index_rules()

    def register_schema(self, schema: TableSchema):
        self.database.register_schema(schema)

    # ------------------------------------------------------------------
    # Event logging
    # ------------------------------------------------------------------

    def _tick(self):
        self.clock += 1
        return self.clock

    def _log(self, kind, tup, node=None, rule=None, derivation=None,
             source=None, destination=None):
        time = self._tick()
        if self.record_events:
            self.events.append(EngineEvent(
                kind=kind, time=time, tuple=tup, node=node, rule=rule,
                derivation=derivation, source=source, destination=destination))
        return time

    # ------------------------------------------------------------------
    # Public mutation API
    # ------------------------------------------------------------------

    def insert(self, tup: NDTuple) -> List[NDTuple]:
        """Insert a base tuple, run to fixpoint, and return new derived tuples.

        Transient (non-persistent) tuples — both the inserted one and any
        transient derived heads — are removed from the database after the
        fixpoint, but remain visible in the event log and in the returned
        list, mirroring NDlog's message semantics.
        """
        schema = self.database.schema(tup.table)
        node = tup.location(schema)
        fresh = self.database.insert(tup, derived=False)
        self._log(INSERT, tup, node=node)
        if fresh:
            self._log(APPEAR, tup, node=node)
        derived = self._fixpoint([tup]) if fresh else []
        self._cleanup_transients([tup] + derived)
        return derived

    def insert_many(self, tuples: Iterable[NDTuple]) -> List[NDTuple]:
        """Insert several base tuples, running a single fixpoint at the end."""
        inserted = []
        for tup in tuples:
            schema = self.database.schema(tup.table)
            node = tup.location(schema)
            if self.database.insert(tup, derived=False):
                inserted.append(tup)
                self._log(INSERT, tup, node=node)
                self._log(APPEAR, tup, node=node)
        derived = self._fixpoint(inserted)
        self._cleanup_transients(inserted + derived)
        return derived

    def remove(self, tup: NDTuple) -> List[NDTuple]:
        """Remove a base tuple and underive anything no longer supported.

        Returns the list of derived tuples that disappeared.  The engine
        recomputes the derived set from the remaining base tuples (a simple,
        correct strategy for the program sizes in the paper's evaluation).
        """
        if not self.database.contains(tup):
            return []
        schema = self.database.schema(tup.table)
        node = tup.location(schema)
        self.database.remove(tup)
        self._log(DELETE, tup, node=node)
        self._log(DISAPPEAR, tup, node=node)
        return self._recompute_derived()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def tuples(self, table) -> Set[NDTuple]:
        return self.database.tuples(table)

    def contains(self, tup: NDTuple) -> bool:
        return self.database.contains(tup)

    def derivations_of(self, tup: NDTuple) -> List[DerivationRecord]:
        """All historical derivations of ``tup`` (possibly via several rules)."""
        return list(self._derivations_by_head.get(tup, ()))

    def event_log(self) -> List[EngineEvent]:
        return list(self.events)

    # ------------------------------------------------------------------
    # Fixpoint evaluation
    # ------------------------------------------------------------------

    def _fixpoint(self, delta: Sequence[NDTuple]) -> List[NDTuple]:
        worklist = list(delta)
        newly_derived: List[NDTuple] = []
        while worklist:
            trigger = worklist.pop(0)
            for rule, position in self._rules_by_body_table.get(trigger.table, ()):
                for head, body, bindings in self._fire_rule(rule, position, trigger):
                    record = self._record_derivation(rule, head, body, bindings)
                    if record is None:
                        continue
                    is_new = not self.database.contains(head)
                    self.database.insert(head, derived=True)
                    if is_new:
                        newly_derived.append(head)
                        worklist.append(head)
        return newly_derived

    def _recompute_derived(self) -> List[NDTuple]:
        """Recompute the derived set from base tuples after a deletion."""
        before = self.database.derived_tuples()
        for tup in before:
            self.database.remove(tup)
        base = list(self.database.base_tuples())
        # Re-run the fixpoint without logging fresh INSERT events.
        recomputed: Set[NDTuple] = set()
        worklist = list(base)
        while worklist:
            trigger = worklist.pop(0)
            for rule, position in self._rules_by_body_table.get(trigger.table, ()):
                for head, body, bindings in self._fire_rule(rule, position, trigger):
                    if not self.database.contains(head):
                        self.database.insert(head, derived=True)
                        recomputed.add(head)
                        worklist.append(head)
        disappeared = [t for t in before if t not in recomputed and not self.database.contains(t)]
        for tup in disappeared:
            schema = self.database.schema(tup.table)
            node = tup.location(schema)
            self._log(UNDERIVE, tup, node=node)
            self._log(DISAPPEAR, tup, node=node)
        return disappeared

    def _record_derivation(self, rule: Rule, head: NDTuple,
                           body: Tuple[NDTuple, ...], bindings: Dict[str, object]):
        if len(self.derivations) >= self.max_derivations:
            raise EvaluationError(
                f"derivation limit of {self.max_derivations} exceeded; "
                "the program is probably not terminating")
        # Avoid recording the exact same firing twice.
        for existing in self._derivations_by_head.get(head, ()):
            if existing.rule == rule.name and existing.body == body:
                return None
        record = DerivationRecord(
            rule=rule.name,
            head=head,
            body=body,
            bindings=tuple(sorted(bindings.items(), key=lambda kv: kv[0])),
            time=self.clock + 1,
            node=self._head_node(rule, head),
        )
        self.derivations.append(record)
        self._derivations_by_head[head].append(record)
        head_node = record.node
        trigger_node = body[0].location(self.database.schema(body[0].table)) if body else None
        if body and head_node is not None and trigger_node is not None and head_node != trigger_node:
            self._log(SEND, head, node=trigger_node, rule=rule.name,
                      source=trigger_node, destination=head_node)
            self._log(RECEIVE, head, node=head_node, rule=rule.name,
                      source=trigger_node, destination=head_node)
        self._log(DERIVE, head, node=head_node, rule=rule.name, derivation=record)
        if not self.database.contains(head):
            self._log(APPEAR, head, node=head_node, rule=rule.name)
        return record

    def _head_node(self, rule: Rule, head: NDTuple):
        schema = self.database.schema(head.table)
        return head.location(schema)

    # ------------------------------------------------------------------
    # Rule firing
    # ------------------------------------------------------------------

    def _fire_rule(self, rule: Rule, trigger_position: int, trigger: NDTuple):
        """Yield (head, body_tuples, bindings) for every firing of ``rule``
        in which the body atom at ``trigger_position`` matches ``trigger``."""
        initial = self._match_atom(rule.body[trigger_position], trigger, Bindings())
        if initial is None:
            return
        yield from self._join_remaining(rule, trigger_position, trigger, initial, 0, [])

    def _join_remaining(self, rule, trigger_position, trigger, bindings, atom_index, chosen):
        if atom_index == len(rule.body):
            result = self._finish_rule(rule, bindings)
            if result is not None:
                head, final_bindings = result
                body = tuple(self._ordered_body(rule, trigger_position, trigger, chosen))
                yield head, body, final_bindings
            return
        if atom_index == trigger_position:
            yield from self._join_remaining(
                rule, trigger_position, trigger, bindings, atom_index + 1, chosen)
            return
        atom = rule.body[atom_index]
        for candidate in self.database.tuples(atom.table):
            extended = self._match_atom(atom, candidate, bindings)
            if extended is None:
                continue
            yield from self._join_remaining(
                rule, trigger_position, trigger, extended, atom_index + 1,
                chosen + [(atom_index, candidate)])

    def _ordered_body(self, rule, trigger_position, trigger, chosen):
        by_index = {trigger_position: trigger}
        by_index.update(dict(chosen))
        return [by_index[i] for i in range(len(rule.body))]

    def _match_atom(self, atom: Atom, tup: NDTuple, bindings: Bindings) -> Optional[Bindings]:
        """Match a body atom against a concrete tuple, extending bindings."""
        if atom.table != tup.table or atom.arity != tup.arity:
            return None
        new = Bindings(bindings)
        for arg, value in zip(atom.args, tup.values):
            if isinstance(arg, Var):
                if arg.name in new:
                    if new[arg.name] != value:
                        return None
                else:
                    new[arg.name] = value
            elif isinstance(arg, Const):
                if arg.value != value:
                    return None
            else:
                # Complex expression argument: evaluate if fully bound.
                try:
                    computed = evaluate(arg, new, self.functions, rule_name="<atom-arg>")
                except EvaluationError:
                    return None
                if computed != value:
                    return None
        return new

    def _finish_rule(self, rule: Rule, bindings: Bindings):
        """Evaluate assignments and selections, then build the head tuple."""
        env = Bindings(bindings)
        pending_assignments = list(rule.assignments)
        pending_selections = list(rule.selections)
        progress = True
        while progress:
            progress = False
            for assignment in list(pending_assignments):
                if assignment.expr.variables() <= set(env):
                    env[assignment.var] = evaluate(
                        assignment.expr, env, self.functions, rule.name)
                    pending_assignments.remove(assignment)
                    progress = True
            for selection in list(pending_selections):
                if selection.variables() <= set(env):
                    if not evaluate(selection.expr, env, self.functions, rule.name):
                        return None
                    pending_selections.remove(selection)
                    progress = True
        if pending_selections or pending_assignments:
            # Unresolvable variables: the rule cannot fire under this binding.
            return None
        head_values = []
        for arg in rule.head.args:
            if isinstance(arg, Var):
                if arg.name not in env:
                    return None
                head_values.append(env[arg.name])
            else:
                head_values.append(evaluate(arg, env, self.functions, rule.name))
        return NDTuple(rule.head.table, tuple(head_values)), dict(env)

    # ------------------------------------------------------------------
    # Transient-tuple handling
    # ------------------------------------------------------------------

    def _cleanup_transients(self, candidates: Iterable[NDTuple]):
        for tup in candidates:
            schema = self.database.schema(tup.table)
            if schema is not None and not schema.persistent:
                self.database.remove(tup)


def evaluate_program(program: Program, base_tuples: Iterable[NDTuple],
                     schemas: Optional[Dict[str, TableSchema]] = None) -> Engine:
    """Convenience helper: build an engine, insert all base tuples, return it."""
    engine = Engine(program, schemas=schemas)
    engine.insert_many(list(base_tuples))
    return engine
