"""Indexed, incrementally-maintained evaluation engine for NDlog programs.

The engine stores tuples in a :class:`~repro.ndlog.tuples.Database`, evaluates
rules to a fixpoint whenever base tuples are inserted, and keeps two kinds of
history used by the provenance subsystem:

* a chronological event log (`EngineEvent` records: INSERT / DERIVE /
  APPEAR / SEND / RECEIVE / ... ), and
* the set of `DerivationRecord`s, one per successful rule firing, storing
  the head tuple, the body tuples and the variable bindings.

Evaluation strategy
-------------------

Rules are *compiled* when a program is installed: each rule becomes a
:class:`~repro.ndlog.plan.CompiledRule` — specialized Python fire functions
(one per trigger position) generated from the rule's structure and shared
across programs through the process-global, structural-digest-keyed
:data:`~repro.ndlog.plan.PLAN_CACHE`.  A fire function processes a whole
batch of trigger tuples per call; joins probe the database's ``(column,
value)`` hash indexes with the equality constraints implied by constants and
already-bound variables, and selection predicates are pushed down to the
first join depth where their variables are bound.  The event-visible
fixpoint runs off a deque-based worklist (single-tuple batches, preserving
the exact historical firing order); the quiet bulk paths (deletion
re-derivation, program-delta seeding, full recompute) run round-based delta
batches — the full recompute additionally evaluates stratum-by-stratum over
the SCC condensation from :mod:`repro.analysis.depgraph` (semi-naive:
each round joins only the previous round's delta against the indexes).
Duplicate rule firings are detected with a per-(rule, head) hash set rather
than a linear scan of the derivation history.  The interpreted evaluator
(:meth:`_fire_rule`) is kept both as the provenance layer's ad-hoc matcher
and as the event-visible fallback for the rare rules where eager batch
firing cannot reproduce the lazy firing order (a head feeding its own body
table at join depth >= 2).

Deletion semantics
------------------

:meth:`Engine.remove` retracts a base tuple incrementally (DRed-style)
instead of recomputing the derived set from scratch.  The engine maintains,
for every derived tuple, the set of *supports* — ``(rule, body tuples)``
pairs that currently justify it — plus a reverse index from each tuple to
the supports it participates in.  Removal over-deletes the downstream cone
of the retracted tuple (skipping base tuples: a tuple can be base *and*
derived at once, and retracting one base tuple never evicts another), then
re-derives members of the cone that still have a valid alternative support,
propagating re-derivations to a quiet fixpoint.  Tuples removed directly
through ``engine.database.remove`` (e.g. transient message cleanup performed
by controllers) bypass this bookkeeping on purpose: their supports stay
registered, so replaying the exact same firing does not re-derive them —
matching the historical message semantics of the event log.

Primary-key (NDlog "update") tables interact with deletion in two ways: a
key update that evicts a derived tuple also forgets its supports (so the
same firing can later re-derive it), and a deletion whose cone touches a
keyed table falls back to a full recompute, since freeing a key can make a
previously evicted tuple derivable again.  When several live derivations
assign *different* values to one key, the surviving tuple is
evaluation-order dependent — a property of the update semantics itself,
shared with the recompute-based reference evaluator.

The engine is deliberately single-threaded and deterministic: logical time is
a simple counter, and rule/body iteration order is the program order.  This
determinism is what makes backtesting reproducible.  A scan-based reference
implementation with identical insert-time semantics is kept in
:mod:`repro.ndlog.naive` and is used by the test suite as a cross-check
oracle.

Warm evaluation
---------------

Backtesting replays the same trace against many near-identical programs, and
rebuilding an engine per candidate makes *setup* — not the fixpoint — the
recurring cost.  Two facilities move that cost off the per-candidate path:

* :meth:`Engine.checkpoint` / :meth:`Engine.restore` snapshot the complete
  evaluation state in O(changed) via an undo journal: once a checkpoint
  exists, every mutation (tuples, flags, indexes, supports, dependents)
  appends an inverse entry, and restoring rewinds the journal instead of
  copying tables.  Append-only history (events, derivations) is simply
  truncated back to the checkpointed lengths.
* :meth:`Engine.apply_program_delta` switches to a candidate program by
  *diffing* the rule sets: derivations of removed/modified rules are
  retracted through the DRed support machinery, and only added/modified
  rules are (re-)evaluated against the existing database — a cold
  ``set_program`` + recompute is needed only for ineligible deltas (see
  :func:`program_delta_eligible`).  Delta evaluation is quiet — it updates
  tuples and supports but records no events/derivations — so warm engines
  serve backtesting (``record_events=False``), not provenance capture.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .ast import Atom, Const, Program, Rule, Var, WILDCARD
from .errors import EvaluationError
from .events import (
    APPEAR,
    DELETE,
    DERIVE,
    DISAPPEAR,
    INSERT,
    RECEIVE,
    SEND,
    UNDERIVE,
    DerivationRecord,
    EngineEvent,
)
from .expr import Bindings, FunctionRegistry, _compare, evaluate
from .plan import CompiledRule, PLAN_CACHE, schedule_for
from .tuples import Database, NDTuple, TableSchema


class ProgramDeltaError(EvaluationError):
    """An incremental program switch cannot be applied (caller should fall
    back to a cold rebuild)."""


class ProgramDelta:
    """Structural diff between two programs, keyed by rule name."""

    __slots__ = ("removed", "added", "modified")

    def __init__(self, removed: Set[str], added: Set[str], modified: Set[str]):
        self.removed = removed
        self.added = added
        self.modified = modified

    @property
    def changed(self) -> Set[str]:
        return self.removed | self.added | self.modified

    def __bool__(self):
        return bool(self.removed or self.added or self.modified)


def diff_programs(old: Program, new: Program) -> Optional[ProgramDelta]:
    """Diff two programs by rule name; ``None`` when names are ambiguous.

    Rules are compared structurally (the AST dataclasses define deep
    equality), so a renamed rule counts as removed + added and an edited
    rule as modified.  Programs with duplicate rule names cannot be diffed.
    """
    old_map = {rule.name: rule for rule in old.rules}
    new_map = {rule.name: rule for rule in new.rules}
    if len(old_map) != len(old.rules) or len(new_map) != len(new.rules):
        return None
    removed = {name for name in old_map if name not in new_map}
    added = {name for name in new_map if name not in old_map}
    modified = {name for name, rule in old_map.items()
                if name in new_map and new_map[name] != rule}
    return ProgramDelta(removed, added, modified)


def _changed_cone(delta: ProgramDelta, old: Program, new: Program) -> Set[str]:
    """Tables whose contents can differ between the two programs: the head
    tables of changed rules, closed downstream over *both* programs'
    dependency graphs (:class:`repro.analysis.depgraph.DependencyGraph`).
    Closing over both is required — a rule removed from ``old`` still
    propagated its head table's contents there, and a rule added in ``new``
    only propagates there."""
    seeds: Set[str] = set()
    for program, names in ((old, delta.removed | delta.modified),
                           (new, delta.added | delta.modified)):
        for rule in program.rules:
            if rule.name in names:
                seeds.add(rule.head.table)
    return _both_downstream(seeds, old, new)


def _both_downstream(seeds: Iterable[str], old: Program,
                     new: Program) -> Set[str]:
    """``seeds`` closed downstream over both programs' dependency graphs."""
    from ..analysis.depgraph import DependencyGraph

    graphs = (DependencyGraph(old), DependencyGraph(new))
    cone = set(seeds)
    changed = True
    while changed:
        changed = False
        for graph in graphs:
            expanded = graph.downstream(cone)
            if not expanded <= cone:
                cone |= expanded
                changed = True
    return cone


def data_edit_eligible(tables: Iterable[str], old: Program, new: Program,
                       schemas: Dict[str, TableSchema]) -> bool:
    """May base-tuple edits in ``tables`` be applied warm (checkpoint
    restore + incremental :meth:`Engine.remove` / :meth:`Engine.insert`)
    instead of being folded into a cold static fixpoint?

    Mirrors the rule-delta keyed-cone rule: the edits are ineligible when
    their downstream cone — closed over *both* programs' dependency graphs,
    like :func:`_changed_cone` — touches a primary-key table, where
    update-semantics eviction makes the result insertion-order dependent.
    """
    for table in _both_downstream(tables, old, new):
        schema = schemas.get(table)
        if schema is not None and schema.primary_key:
            return False
    return True


def _delta_ineligibility(old: Program, new: Program,
                         schemas: Dict[str, TableSchema]
                         ) -> Tuple[Optional[ProgramDelta], Optional[str]]:
    """Single source of truth for delta eligibility.

    Returns ``(delta, reason)``: ``reason`` is ``None`` when the delta may
    be applied incrementally, otherwise a human-readable explanation (and
    ``delta`` may be ``None`` for ambiguous diffs).
    """
    delta = diff_programs(old, new)
    if delta is None:
        return None, "duplicate rule names make the diff ambiguous"
    if not delta:
        return delta, None
    for table in _changed_cone(delta, old, new):
        schema = schemas.get(table)
        if schema is not None and schema.primary_key:
            return delta, (f"changed rules touch the primary-key table "
                           f"{table!r} (evaluation-order dependent)")
    return delta, None


def program_delta_eligible(old: Program, new: Program,
                           schemas: Dict[str, TableSchema]) -> bool:
    """May ``old -> new`` be applied as an incremental rule delta?

    Ineligible cases fall back to a cold rebuild:

    * ambiguous diffs (duplicate rule names in either program), and
    * deltas whose changed cone touches a primary-key table — key updates
      evict by evaluation order, so retract-then-reseed could keep a
      different same-key survivor than a from-scratch evaluation.
    """
    _delta, reason = _delta_ineligibility(old, new, schemas)
    return reason is None


class EngineCheckpoint:
    """Opaque handle to a point-in-time engine state (see
    :meth:`Engine.checkpoint`)."""

    __slots__ = ("engine", "journal_length", "clock", "event_count",
                 "derivation_count", "quiet_firings", "program",
                 "incremental_ready",
                 "plans_by_body_table", "plans_by_name", "rule_names")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.journal_length = len(engine._journal)
        self.clock = engine.clock
        self.event_count = len(engine.events)
        self.derivation_count = len(engine.derivations)
        self.quiet_firings = engine._quiet_firings
        self.program = engine.program
        self.incremental_ready = engine._incremental_ready
        # Plan dicts are replaced (never mutated) by _index_rules, so
        # holding references makes the restore-side rollback a pointer swap.
        self.plans_by_body_table = engine._plans_by_body_table
        self.plans_by_name = engine._plans_by_name
        self.rule_names = engine._rule_names


class _AtomPlan:
    """Precompiled matching layout of one body atom."""

    __slots__ = ("atom", "table", "arity", "consts", "steps", "var_columns",
                 "snapshot")

    def __init__(self, atom: Atom, head_table: str):
        self.atom = atom
        self.table = atom.table
        self.arity = atom.arity
        consts = []
        steps = []          # ('v', column, name) / ('e', column, expr) in order
        var_columns = []    # (column, name) for index probes
        seen_vars = set()
        for column, arg in enumerate(atom.args):
            if isinstance(arg, Const):
                consts.append((column, arg.value))
            elif isinstance(arg, Var):
                steps.append(("v", column, arg.name))
                if arg.name not in seen_vars:
                    seen_vars.add(arg.name)
                    var_columns.append((column, arg.name))
            else:
                steps.append(("e", column, arg))
        self.consts = tuple(consts)
        self.steps = tuple(steps)
        self.var_columns = tuple(var_columns)
        # A rule whose head feeds one of its own body tables mutates the set
        # being iterated mid-fixpoint; snapshot the candidates in that case.
        self.snapshot = atom.table == head_table


class _RulePlan:
    """Precompiled evaluation plan of one rule."""

    __slots__ = ("rule", "atom_plans", "selection_vars", "assignment_vars",
                 "pushable", "head_steps", "guards")

    def __init__(self, rule: Rule):
        self.rule = rule
        for body_atom in rule.body:
            if body_atom.negated:
                raise EvaluationError(
                    f"rule {rule.name!r}: negated atom "
                    f"!{body_atom.table} is not supported by the evaluator")
        self.atom_plans = tuple(_AtomPlan(atom, rule.head.table)
                                for atom in rule.body)
        assigned = {a.var for a in rule.assignments}
        self.selection_vars = tuple(frozenset(s.variables())
                                    for s in rule.selections)
        self.assignment_vars = tuple(frozenset(a.expr.variables())
                                     for a in rule.assignments)
        # A selection touching an assigned variable must wait for
        # _finish_rule (the assignment may overwrite a body binding).
        self.pushable = tuple(not (vars_ & assigned)
                              for vars_ in self.selection_vars)
        head_steps = []
        for arg in rule.head.args:
            if isinstance(arg, Var):
                head_steps.append(("v", arg.name))
            else:
                head_steps.append(("e", arg))
        self.head_steps = tuple(head_steps)
        # Per trigger position: single-variable comparisons against constants
        # checked directly on the trigger tuple's values, before any binding
        # environment exists.  guards[pos] = ((column, op, value, var_left,
        # selection_bit), ...).
        guards = []
        for plan in self.atom_plans:
            first_column = {name: column for column, name in
                            reversed(plan.var_columns)}
            entries = []
            for index, selection in enumerate(rule.selections):
                if not self.pushable[index]:
                    continue
                left, right = selection.left, selection.right
                if isinstance(left, Var) and isinstance(right, Const):
                    name, value, var_left = left.name, right.value, True
                elif isinstance(right, Var) and isinstance(left, Const):
                    name, value, var_left = right.name, left.value, False
                else:
                    continue
                if name in first_column:
                    entries.append((first_column[name], selection.op, value,
                                    var_left, 1 << index))
            guards.append(tuple(entries))
        self.guards = tuple(guards)


class Engine:
    """Evaluates an NDlog program over a database of tuples."""

    def __init__(self, program: Program,
                 schemas: Optional[Dict[str, TableSchema]] = None,
                 functions: Optional[FunctionRegistry] = None,
                 record_events: bool = True,
                 max_derivations: int = 1_000_000):
        self.program = program
        self.database = Database(schemas)
        self.functions = functions or FunctionRegistry()
        self.record_events = record_events
        self.max_derivations = max_derivations
        self.clock = 0
        self.events: List[EngineEvent] = []
        self.derivations: List[DerivationRecord] = []
        self._derivations_by_head: Dict[NDTuple, List[DerivationRecord]] = defaultdict(list)
        #: Per-(rule, head) bodies already recorded — O(1) duplicate check.
        self._recorded_bodies: Dict[Tuple[str, NDTuple], Set[Tuple[NDTuple, ...]]] = {}
        #: Current supports of each derived tuple: {(rule_name, body), ...}.
        self._supports: Dict[NDTuple, Set[Tuple[str, Tuple[NDTuple, ...]]]] = {}
        #: Reverse index: tuple -> supports it participates in.
        self._dependents: Dict[NDTuple, Set[Tuple[NDTuple, str, Tuple[NDTuple, ...]]]] = {}
        #: Per-rule index over the live supports: rule name -> {(head, key)}.
        #: Kept in lockstep with ``_supports`` so rule retraction
        #: (:meth:`_retract_rules`) touches only the rule's own supports
        #: instead of scanning every live support in the database.
        self._supports_by_rule: Dict[str, Set[Tuple[NDTuple, Tuple[str, Tuple[NDTuple, ...]]]]] = {}
        self._plans_by_body_table: Dict[str, List[Tuple[CompiledRule, int]]] = defaultdict(list)
        self._rule_names: Set[str] = set()
        #: Rule firings processed on quiet paths (``record_events=False``
        #: skips the derivation history entirely); stands in for the
        #: ``max_derivations`` runaway guard there, and is checkpointed so a
        #: restore rewinds the budget too.
        self._quiet_firings = 0
        #: False after a program swap left derived state without supports;
        #: the next removal resynchronises with a full recompute.
        self._incremental_ready = True
        #: Plan cache for the _match_atom compatibility helper, keyed by
        #: atom identity (the atom object is kept referenced alongside).
        self._adhoc_plans: Dict[int, Tuple[Atom, _AtomPlan]] = {}
        #: Undo journal, shared with the database; ``None`` until the first
        #: :meth:`checkpoint` — non-warm engines pay one None-check per
        #: mutation and nothing else.
        self._journal: Optional[List] = None
        #: Monotone telemetry counters (:meth:`telemetry_counters`) — two
        #: unconditional int adds per fixpoint, deliberately *not*
        #: checkpointed: they report work performed, not logical state, so
        #: a warm-engine restore must not rewind them.
        self.fixpoint_count = 0
        self.tuples_derived_total = 0
        #: Optional :class:`repro.obs.Tracer`; when attached, each
        #: insert-triggered fixpoint runs under an ``engine.fixpoint``
        #: span.  ``None`` (the default) costs one identity check per
        #: insert and nothing else.
        self.tracer = None
        self.database.eviction_hook = self._on_evicted
        self._index_rules()

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------

    def _index_rules(self):
        """(Re)resolve the compiled plans for the current program.

        Plans are fetched from the process-global :data:`PLAN_CACHE`, keyed
        by structural digest, so structurally unchanged rules — whether from
        a program delta, a sibling candidate program, or another engine
        entirely — share one compiled plan.  Fresh dicts are assigned rather
        than cleared: checkpoints hold references to the previous ones,
        making a restore's plan rollback a pointer swap.
        """
        plans_by_body_table: Dict[str, List[Tuple[CompiledRule, int]]] = \
            defaultdict(list)
        plans_by_name: Dict[str, CompiledRule] = {}
        rule_names: Set[str] = set()
        cache = PLAN_CACHE
        for rule in self.program.rules:
            plan = cache.get(rule)
            rule_names.add(rule.name)
            plans_by_name[rule.name] = plan
            for position in range(len(rule.body)):
                plans_by_body_table[rule.body[position].table].append(
                    (plan, position))
        self._plans_by_body_table = plans_by_body_table
        self._plans_by_name = plans_by_name
        self._rule_names = rule_names

    def set_program(self, program: Program):
        """Swap in a new program (used when backtesting a repair candidate).

        Support bookkeeping built under the old rules is discarded; the next
        :meth:`remove` falls back to a full recompute (which rebuilds the
        supports under the new program) instead of trusting stale entries.
        """
        self.program = program
        self._index_rules()
        if self._supports or self._dependents:
            if self._journal is not None:
                self._journal.append(("supswap", self._supports,
                                      self._dependents,
                                      self._supports_by_rule))
                self._supports = {}
                self._dependents = {}
                self._supports_by_rule = {}
            else:
                self._supports.clear()
                self._dependents.clear()
                self._supports_by_rule.clear()
            self._incremental_ready = False

    def register_schema(self, schema: TableSchema):
        self.database.register_schema(schema)

    # ------------------------------------------------------------------
    # Event logging
    # ------------------------------------------------------------------

    def _tick(self):
        self.clock += 1
        return self.clock

    def _log(self, kind, tup, node=None, rule=None, derivation=None,
             source=None, destination=None):
        time = self._tick()
        if self.record_events:
            self.events.append(EngineEvent(
                kind=kind, time=time, tuple=tup, node=node, rule=rule,
                derivation=derivation, source=source, destination=destination))
        return time

    # ------------------------------------------------------------------
    # Public mutation API
    # ------------------------------------------------------------------

    def insert(self, tup: NDTuple) -> List[NDTuple]:
        """Insert a base tuple, run to fixpoint, and return new derived tuples.

        Transient (non-persistent) tuples — both the inserted one and any
        transient derived heads — are removed from the database after the
        fixpoint, but remain visible in the event log and in the returned
        list, mirroring NDlog's message semantics.
        """
        if not self.record_events:
            # Quiet engines skip the schema/node lookups; the clock still
            # advances by the same amount as the INSERT (+ APPEAR) logs.
            fresh = self.database.insert(tup, derived=False)
            self.clock += 2 if fresh else 1
            if not fresh:
                derived = []
            elif self.tracer is None:
                derived = self._fixpoint([tup])
            else:
                derived = self._traced_fixpoint(tup)
            self._cleanup_transients([tup] + derived)
            return derived
        schema = self.database.schema(tup.table)
        node = tup.location(schema)
        fresh = self.database.insert(tup, derived=False)
        self._log(INSERT, tup, node=node)
        if fresh:
            self._log(APPEAR, tup, node=node)
            derived = (self._fixpoint([tup]) if self.tracer is None
                       else self._traced_fixpoint(tup))
        else:
            derived = []
        self._cleanup_transients([tup] + derived)
        return derived

    def insert_many(self, tuples: Iterable[NDTuple]) -> List[NDTuple]:
        """Insert several base tuples, running a single fixpoint at the end."""
        inserted = []
        if not self.record_events:
            db_insert = self.database.insert
            for tup in tuples:
                if db_insert(tup, derived=False):
                    inserted.append(tup)
                    self.clock += 2
        else:
            for tup in tuples:
                schema = self.database.schema(tup.table)
                node = tup.location(schema)
                if self.database.insert(tup, derived=False):
                    inserted.append(tup)
                    self._log(INSERT, tup, node=node)
                    self._log(APPEAR, tup, node=node)
        derived = self._fixpoint(inserted)
        self._cleanup_transients(inserted + derived)
        return derived

    def insert_batch(self, tuples: Sequence[NDTuple],
                     consumed_tables: Iterable[str] = ()) -> List[List[NDTuple]]:
        """Insert a batch of base tuples with ONE fixpoint, attributing results.

        Returns one list per batch entry, equivalent to what a sequence of
        :meth:`insert` calls would have returned — but the join work runs in a
        single fixpoint, which is what makes batched ``PacketIn`` handling
        cheaper than per-packet evaluation.

        The equivalence holds only for *batch-order-independent* programs: no
        rule may join two tuples that both descend from batch entries, no
        batch-derivable table may carry a primary key, and batch entries must
        be pairwise distinct.  Callers are responsible for checking this
        (see :func:`repro.controllers.batching.analyze_batch_safety`); the
        engine itself only reconstructs, per entry, which heads a sequential
        insertion at that point would have reported as newly derived.

        ``consumed_tables`` names tables whose tuples the caller drops (via
        :meth:`consume`) between events — e.g. one-shot ``PacketOut`` messages.
        Heads in those tables are re-reported for every batch entry that
        contributes a distinct derivation, matching the sequential behaviour
        where the previous event's message has already been consumed.

        Unlike sequential insertion, the event log records all INSERT/APPEAR
        events up front and does not log re-appearances of consumed heads;
        backtesting controllers run with ``record_events=False``, where the
        logs are identical.
        """
        batch = list(tuples)
        results: List[List[NDTuple]] = [[] for _ in batch]
        if not batch:
            return results
        fresh_list: List[NDTuple] = []
        ready: Dict[NDTuple, int] = {}
        for position, tup in enumerate(batch):
            schema = self.database.schema(tup.table)
            node = tup.location(schema)
            if self.database.insert(tup, derived=False):
                if tup not in ready:
                    ready[tup] = position
                fresh_list.append(tup)
                self._log(INSERT, tup, node=node)
                self._log(APPEAR, tup, node=node)
        fired: List[Tuple[NDTuple, Tuple[NDTuple, ...]]] = []
        newly_derived = self._fixpoint(fresh_list, fired=fired)
        batch_created = set(fresh_list) | set(newly_derived)

        # Earliest batch position at which each tuple becomes derivable: a
        # firing completes once all its batch-descended body members exist.
        # Relax to fixpoint — the joint worklist order is not topological.
        changed = True
        while changed:
            changed = False
            for head, body in fired:
                positions = [ready[member] for member in body if member in ready]
                if not positions:
                    continue
                at = max(positions)
                if at < ready.get(head, len(batch)):
                    ready[head] = at
                    changed = True

        # Group firings by the batch entry that completes them, preserving
        # the joint fixpoint's firing order (which preserves each entry's
        # own sequential derivation order).
        per_entry: List[List[NDTuple]] = [[] for _ in batch]
        for head, body in fired:
            positions = [ready[member] for member in body if member in ready]
            if positions:
                per_entry[max(positions)].append(head)

        # Replay sequential visibility: a head is "newly derived" for the
        # entry at which a sequential insert would have found it absent.
        # Consumed/transient heads leave the store between events, so each
        # entry with a distinct derivation re-reports them.
        consumed = set(consumed_tables)
        live: Set[NDTuple] = set()
        for position in range(len(batch)):
            listed: Set[NDTuple] = set()
            for head in per_entry[position]:
                if head in live or head in listed or head not in batch_created:
                    continue
                results[position].append(head)
                listed.add(head)
                schema = self.database.schema(head.table)
                transient = schema is not None and not schema.persistent
                if head.table not in consumed and not transient:
                    live.add(head)
        self._cleanup_transients(fresh_list + newly_derived)
        return results

    def remove(self, tup: NDTuple) -> List[NDTuple]:
        """Retract a base tuple and underive its unsupported downstream cone.

        Returns the list of derived tuples that disappeared.  Deletion is
        incremental (DRed-style): only tuples reachable from ``tup`` through
        the current support graph are reconsidered, and every tuple with a
        surviving alternative derivation — or a base flag of its own — stays.
        """
        if not self.database.contains(tup):
            return []
        schema = self.database.schema(tup.table)
        node = tup.location(schema)
        self._log(DELETE, tup, node=node)
        self._log(DISAPPEAR, tup, node=node)
        self.database.remove(tup)
        if not self._incremental_ready:
            # A program swap invalidated the support graph: recompute the
            # derived set from the remaining base tuples under the current
            # rules, rebuilding the supports along the way.
            return self._recompute_and_rebuild_supports()

        # Phase 1: over-delete everything transitively supported via ``tup``.
        overdeleted: List[NDTuple] = [tup]
        overdeleted_set: Set[NDTuple] = {tup}
        touched_base: Set[NDTuple] = set()
        keyed_table_touched = self._in_keyed_table(tup)
        queue = deque([tup])
        journal = self._journal
        while queue:
            current = queue.popleft()
            popped = self._dependents.pop(current, None)
            if popped is None:
                continue
            if journal is not None:
                journal.append(("deppop", current, popped))
            for head, rule_name, body in popped:
                supports = self._supports.get(head)
                if supports is not None:
                    key = (rule_name, body)
                    if key in supports:
                        supports.discard(key)
                        self._rule_index_discard(head, key)
                        if journal is not None:
                            journal.append(("supdel", head, key))
                    if not supports:
                        del self._supports[head]
                if head in overdeleted_set or not self.database.contains(head):
                    continue
                if self.database.is_base(head):
                    # Base tuples never leave because a derivation died.
                    touched_base.add(head)
                    continue
                self.database.remove(head)
                overdeleted.append(head)
                overdeleted_set.add(head)
                keyed_table_touched = keyed_table_touched or self._in_keyed_table(head)
                queue.append(head)

        # Phase 2: re-derive over-deleted tuples that still have a valid
        # alternative support, and propagate quietly.
        worklist: List[NDTuple] = []
        for head in overdeleted:
            if self._has_valid_support(head):
                self.database.insert(head, derived=True)
                worklist.append(head)
        for head in touched_base:
            if not self._has_valid_support(head):
                self.database.clear_derived_flag(head)
        if worklist:
            self._rederive_fixpoint(worklist)

        disappeared = []
        for head in overdeleted[1:]:
            if not self.database.contains(head):
                head_schema = self.database.schema(head.table)
                head_node = head.location(head_schema)
                self._log(UNDERIVE, head, node=head_node)
                self._log(DISAPPEAR, head, node=head_node)
                disappeared.append(head)
        if keyed_table_touched:
            # Deleting a tuple of a primary-key table can free a key that a
            # previously evicted tuple (whose supports the eviction hook
            # dropped) may reoccupy; only a recompute can find those, so fall
            # back to it — the cheap incremental path covers the common
            # keyless tables.
            extra = self._recompute_and_rebuild_supports()
            disappeared.extend(t for t in extra if t not in disappeared)
        return disappeared

    def consume(self, tup: NDTuple) -> bool:
        """Drop a message tuple from the database without underiving anything.

        Used by controllers for derived tuples that act as one-shot messages
        (e.g. ``PacketOut``): the tuple leaves the store, but its supports and
        history stay registered, so replaying the exact same firing does not
        re-emit it.  Contrast with :meth:`remove`, which incrementally
        maintains the derived set.
        """
        return self.database.remove(tup)

    # ------------------------------------------------------------------
    # Checkpoint / restore / program deltas (warm candidate switching)
    # ------------------------------------------------------------------

    def checkpoint(self) -> EngineCheckpoint:
        """Snapshot the complete evaluation state in O(1).

        The first checkpoint turns on the undo journal: from then on every
        mutation appends an inverse entry, so :meth:`restore` rewinds in
        O(mutations since the checkpoint) rather than O(database).
        Checkpoints nest (restore to any still-live one); restoring an
        older checkpoint invalidates newer ones.
        """
        if self._journal is None:
            self._journal = []
            self.database.journal = self._journal
        return EngineCheckpoint(self)

    def restore(self, cp: EngineCheckpoint) -> None:
        """Rewind all state to ``cp``: tuples, flags, indexes, supports,
        dependents, program/plans, clock and the event/derivation history."""
        if cp.engine is not self:
            raise EvaluationError("checkpoint belongs to a different engine")
        journal = self._journal
        if journal is None or len(journal) < cp.journal_length:
            raise EvaluationError("checkpoint is no longer restorable")
        database = self.database
        database.journal = None     # undo must not journal itself
        try:
            while len(journal) > cp.journal_length:
                entry = journal.pop()
                kind = entry[0]
                if kind.startswith("db"):
                    database.apply_undo(entry)
                elif kind == "supadd":
                    _, head, key = entry
                    supports = self._supports.get(head)
                    if supports is not None:
                        supports.discard(key)
                        if not supports:
                            del self._supports[head]
                    self._rule_index_discard(head, key)
                elif kind == "supdel":
                    _, head, key = entry
                    self._supports.setdefault(head, set()).add(key)
                    self._rule_index_add(head, key)
                elif kind == "suppop":
                    _, head, old_set = entry
                    self._supports[head] = old_set
                    for key in old_set:
                        self._rule_index_add(head, key)
                elif kind == "depadd":
                    _, member, dep = entry
                    dependents = self._dependents.get(member)
                    if dependents is not None:
                        dependents.discard(dep)
                        if not dependents:
                            del self._dependents[member]
                elif kind == "depdel":
                    _, member, dep = entry
                    self._dependents.setdefault(member, set()).add(dep)
                elif kind == "deppop":
                    _, member, old_set = entry
                    self._dependents[member] = old_set
                elif kind == "supswap":
                    _, old_supports, old_dependents, old_by_rule = entry
                    self._supports = old_supports
                    self._dependents = old_dependents
                    self._supports_by_rule = old_by_rule
                else:           # pragma: no cover — defensive
                    raise EvaluationError(f"unknown journal entry {kind!r}")
        finally:
            database.journal = journal
        # Append-only history: truncate, unwinding the per-head indexes.
        for record in reversed(self.derivations[cp.derivation_count:]):
            by_head = self._derivations_by_head[record.head]
            by_head.pop()
            if not by_head:
                del self._derivations_by_head[record.head]
            recorded = self._recorded_bodies.get((record.rule, record.head))
            if recorded is not None:
                recorded.discard(record.body)
                if not recorded:
                    del self._recorded_bodies[(record.rule, record.head)]
        del self.derivations[cp.derivation_count:]
        del self.events[cp.event_count:]
        self.clock = cp.clock
        self._quiet_firings = cp.quiet_firings
        self._incremental_ready = cp.incremental_ready
        if self.program is not cp.program:
            self.program = cp.program
            self._plans_by_body_table = cp.plans_by_body_table
            self._plans_by_name = cp.plans_by_name
            self._rule_names = cp.rule_names

    def apply_program_delta(self, old_program: Program,
                            new_program: Program) -> None:
        """Switch from ``old_program`` to ``new_program`` incrementally.

        Derivations of removed/modified rules are retracted through the
        DRed support machinery (over-delete the cone, re-derive survivors),
        then added/modified rules are seeded against the existing database
        and propagated to a quiet fixpoint.  The resulting tuple set,
        flags and support graph equal a from-scratch evaluation of
        ``new_program`` over the same base tuples; the event/derivation
        history is *not* extended (warm switching serves backtesting, where
        ``record_events=False`` and provenance is never consulted).

        Raises :class:`ProgramDeltaError` for ineligible deltas — callers
        should pre-check with :func:`program_delta_eligible` and fall back
        to :meth:`set_program` on a fresh (or restored) engine.
        """
        if self.program is not old_program and self.program != old_program:
            raise ProgramDeltaError(
                "apply_program_delta: engine is not running the old program")
        if not self._incremental_ready:
            raise ProgramDeltaError(
                "apply_program_delta: support graph is stale (a prior "
                "set_program bypassed incremental maintenance)")
        delta, reason = _delta_ineligibility(old_program, new_program,
                                             self.database.schemas())
        if reason is not None:
            raise ProgramDeltaError(
                f"apply_program_delta: {reason}; cold rebuild required")
        self.program = new_program
        # Unchanged rules resolve to the exact same compiled plan through
        # the shared structural-digest cache, so re-indexing is cheap.
        self._index_rules()
        if not delta:
            return
        inserted: List[NDTuple] = []
        self._retract_rules(delta.removed | delta.modified, inserted)
        self._seed_rules(delta.added | delta.modified, inserted)
        # Transient heads leave the store after a fixpoint, exactly as
        # insert-time evaluation would have cleaned them up.
        self._cleanup_transients(inserted)

    def _retract_rules(self, rule_names: Set[str],
                       inserted: List[NDTuple]) -> None:
        """Retract every derivation currently supported by ``rule_names``.

        Mirrors :meth:`remove`'s two DRed phases, with stale-support removal
        (instead of a base-tuple deletion) as the seed.  The stale supports
        come straight from the per-rule index, so finding them is O(the
        retracted rules' own supports) — programs with large derived state
        under *other* rules no longer pay a full live-support scan per
        candidate switch.
        """
        if not rule_names:
            return
        journal = self._journal
        stale: List[Tuple[NDTuple, Tuple[str, Tuple[NDTuple, ...]]]] = []
        for name in rule_names:
            stale.extend(self._supports_by_rule.get(name, ()))
        if not stale:
            return
        seeds: List[NDTuple] = []
        seen_seeds: Set[NDTuple] = set()
        for head, key in stale:
            supports = self._supports.get(head)
            if supports is None or key not in supports:
                continue
            supports.discard(key)
            self._rule_index_discard(head, key)
            if journal is not None:
                journal.append(("supdel", head, key))
            if not supports:
                del self._supports[head]
            rule_name, body = key
            dep = (head, rule_name, body)
            for member in body:
                member_deps = self._dependents.get(member)
                if member_deps is not None and dep in member_deps:
                    member_deps.discard(dep)
                    if journal is not None:
                        journal.append(("depdel", member, dep))
                    if not member_deps:
                        del self._dependents[member]
            if head not in seen_seeds:
                seen_seeds.add(head)
                seeds.append(head)

        # Phase 1: over-delete the seeds and their downstream cone.
        overdeleted: List[NDTuple] = []
        overdeleted_set: Set[NDTuple] = set()
        touched_base: Set[NDTuple] = set()
        queue = deque()
        for head in seeds:
            if not self.database.contains(head):
                continue
            if self.database.is_base(head):
                touched_base.add(head)
                continue
            self.database.remove(head)
            overdeleted.append(head)
            overdeleted_set.add(head)
            queue.append(head)
        while queue:
            current = queue.popleft()
            popped = self._dependents.pop(current, None)
            if popped is None:
                continue
            if journal is not None:
                journal.append(("deppop", current, popped))
            for head, rule_name, body in popped:
                supports = self._supports.get(head)
                if supports is not None:
                    key = (rule_name, body)
                    if key in supports:
                        supports.discard(key)
                        self._rule_index_discard(head, key)
                        if journal is not None:
                            journal.append(("supdel", head, key))
                    if not supports:
                        del self._supports[head]
                if head in overdeleted_set or not self.database.contains(head):
                    continue
                if self.database.is_base(head):
                    touched_base.add(head)
                    continue
                self.database.remove(head)
                overdeleted.append(head)
                overdeleted_set.add(head)
                queue.append(head)

        # Phase 2: re-derive members of the cone with a surviving support.
        worklist = [head for head in overdeleted
                    if self._has_valid_support(head)]
        for head in worklist:
            self.database.insert(head, derived=True)
        for head in touched_base:
            if not self._has_valid_support(head):
                self.database.clear_derived_flag(head)
        if worklist:
            self._rederive_fixpoint(worklist, inserted=inserted)

    def _seed_rules(self, rule_names: Set[str],
                    inserted: List[NDTuple]) -> None:
        """Evaluate ``rule_names`` (added/modified rules of the current
        program) against the whole database, then propagate quietly."""
        if not rule_names:
            return
        database = self.database
        seeded: List[NDTuple] = []
        for rule in self.program.rules:
            if rule.name not in rule_names or not rule.body:
                continue
            plan = self._plans_by_name[rule.name]
            # Batch-firing all firings from atom 0 covers the whole rule:
            # the join walks the remaining atoms through the indexes.  Heads
            # landing in the rule's own body tables re-fire in the delta
            # rounds of the trailing _rederive_fixpoint.
            batch = list(database.table(plan.body_tables[0]))
            if not batch:
                continue
            firings = plan.fire(0, batch, database, self.functions, False)
            self._apply_quiet_firings(plan, firings, seeded)
        if seeded:
            inserted.extend(seeded)
            self._rederive_fixpoint(seeded, inserted=inserted)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def tuples(self, table) -> Set[NDTuple]:
        return self.database.tuples(table)

    def contains(self, tup: NDTuple) -> bool:
        return self.database.contains(tup)

    def derivations_of(self, tup: NDTuple) -> List[DerivationRecord]:
        """All historical derivations of ``tup`` (possibly via several rules)."""
        return list(self._derivations_by_head.get(tup, ()))

    def event_log(self) -> List[EngineEvent]:
        return list(self.events)

    # ------------------------------------------------------------------
    # Fixpoint evaluation
    # ------------------------------------------------------------------

    def _fixpoint(self, delta: Sequence[NDTuple],
                  fired: Optional[List[Tuple[NDTuple, Tuple[NDTuple, ...]]]] = None
                  ) -> List[NDTuple]:
        worklist = deque(delta)
        newly_derived: List[NDTuple] = []
        supports = self._supports
        dependents = self._dependents
        database = self.database
        journal = self._journal
        functions = self.functions
        recording = self.record_events
        plans_map = self._plans_by_body_table
        limit = self.max_derivations
        while worklist:
            trigger = worklist.popleft()
            entries = plans_map.get(trigger.table)
            if not entries:
                continue
            batch = (trigger,)
            for plan, position in entries:
                if plan.order_exact[position]:
                    firings = plan.fire(position, batch, database, functions,
                                        recording)
                else:
                    # Eager batch firing of a rule whose head feeds a body
                    # table at join depth >= 2 can reorder firings relative
                    # to the historical lazy join; fall back to the
                    # interpreter so the event log stays bit-identical.
                    firings = self._interp_firings(plan, position, trigger)
                for head, body, bindings in firings:
                    key = (plan.name, body)
                    head_supports = supports.setdefault(head, set())
                    if key in head_supports:
                        # Exact duplicate firing: nothing new to derive.
                        continue
                    head_supports.add(key)
                    self._rule_index_add(head, key)
                    if fired is not None:
                        fired.append((head, body))
                    entry = (head, plan.name, body)
                    if journal is None:
                        for member in body:
                            dependents.setdefault(member, set()).add(entry)
                    else:
                        journal.append(("supadd", head, key))
                        for member in body:
                            member_deps = dependents.setdefault(member, set())
                            if entry not in member_deps:
                                member_deps.add(entry)
                                journal.append(("depadd", member, entry))
                    is_new = not database.contains(head)
                    if recording:
                        record = self._record_derivation(plan.rule, head,
                                                         body, bindings)
                        if record is None and is_new:
                            # Re-derivation of a previously deleted tuple:
                            # the historical record already exists, but the
                            # tuple reappears now.
                            self._log(APPEAR, head,
                                      node=self._head_node(plan.rule, head),
                                      rule=plan.name)
                    else:
                        self._quiet_firings += 1
                        if self._quiet_firings > limit:
                            raise EvaluationError(
                                f"derivation limit of {limit} exceeded; "
                                "the program is probably not terminating")
                    database.insert(head, derived=True)
                    if is_new:
                        newly_derived.append(head)
                        worklist.append(head)
        self.fixpoint_count += 1
        self.tuples_derived_total += len(newly_derived)
        return newly_derived

    def _traced_fixpoint(self, tup: NDTuple) -> List[NDTuple]:
        """One insert-triggered fixpoint under an ``engine.fixpoint`` span.

        Only reached when a :mod:`repro.obs` tracer is attached
        (``trace_fixpoints``); the plain path never enters here.
        """
        with self.tracer.span("engine.fixpoint", table=tup.table) as span:
            derived = self._fixpoint([tup])
            span.set("derived", len(derived))
        return derived

    def telemetry_counters(self) -> Dict[str, int]:
        """Monotone work counters sampled by the observability layer.

        ``rules_fired`` unifies the quiet counter with the recorded
        derivation history so the number means the same thing for quiet
        and recording engines.  Cheap enough to sample per replay slice.
        """
        return {
            "engine_fixpoints": self.fixpoint_count,
            "tuples_derived": self.tuples_derived_total,
            "rules_fired": self._quiet_firings + len(self.derivations),
            "index_materializations": self.database.index_materializations,
        }

    def _interp_firings(self, plan: CompiledRule, position: int,
                        trigger: NDTuple):
        """Order-exact fallback: run one trigger through the interpreted
        plan (lazily built and cached on the compiled plan)."""
        interp = plan.interp
        if interp is None:
            interp = plan.interp = _RulePlan(plan.rule)
        return list(self._fire_rule(interp, position, trigger))

    def _rederive_fixpoint(self, delta: Sequence[NDTuple],
                           inserted: Optional[List[NDTuple]] = None):
        """Quiet fixpoint used by the deletion re-derivation phase.

        Re-registers supports and re-inserts tuples without appending to the
        event log or the derivation history (matching the silent recompute of
        the reference evaluator).  ``inserted`` (when given) accumulates the
        tuples newly added to the database, so program-delta callers can
        clean up transient heads afterwards.
        """
        database = self.database
        functions = self.functions
        plans_map = self._plans_by_body_table
        frontier = list(delta)
        while frontier:
            # Semi-naive delta round: batch the frontier per table and fire
            # each consuming plan once over the whole batch.
            by_table: Dict[str, List[NDTuple]] = {}
            for tup in frontier:
                by_table.setdefault(tup.table, []).append(tup)
            frontier = []
            for table, batch in by_table.items():
                for plan, position in plans_map.get(table, ()):
                    firings = plan.fire(position, batch, database, functions,
                                        False)
                    self._apply_quiet_firings(plan, firings, frontier,
                                              inserted=inserted)

    def _apply_quiet_firings(self, plan: CompiledRule, firings,
                             fresh_out: List[NDTuple],
                             inserted: Optional[List[NDTuple]] = None) -> None:
        """Register a batch of quiet firings: supports, dependents, journal,
        derived flags.  Heads newly added to the database are appended to
        ``fresh_out`` (the caller's next frontier) and, when given, to
        ``inserted`` (for transient cleanup by program-delta callers)."""
        if not firings:
            return
        supports = self._supports
        dependents = self._dependents
        database = self.database
        journal = self._journal
        name = plan.name
        for head, body, _bindings in firings:
            key = (name, body)
            head_supports = supports.setdefault(head, set())
            fresh_support = key not in head_supports
            if fresh_support:
                head_supports.add(key)
                self._rule_index_add(head, key)
                entry = (head, name, body)
                if journal is None:
                    for member in body:
                        dependents.setdefault(member, set()).add(entry)
                else:
                    journal.append(("supadd", head, key))
                    for member in body:
                        member_deps = dependents.setdefault(member, set())
                        if entry not in member_deps:
                            member_deps.add(entry)
                            journal.append(("depadd", member, entry))
            if not database.contains(head):
                database.insert(head, derived=True)
                if inserted is not None:
                    inserted.append(head)
                fresh_out.append(head)
            elif fresh_support:
                database.insert(head, derived=True)

    def _rule_index_add(self, head: NDTuple,
                        key: Tuple[str, Tuple[NDTuple, ...]]) -> None:
        """Mirror a support addition into the per-rule index."""
        self._supports_by_rule.setdefault(key[0], set()).add((head, key))

    def _rule_index_discard(self, head: NDTuple,
                            key: Tuple[str, Tuple[NDTuple, ...]]) -> None:
        """Mirror a support removal into the per-rule index."""
        entries = self._supports_by_rule.get(key[0])
        if entries is not None:
            entries.discard((head, key))
            if not entries:
                del self._supports_by_rule[key[0]]

    def _on_evicted(self, tup: NDTuple):
        """A primary-key update evicted ``tup``: forget its supports so the
        same firing can re-derive it once the key is free again."""
        popped = self._supports.pop(tup, None)
        if popped is not None:
            for key in popped:
                self._rule_index_discard(tup, key)
            if self._journal is not None:
                self._journal.append(("suppop", tup, popped))

    def _in_keyed_table(self, tup: NDTuple) -> bool:
        schema = self.database.schema(tup.table)
        return schema is not None and bool(schema.primary_key)

    def _recompute_and_rebuild_supports(self) -> List[NDTuple]:
        """Full recompute of the derived set (post-``set_program`` fallback).

        Derived flags are cleared (base flags are untouched — removing one
        base tuple never evicts another), the quiet fixpoint re-derives
        everything reachable from the remaining base tuples under the current
        program, and the support graph is rebuilt from scratch.
        """
        before = self.database.derived_tuples()
        for tup in before:
            self.database.clear_derived_flag(tup)
        if self._journal is not None:
            self._journal.append(("supswap", self._supports, self._dependents,
                                  self._supports_by_rule))
            self._supports = {}
            self._dependents = {}
            self._supports_by_rule = {}
        else:
            self._supports.clear()
            self._dependents.clear()
            self._supports_by_rule.clear()
        self._bulk_rederive()
        self._incremental_ready = True
        disappeared = []
        for tup in before:
            if not self.database.contains(tup):
                schema = self.database.schema(tup.table)
                self._log(UNDERIVE, tup, node=tup.location(schema))
                self._log(DISAPPEAR, tup, node=tup.location(schema))
                disappeared.append(tup)
        return disappeared

    def _bulk_rederive(self) -> None:
        """Stratified semi-naive re-derivation of the full derived set.

        Evaluates SCC group by SCC group in the dependency order provided by
        :meth:`repro.analysis.depgraph.DependencyGraph.evaluation_groups`:
        each group's rules are seeded with one whole-table batch fire from
        atom 0 (covering every firing among already-present tuples), then
        iterated semi-naively — only the group's own fresh heads re-fire,
        and only through the group's own rules; later groups see the
        finished result when they seed.  Falls back to the un-stratified
        delta fixpoint when the program cannot be scheduled (duplicate rule
        names).
        """
        schedule = schedule_for(self.program)
        if schedule is None:
            self._rederive_fixpoint(list(self.database.base_tuples()))
            return
        database = self.database
        functions = self.functions
        plans_by_name = self._plans_by_name
        plans_map = self._plans_by_body_table
        for tables, rule_names, _stratum in schedule.groups:
            frontier: List[NDTuple] = []
            for name in rule_names:
                plan = plans_by_name.get(name)
                if plan is None or not plan.body_tables:
                    continue
                batch = list(database.table(plan.body_tables[0]))
                if not batch:
                    continue
                firings = plan.fire(0, batch, database, functions, False)
                self._apply_quiet_firings(plan, firings, frontier)
            while frontier:
                by_table: Dict[str, List[NDTuple]] = {}
                for tup in frontier:
                    by_table.setdefault(tup.table, []).append(tup)
                frontier = []
                for table, batch in by_table.items():
                    for plan, position in plans_map.get(table, ()):
                        if plan.head_table not in tables:
                            # Consumers outside the group pick the head up
                            # when their own group seeds.
                            continue
                        firings = plan.fire(position, batch, database,
                                            functions, False)
                        self._apply_quiet_firings(plan, firings, frontier)

    def _has_valid_support(self, head: NDTuple) -> bool:
        """Does any registered support of ``head`` still hold entirely?"""
        database = self.database
        for rule_name, body in self._supports.get(head, ()):
            if rule_name not in self._rule_names:
                continue
            if all(database.contains(member) for member in body):
                return True
        return False

    def _record_derivation(self, rule: Rule, head: NDTuple,
                           body: Tuple[NDTuple, ...], bindings):
        if len(self.derivations) >= self.max_derivations:
            raise EvaluationError(
                f"derivation limit of {self.max_derivations} exceeded; "
                "the program is probably not terminating")
        # Avoid recording the exact same firing twice (O(1) set lookup).
        recorded = self._recorded_bodies.setdefault((rule.name, head), set())
        if body in recorded:
            return None
        recorded.add(body)
        if not isinstance(bindings, tuple):
            # Interpreted firings carry a dict; compiled plans already emit
            # the canonical name-sorted tuple.
            bindings = tuple(sorted(bindings.items(), key=lambda kv: kv[0]))
        record = DerivationRecord(
            rule=rule.name,
            head=head,
            body=body,
            bindings=bindings,
            time=self.clock + 1,
            node=self._head_node(rule, head),
        )
        self.derivations.append(record)
        self._derivations_by_head[head].append(record)
        head_node = record.node
        trigger_node = body[0].location(self.database.schema(body[0].table)) if body else None
        if body and head_node is not None and trigger_node is not None and head_node != trigger_node:
            self._log(SEND, head, node=trigger_node, rule=rule.name,
                      source=trigger_node, destination=head_node)
            self._log(RECEIVE, head, node=head_node, rule=rule.name,
                      source=trigger_node, destination=head_node)
        self._log(DERIVE, head, node=head_node, rule=rule.name, derivation=record)
        if not self.database.contains(head):
            self._log(APPEAR, head, node=head_node, rule=rule.name)
        return record

    def _head_node(self, rule: Rule, head: NDTuple):
        schema = self.database.schema(head.table)
        return head.location(schema)

    # ------------------------------------------------------------------
    # Rule firing
    # ------------------------------------------------------------------

    def _fire_rule(self, plan: _RulePlan, trigger_position: int, trigger: NDTuple):
        """Yield (head, body_tuples, bindings) for every firing of the rule
        in which the body atom at ``trigger_position`` matches ``trigger``."""
        atom_plan = plan.atom_plans[trigger_position]
        values = trigger.values
        if atom_plan.arity != len(values):
            return
        for column, value in atom_plan.consts:
            if values[column] != value:
                return
        # Cheap single-variable selection guards on the raw trigger values.
        checked = 0
        for column, op, value, var_left, bit in plan.guards[trigger_position]:
            bound = values[column]
            if op == "==":
                # Inline wildcard-aware equality (the dominant guard shape).
                if bound != value and bound != WILDCARD and value != WILDCARD:
                    return
            else:
                try:
                    ok = _compare(op, bound, value) if var_left else _compare(op, value, bound)
                except EvaluationError:
                    # Defer to _finish_rule so evaluation errors only surface
                    # for joins that actually complete.
                    continue
                if not ok:
                    return
            checked |= bit
        initial = self._match_plan(atom_plan, trigger, _EMPTY_BINDINGS)
        if initial is None:
            return
        checked = self._push_selections(plan, initial, checked)
        if checked is None:
            return
        yield from self._join_remaining(plan, trigger_position, trigger,
                                        initial, checked, 0, [])

    def _join_remaining(self, plan, trigger_position, trigger, bindings,
                        checked, atom_index, chosen):
        if atom_index == len(plan.atom_plans):
            result = self._finish_rule(plan, bindings, checked)
            if result is not None:
                head, final_bindings = result
                body = tuple(self._ordered_body(plan, trigger_position, trigger, chosen))
                yield head, body, final_bindings
            return
        if atom_index == trigger_position:
            yield from self._join_remaining(
                plan, trigger_position, trigger, bindings, checked,
                atom_index + 1, chosen)
            return
        atom_plan = plan.atom_plans[atom_index]
        # Equality constraints from constants and already-bound variables
        # select the smallest index bucket to probe.
        constraints = list(atom_plan.consts)
        for column, name in atom_plan.var_columns:
            if name in bindings:
                constraints.append((column, bindings[name]))
        candidates = self.database.candidates(atom_plan.table, constraints)
        if atom_plan.snapshot:
            candidates = tuple(candidates)
        for candidate in candidates:
            extended = self._match_plan(atom_plan, candidate, bindings)
            if extended is None:
                continue
            new_checked = self._push_selections(plan, extended, checked)
            if new_checked is None:
                continue
            yield from self._join_remaining(
                plan, trigger_position, trigger, extended, new_checked,
                atom_index + 1, chosen + [(atom_index, candidate)])

    def _match_plan(self, atom_plan: _AtomPlan, tup: NDTuple,
                    bindings: Dict[str, object]) -> Optional[Dict[str, object]]:
        """Match a body atom against a concrete tuple, extending bindings."""
        values = tup.values
        if atom_plan.arity != len(values):
            return None
        for column, value in atom_plan.consts:
            if values[column] != value:
                return None
        new = dict(bindings)
        for kind, column, payload in atom_plan.steps:
            value = values[column]
            if kind == "v":
                existing = new.get(payload, _MISSING)
                if existing is _MISSING:
                    new[payload] = value
                elif existing != value:
                    return None
            else:
                # Complex expression argument: evaluate if fully bound.
                try:
                    computed = evaluate(payload, new, self.functions,
                                        rule_name="<atom-arg>")
                except EvaluationError:
                    return None
                if computed != value:
                    return None
        return new

    def _push_selections(self, plan: _RulePlan, bindings: Dict[str, object],
                         checked: int) -> Optional[int]:
        """Evaluate every not-yet-checked selection whose variables are bound.

        Returns the updated bitmask of checked selections, or ``None`` when a
        selection is definitely false (the join branch is pruned).  Selections
        that raise are deferred to :meth:`_finish_rule` so evaluation errors
        surface only for joins that actually complete.
        """
        selections = plan.rule.selections
        for index, vars_ in enumerate(plan.selection_vars):
            bit = 1 << index
            if checked & bit or not plan.pushable[index]:
                continue
            if vars_ <= bindings.keys():
                try:
                    ok = evaluate(selections[index].expr, bindings,
                                  self.functions, plan.rule.name)
                except EvaluationError:
                    continue
                if not ok:
                    return None
                checked |= bit
        return checked

    def _ordered_body(self, plan, trigger_position, trigger, chosen):
        by_index = {trigger_position: trigger}
        by_index.update(dict(chosen))
        return [by_index[i] for i in range(len(plan.atom_plans))]

    def _match_atom(self, atom: Atom, tup: NDTuple, bindings: Bindings) -> Optional[Bindings]:
        """Match a body atom against a concrete tuple (compatibility helper
        for the provenance layer, which probes historical tuples)."""
        if atom.table != tup.table:
            return None
        cached = self._adhoc_plans.get(id(atom))
        if cached is None or cached[0] is not atom:
            cached = (atom, _AtomPlan(atom, ""))
            self._adhoc_plans[id(atom)] = cached
        matched = self._match_plan(cached[1], tup, dict(bindings))
        if matched is None:
            return None
        return Bindings(matched)

    def _finish_rule(self, plan: _RulePlan, bindings: Dict[str, object],
                     checked: int):
        """Evaluate assignments and remaining selections, build the head."""
        rule = plan.rule
        env = dict(bindings)
        pending_assignments = list(range(len(rule.assignments)))
        pending_selections = [i for i in range(len(rule.selections))
                              if not checked >> i & 1]
        progress = True
        while progress and (pending_assignments or pending_selections):
            progress = False
            for index in list(pending_assignments):
                if plan.assignment_vars[index] <= env.keys():
                    assignment = rule.assignments[index]
                    env[assignment.var] = evaluate(
                        assignment.expr, env, self.functions, rule.name)
                    pending_assignments.remove(index)
                    progress = True
            for index in list(pending_selections):
                if plan.selection_vars[index] <= env.keys():
                    if not evaluate(rule.selections[index].expr, env,
                                    self.functions, rule.name):
                        return None
                    pending_selections.remove(index)
                    progress = True
        if pending_selections or pending_assignments:
            # Unresolvable variables: the rule cannot fire under this binding.
            return None
        head_values = []
        for kind, payload in plan.head_steps:
            if kind == "v":
                if payload not in env:
                    return None
                head_values.append(env[payload])
            else:
                head_values.append(evaluate(payload, env, self.functions, rule.name))
        return NDTuple(rule.head.table, tuple(head_values)), env

    # ------------------------------------------------------------------
    # Transient-tuple handling
    # ------------------------------------------------------------------

    def _cleanup_transients(self, candidates: Iterable[NDTuple]):
        transients = self.database.transient_tables
        if not transients:
            return
        for tup in candidates:
            if tup.table in transients:
                self.database.remove(tup)


_MISSING = object()
_EMPTY_BINDINGS: Dict[str, object] = {}


def evaluate_program(program: Program, base_tuples: Iterable[NDTuple],
                     schemas: Optional[Dict[str, TableSchema]] = None) -> Engine:
    """Convenience helper: build an engine, insert all base tuples, return it."""
    engine = Engine(program, schemas=schemas)
    engine.insert_many(list(base_tuples))
    return engine
