"""Compiled rule plans, the shared plan cache, and program schedules.

This module is the compilation layer of the engine core: each NDlog rule is
translated once into specialized Python *fire functions* (one per trigger
position) that process a whole batch of trigger tuples per call, probing the
database's ``(column, value)`` hash indexes exactly like the interpreted
join did.  Compilation is keyed by the rule's **structural digest** (the
canonical ``to_ndlog()`` text), so the thousands of near-identical candidate
programs of a repair corpus share almost all compiled plans through the
process-global :data:`PLAN_CACHE` — switching candidates compiles only the
edited rules, and cold-building a candidate engine compiles nothing that any
earlier program already used.

Semantics are bit-compatible with the interpreted evaluator
(:meth:`repro.ndlog.engine.Engine._fire_rule`):

* constant arguments and variable joins use **strict** equality; wildcard
  values are ordinary values during matching,
* selection predicates are wildcard-aware (``==``/``!=`` via
  :func:`repro.ndlog.expr.values_equal` semantics, ordered comparisons fail
  against wildcards) and are pushed down to the first join depth where their
  variables are bound,
* a pushed selection that raises :class:`EvaluationError` is *deferred*: the
  branch survives and the selection is re-evaluated in the finish stage,
  where the error propagates only for joins that actually complete,
* assignments and remaining selections run in the finish stage in the same
  relaxation (round-robin by index) order as the interpreter, and the head
  is built last,
* candidate enumeration probes :meth:`Database.candidates` with constants
  first, then bound variable columns in first-occurrence order — the same
  constraint order, hence the same bucket choice, as the interpreter.

``fire()`` is *eager*: it returns the complete firing list for a batch
before the engine applies any mutation.  For a rule whose head feeds one of
its own body tables at join depth >= 2, eagerness can reorder (never lose)
firings relative to the lazy interpreter; :attr:`CompiledRule.order_exact`
flags the positions where eager evaluation is provably order-identical, and
the engine keeps the interpreter for the (rare) inexact positions on the
event-visible path.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from .ast import (ARITHMETIC_OPERATORS, COMPARISON_OPERATORS, Atom, BinOp,
                  Const, Expression, FuncCall, Program, Rule, Var, WILDCARD)
from .errors import EvaluationError
from .expr import _arith, _compare
from .tuples import NDTuple


class _Unresolvable(Exception):
    """A variable is statically never bound on this code path."""

    def __init__(self, name):
        self.name = name
        super().__init__(name)


def rule_digest(rule: Rule) -> str:
    """Structural digest of a rule: sha1 of its canonical NDlog text.

    ``to_ndlog()`` renders the full structure (name, head, body atoms,
    selections, assignments) and round-trips through the parser, so equal
    digests imply structurally equal rules.
    """
    return hashlib.sha1(rule.to_ndlog().encode("utf-8")).hexdigest()


def program_digest(program: Program) -> str:
    """Digest of a program's rule sequence (order-sensitive)."""
    sha = hashlib.sha1()
    for rule in program.rules:
        sha.update(rule_digest(rule).encode("ascii"))
        sha.update(b";")
    return sha.hexdigest()


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------


def _lit(value, pool: List) -> str:
    """Literal code for a constant, falling back to the per-rule pool."""
    if value is None or isinstance(value, (bool, int, str)):
        return repr(value)
    pool.append(value)
    return f"_K[{len(pool) - 1}]"


def _emit_expr(expr: Expression, env: Dict[str, str],
               pool: List) -> Tuple[str, bool]:
    """Compile ``expr`` to a Python expression string.

    ``env`` maps NDlog variable names to local slot names; every
    subexpression is emitted exactly once (single evaluation, left-to-right
    — matching :func:`repro.ndlog.expr.evaluate`).  Returns ``(code,
    can_raise)``; raises :class:`_Unresolvable` when the expression reads a
    variable with no slot.
    """
    if isinstance(expr, Const):
        return _lit(expr.value, pool), False
    if isinstance(expr, Var):
        slot = env.get(expr.name)
        if slot is None:
            raise _Unresolvable(expr.name)
        return slot, False
    if isinstance(expr, BinOp):
        left, left_raises = _emit_expr(expr.left, env, pool)
        right, right_raises = _emit_expr(expr.right, env, pool)
        simple = (isinstance(expr.left, (Const, Var))
                  and isinstance(expr.right, (Const, Var)))
        if expr.op == "==" and simple:
            # values_equal: wildcards match anything, otherwise plain ==.
            return f"({left} == _W or {right} == _W or {left} == {right})", \
                False
        if expr.op == "!=" and simple:
            return (f"({left} != _W and {right} != _W "
                    f"and {left} != {right})"), False
        if expr.op in COMPARISON_OPERATORS:
            return f"_cmp({expr.op!r}, {left}, {right})", True
        if expr.op in ARITHMETIC_OPERATORS:
            return f"_ar({expr.op!r}, {left}, {right})", True
        return f"_cmp({expr.op!r}, {left}, {right})", True
    if isinstance(expr, FuncCall):
        args = []
        for arg in expr.args:
            code, _ = _emit_expr(arg, env, pool)
            args.append(code)
        return f"_fn({expr.name!r})({', '.join(args)})", True
    raise EvaluationError(
        f"cannot evaluate expression of type {type(expr).__name__}")


# ---------------------------------------------------------------------------
# Rule compilation
# ---------------------------------------------------------------------------


class _Emitter:
    """Tiny indented source builder."""

    def __init__(self):
        self.lines: List[str] = []

    def w(self, depth: int, text: str):
        self.lines.append("    " * depth + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _atom_layout(atom: Atom):
    """(consts, steps, var_columns) exactly as the interpreter precomputes."""
    consts = []
    steps = []
    var_columns = []
    seen = set()
    for column, arg in enumerate(atom.args):
        if isinstance(arg, Const):
            consts.append((column, arg.value))
        elif isinstance(arg, Var):
            steps.append(("v", column, arg.name))
            if arg.name not in seen:
                seen.add(arg.name)
                var_columns.append((column, arg.name))
        else:
            steps.append(("e", column, arg))
    return consts, steps, var_columns


class CompiledRule:
    """A rule compiled to per-trigger-position batch fire functions."""

    __slots__ = ("rule", "name", "digest", "head_table", "body_tables",
                 "order_exact", "source", "_fires", "interp")

    def __init__(self, rule: Rule):
        for body_atom in rule.body:
            if body_atom.negated:
                raise EvaluationError(
                    f"rule {rule.name!r}: negated atom "
                    f"!{body_atom.table} is not supported by the evaluator")
        self.rule = rule
        self.name = rule.name
        self.digest = rule_digest(rule)
        self.head_table = rule.head.table
        self.body_tables = tuple(atom.table for atom in rule.body)
        #: Lazily attached interpreted plan (engine-side ``_RulePlan``) used
        #: for the order-inexact positions on the event-visible path.
        self.interp = None
        self._compile()

    def fire(self, position: int, triggers, database, functions, record):
        """All firings of the rule with each trigger at ``position``.

        Returns ``[(head, body, bindings_or_None), ...]``; ``bindings`` is a
        name-sorted tuple of ``(var, value)`` pairs when ``record`` is
        truthy, else ``None``.  Eager: the caller applies mutations after.
        """
        return self._fires[position](triggers, database, functions, record)

    # -- compilation -------------------------------------------------------

    def _compile(self):
        rule = self.rule
        atoms = [(atom,) + _atom_layout(atom) for atom in rule.body]
        assigned = {a.var for a in rule.assignments}
        sel_vars = [frozenset(s.variables()) for s in rule.selections]
        pushable = [not (vars_ & assigned) for vars_ in sel_vars]

        # Deterministic slot per body-bound variable (direct Var args only).
        slots: Dict[str, str] = {}
        for _atom, _consts, steps, _vc in atoms:
            for kind, _column, payload in steps:
                if kind == "v" and payload not in slots:
                    slots[payload] = f"_b{len(slots)}"

        pool: List = []
        emitter = _Emitter()
        emitter.w(0, f"# {rule.to_ndlog()}")
        exact = []
        for position in range(len(atoms)):
            exact.append(self._emit_fire(emitter, position, atoms, slots,
                                         assigned, sel_vars, pushable, pool))
        names = ", ".join(f"_fire{p}" for p in range(len(atoms)))
        if len(atoms) == 1:
            names += ","
        emitter.w(0, f"_FIRES = ({names})")
        self.order_exact = tuple(exact)
        self.source = emitter.source()
        namespace = {
            "NDTuple": NDTuple,
            "_cmp": _compare,
            "_ar": _arith,
            "_W": WILDCARD,
            "EvaluationError": EvaluationError,
            "_K": tuple(pool),
        }
        exec(compile(self.source, f"<plan:{rule.name}>", "exec"), namespace)
        self._fires = namespace["_FIRES"]

    def _emit_fire(self, emitter, position, atoms, slots, assigned,
                   sel_vars, pushable, pool) -> bool:
        rule = self.rule
        head = rule.head
        join_order = [i for i in range(len(atoms)) if i != position]
        # Eager firing is order-identical to the lazy interpreter unless a
        # snapshot atom (head feeds its own body table) is re-enumerated per
        # outer candidate, i.e. sits at join depth >= 2.
        order_exact = not any(atoms[i][0].table == head.table
                              for i in join_order[1:])
        try:
            body_lines = _Emitter()
            self._emit_fire_body(body_lines, position, atoms, slots,
                                 assigned, sel_vars, pushable, pool,
                                 join_order)
        except _Unresolvable:
            # A variable needed by an atom argument, selection, assignment
            # or the head is never bound on this path: the rule can never
            # fire from this trigger position (the interpreter prunes the
            # same branches via UnboundVariableError / pending leftovers).
            emitter.w(0, f"def _fire{position}(_triggers, _db, _functions, "
                         f"_record):")
            emitter.w(1, "return []")
            return order_exact
        emitter.w(0, f"def _fire{position}(_triggers, _db, _functions, "
                     f"_record):")
        emitter.lines.extend(body_lines.lines)
        return order_exact

    def _emit_fire_body(self, out, position, atoms, slots, assigned,
                        sel_vars, pushable, pool, join_order):
        rule = self.rule
        selections = rule.selections
        out.w(1, "_out = []")
        out.w(1, "_ap = _out.append")
        out.w(1, "_cand = _db.candidates")
        out.w(1, "_fn = _functions.lookup")
        out.w(1, f"for _a{position} in _triggers:")

        env: Dict[str, str] = {}
        emitted_sel = set()
        deferred_flags = set()
        depth = 2

        def emit_selections(depth):
            # Pushed-down selections, index order, at the first depth where
            # their variables are bound (matches _push_selections).
            for index, vars_ in enumerate(sel_vars):
                if index in emitted_sel or not pushable[index]:
                    continue
                if not vars_ <= env.keys():
                    continue
                emitted_sel.add(index)
                code, can_raise = _emit_expr(selections[index].expr, env,
                                             pool)
                if can_raise:
                    deferred_flags.add(index)
                    out.w(depth, "try:")
                    out.w(depth + 1, f"if not {code}:")
                    out.w(depth + 2, "continue")
                    out.w(depth + 1, f"_d{index} = False")
                    out.w(depth, "except EvaluationError:")
                    out.w(depth + 1, f"_d{index} = True")
                else:
                    out.w(depth, f"if not {code}:")
                    out.w(depth + 1, "continue")

        def emit_match(atom_index, depth):
            atom, consts, steps, _vc = atoms[atom_index]
            out.w(depth, f"_v{atom_index} = _a{atom_index}.values")
            out.w(depth, f"if len(_v{atom_index}) != {len(atom.args)}:")
            out.w(depth + 1, "continue")
            for column, value in consts:
                out.w(depth, f"if _v{atom_index}[{column}] != "
                             f"{_lit(value, pool)}:")
                out.w(depth + 1, "continue")
            for kind, column, payload in steps:
                if kind == "v":
                    slot = slots[payload]
                    if payload in env:
                        out.w(depth, f"if {slot} != _v{atom_index}[{column}]:")
                        out.w(depth + 1, "continue")
                    else:
                        out.w(depth, f"{slot} = _v{atom_index}[{column}]")
                        env[payload] = slot
                else:
                    # Expression argument: evaluate under the bindings so
                    # far; an evaluation error is a non-match.
                    code, _ = _emit_expr(payload, env, pool)
                    temp = f"_e{atom_index}_{column}"
                    out.w(depth, "try:")
                    out.w(depth + 1, f"{temp} = {code}")
                    out.w(depth, "except EvaluationError:")
                    out.w(depth + 1, "continue")
                    out.w(depth, f"if {temp} != _v{atom_index}[{column}]:")
                    out.w(depth + 1, "continue")

        emit_match(position, depth)
        emit_selections(depth)
        for atom_index in join_order:
            atom, consts, _steps, var_columns = atoms[atom_index]
            constraints = [f"({column}, {_lit(value, pool)})"
                           for column, value in consts]
            constraints += [f"({column}, {env[name]})"
                            for column, name in var_columns if name in env]
            literal = "(" + ", ".join(constraints) + \
                (",)" if len(constraints) == 1 else ")")
            probe = f"_cand({atom.table!r}, {literal})"
            if atom.table == rule.head.table:
                probe = f"tuple({probe})"
            out.w(depth, f"for _a{atom_index} in {probe}:")
            depth += 1
            emit_match(atom_index, depth)
            emit_selections(depth)

        # ---- finish stage: assignments + remaining selections, in the
        # interpreter's relaxation order, then the head. ----
        known = set(env)
        assignment_vars = [frozenset(a.expr.variables())
                           for a in rule.assignments]
        pending_a = list(range(len(rule.assignments)))
        pending_s = [i for i in range(len(selections))
                     if not pushable[i] or i in deferred_flags]
        # Pushable selections whose variables never bind make the rule
        # unfireable from any position (the interpreter leaves them pending
        # forever and returns None).
        pending_s += [i for i in range(len(selections))
                      if pushable[i] and i not in emitted_sel]
        pending_s.sort()
        fresh = 0
        progress = True
        while progress and (pending_a or pending_s):
            progress = False
            for index in list(pending_a):
                if assignment_vars[index] <= known:
                    assignment = rule.assignments[index]
                    code, _ = _emit_expr(assignment.expr, env, pool)
                    slot = f"_f{fresh}"
                    fresh += 1
                    out.w(depth, f"{slot} = {code}")
                    env[assignment.var] = slot
                    known.add(assignment.var)
                    pending_a.remove(index)
                    progress = True
            for index in list(pending_s):
                if sel_vars[index] <= known:
                    code, _ = _emit_expr(selections[index].expr, env, pool)
                    if index in deferred_flags:
                        out.w(depth, f"if _d{index} and not ({code}):")
                    else:
                        out.w(depth, f"if not {code}:")
                    out.w(depth + 1, "continue")
                    pending_s.remove(index)
                    progress = True
        if pending_a or pending_s:
            raise _Unresolvable("<pending>")

        head_values = []
        for arg in rule.head.args:
            if isinstance(arg, Var):
                slot = env.get(arg.name)
                if slot is None:
                    raise _Unresolvable(arg.name)
                head_values.append(slot)
            else:
                code, _ = _emit_expr(arg, env, pool)
                head_values.append(code)
        head_literal = "(" + ", ".join(head_values) + \
            (",)" if len(head_values) == 1 else ")")
        out.w(depth, f"_h = NDTuple({rule.head.table!r}, {head_literal})")
        body_vars = ", ".join(f"_a{i}" for i in range(len(atoms)))
        if len(atoms) == 1:
            body_vars += ","
        pairs = "".join(f"({name!r}, {env[name]}), "
                        for name in sorted(env))
        out.w(depth, f"_ap((_h, ({body_vars}), "
                     f"(({pairs})) if _record else None))")
        out.w(1, "return _out")


# ---------------------------------------------------------------------------
# Shared plan cache
# ---------------------------------------------------------------------------


class PlanCache:
    """Process-global LRU of compiled rule plans, keyed by structural digest.

    Plans are engine-stateless (the database, function registry and
    record flag are call arguments), so one cache serves every engine in
    the process — across the candidate corpus of one backtest and across
    jobs inside a distributed worker's ``RuntimeCache``.
    """

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._plans: "OrderedDict[str, CompiledRule]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, rule: Rule) -> CompiledRule:
        digest = rule_digest(rule)
        plan = self._plans.get(digest)
        if plan is not None:
            self.hits += 1
            self._plans.move_to_end(digest)
            return plan
        self.misses += 1
        plan = CompiledRule(rule)
        self._plans[digest] = plan
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
        return plan

    def __len__(self):
        return len(self._plans)

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "size": len(self._plans), "capacity": self.capacity}

    def clear(self):
        self._plans.clear()
        self.hits = 0
        self.misses = 0


#: The process-global plan cache (see :class:`PlanCache`).
PLAN_CACHE = PlanCache()


def plan_cache_stats() -> Dict[str, int]:
    """Stats of the process-global plan cache (hits/misses/size)."""
    return PLAN_CACHE.stats()


# ---------------------------------------------------------------------------
# Program schedules (stratified semi-naive bulk evaluation)
# ---------------------------------------------------------------------------


class ProgramSchedule:
    """Stratum-ordered SCC groups of a program, for bulk re-evaluation.

    ``groups`` is a tuple of ``(tables, rule_names, stratum)`` in evaluation
    order: dependencies first (SCC condensation topological order), strata
    ascending.  ``rule_names`` are the program's rules whose head lies in
    the group, in program order.
    """

    __slots__ = ("groups", "digest")

    def __init__(self, groups, digest):
        self.groups = groups
        self.digest = digest


_SCHEDULE_CACHE: "OrderedDict[str, Optional[ProgramSchedule]]" = OrderedDict()
_SCHEDULE_CACHE_CAPACITY = 256


def schedule_for(program: Program) -> Optional[ProgramSchedule]:
    """Evaluation schedule for ``program`` (cached by program digest).

    Returns ``None`` when the program's rule names are ambiguous (duplicate
    names make per-group rule resolution unsafe); unstratifiable programs
    still get a schedule in plain SCC topological order (stratum 0), which
    is sufficient for the positive-rule bulk evaluation the engine runs.
    """
    digest = program_digest(program)
    if digest in _SCHEDULE_CACHE:
        _SCHEDULE_CACHE.move_to_end(digest)
        return _SCHEDULE_CACHE[digest]
    from ..analysis.depgraph import DependencyGraph

    schedule: Optional[ProgramSchedule]
    names = [rule.name for rule in program.rules]
    if len(set(names)) != len(names):
        schedule = None
    else:
        graph = DependencyGraph(program)
        groups = []
        for tables, stratum in graph.evaluation_groups():
            rule_names = tuple(rule.name for rule in program.rules
                               if rule.head.table in tables)
            groups.append((tables, rule_names, stratum))
        schedule = ProgramSchedule(tuple(groups), digest)
    _SCHEDULE_CACHE[digest] = schedule
    while len(_SCHEDULE_CACHE) > _SCHEDULE_CACHE_CAPACITY:
        _SCHEDULE_CACHE.popitem(last=False)
    return schedule
