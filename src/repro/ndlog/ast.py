"""Abstract syntax tree for NDlog / µDlog programs.

The grammar follows Section 2.1 and Figure 3 of the paper.  A program is a
list of rules; each rule has a head atom, body atoms (joined tables),
selection predicates (comparisons) and assignments.  Location specifiers
(``@X``) mark the column of an atom that names the node on which the tuple
resides.

The AST is deliberately plain: every node supports ``==``, hashing, a
``clone()`` deep copy, and a ``to_ndlog()`` pretty printer that round-trips
through :mod:`repro.ndlog.parser`.  Repairs (see :mod:`repro.repair`) operate
by cloning and editing this AST.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union


#: Sentinel used for wildcard values (the ``*`` in the paper, e.g. Q5's
#: ``Sip' := *`` meaning "match any source IP").
WILDCARD = "*"

#: Comparison operators allowed in selection predicates (Figure 3).
COMPARISON_OPERATORS = ("==", "!=", "<", ">", "<=", ">=")

#: Arithmetic operators allowed inside expressions.
ARITHMETIC_OPERATORS = ("+", "-", "*", "/", "%")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression:
    """Base class for expressions appearing in selections and assignments."""

    def variables(self):
        """Return the set of variable names referenced by this expression."""
        return set()

    def clone(self):
        raise NotImplementedError

    def to_ndlog(self):
        raise NotImplementedError

    def __str__(self):
        return self.to_ndlog()


@dataclass(frozen=True)
class Const(Expression):
    """A literal constant (integer, string or the wildcard ``*``)."""

    value: Union[int, str]

    def clone(self):
        return Const(self.value)

    def to_ndlog(self):
        if self.value == WILDCARD:
            return "*"
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


@dataclass(frozen=True)
class Var(Expression):
    """A variable reference (capitalised identifier in NDlog)."""

    name: str

    def variables(self):
        return {self.name}

    def clone(self):
        return Var(self.name)

    def to_ndlog(self):
        return self.name


@dataclass(frozen=True)
class BinOp(Expression):
    """A binary operation, either arithmetic or a comparison."""

    op: str
    left: Expression
    right: Expression

    def variables(self):
        return self.left.variables() | self.right.variables()

    def clone(self):
        return BinOp(self.op, self.left.clone(), self.right.clone())

    def is_comparison(self):
        return self.op in COMPARISON_OPERATORS

    def to_ndlog(self):
        return f"{self.left.to_ndlog()} {self.op} {self.right.to_ndlog()}"


@dataclass(frozen=True)
class FuncCall(Expression):
    """A call to a built-in function such as ``f_unique()`` or ``f_match()``."""

    name: str
    args: Tuple[Expression, ...] = ()

    def variables(self):
        out = set()
        for arg in self.args:
            out |= arg.variables()
        return out

    def clone(self):
        return FuncCall(self.name, tuple(a.clone() for a in self.args))

    def to_ndlog(self):
        rendered = ", ".join(a.to_ndlog() for a in self.args)
        return f"{self.name}({rendered})"


# ---------------------------------------------------------------------------
# Atoms, selections, assignments
# ---------------------------------------------------------------------------


@dataclass
class Atom:
    """A predicate occurrence such as ``FlowTable(@Swi, Hdr, Prt)``.

    Attributes:
        table: name of the table.
        args: expressions filling the columns (usually ``Var`` or ``Const``).
        location_index: index of the argument carrying the ``@`` location
            specifier, or ``None`` if the atom has no location.
        negated: ``True`` for a negated body atom (``!Table(...)``).  The
            reference engine does not evaluate negation; the static analyzer
            (:mod:`repro.analysis`) uses the flag for stratification checks.
        line / column: 1-based source position of the atom's table name, when
            the atom came from the parser.  Excluded from equality/repr so
            positional metadata never influences program diffing or
            candidate signatures.
    """

    table: str
    args: List[Expression]
    location_index: Optional[int] = 0
    negated: bool = False
    line: Optional[int] = field(default=None, compare=False, repr=False)
    column: Optional[int] = field(default=None, compare=False, repr=False)

    def variables(self):
        out = set()
        for arg in self.args:
            out |= arg.variables()
        return out

    @property
    def arity(self):
        return len(self.args)

    @property
    def location(self):
        if self.location_index is None:
            return None
        return self.args[self.location_index]

    def clone(self):
        return Atom(self.table, [a.clone() for a in self.args],
                    self.location_index, negated=self.negated,
                    line=self.line, column=self.column)

    def to_ndlog(self):
        parts = []
        for index, arg in enumerate(self.args):
            text = arg.to_ndlog()
            if index == self.location_index:
                text = "@" + text
            parts.append(text)
        prefix = "!" if self.negated else ""
        return f"{prefix}{self.table}({', '.join(parts)})"

    def __str__(self):
        return self.to_ndlog()


@dataclass
class Selection:
    """A selection predicate, e.g. ``Swi == 2`` or ``Hdr != 53``."""

    expr: BinOp

    def variables(self):
        return self.expr.variables()

    @property
    def op(self):
        return self.expr.op

    @property
    def left(self):
        return self.expr.left

    @property
    def right(self):
        return self.expr.right

    def clone(self):
        return Selection(self.expr.clone())

    def to_ndlog(self):
        return self.expr.to_ndlog()

    def __str__(self):
        return self.to_ndlog()


@dataclass
class Assignment:
    """An assignment of an expression to a head variable, e.g. ``Prt := 2``."""

    var: str
    expr: Expression

    def variables(self):
        return self.expr.variables()

    def clone(self):
        return Assignment(self.var, self.expr.clone())

    def to_ndlog(self):
        return f"{self.var} := {self.expr.to_ndlog()}"

    def __str__(self):
        return self.to_ndlog()


# ---------------------------------------------------------------------------
# Rules and programs
# ---------------------------------------------------------------------------


@dataclass
class Rule:
    """A single NDlog rule.

    A rule fires when there is a variable assignment that matches every body
    atom against an existing tuple and satisfies every selection predicate;
    assignments then compute values for head variables that are not bound by
    the body.
    """

    name: str
    head: Atom
    body: List[Atom] = field(default_factory=list)
    selections: List[Selection] = field(default_factory=list)
    assignments: List[Assignment] = field(default_factory=list)
    #: 1-based source position of the rule name when parsed from text
    #: (``None`` for programmatically built rules).  Excluded from equality
    #: and repr so positions never affect program diffing.
    line: Optional[int] = field(default=None, compare=False, repr=False)
    column: Optional[int] = field(default=None, compare=False, repr=False)

    def clone(self):
        return Rule(
            name=self.name,
            head=self.head.clone(),
            body=[a.clone() for a in self.body],
            selections=[s.clone() for s in self.selections],
            assignments=[a.clone() for a in self.assignments],
            line=self.line,
            column=self.column,
        )

    def body_variables(self):
        out = set()
        for atom in self.body:
            out |= atom.variables()
        return out

    def assigned_variables(self):
        return {a.var for a in self.assignments}

    def head_variables(self):
        return self.head.variables()

    def to_ndlog(self):
        parts = [a.to_ndlog() for a in self.body]
        parts += [s.to_ndlog() for s in self.selections]
        parts += [a.to_ndlog() for a in self.assignments]
        body_text = ", ".join(parts)
        return f"{self.name} {self.head.to_ndlog()} :- {body_text}."

    def structural_digest(self):
        """Content digest of the rule (sha1 of its canonical NDlog text).

        Structurally equal rules — regardless of which program object they
        live in — share a digest; the engine's plan cache
        (:data:`repro.ndlog.plan.PLAN_CACHE`) uses it to share compiled
        plans across a candidate corpus.
        """
        from .plan import rule_digest

        return rule_digest(self)

    def __str__(self):
        return self.to_ndlog()


@dataclass
class Program:
    """A collection of rules forming an NDlog program."""

    rules: List[Rule] = field(default_factory=list)
    name: str = "program"

    def clone(self):
        return Program(rules=[r.clone() for r in self.rules], name=self.name)

    def rule_named(self, name):
        """Return the rule with the given name, or raise ``KeyError``."""
        for rule in self.rules:
            if rule.name == name:
                return rule
        raise KeyError(name)

    def rule_index(self, name):
        for index, rule in enumerate(self.rules):
            if rule.name == name:
                return index
        raise KeyError(name)

    def rules_deriving(self, table):
        """Return all rules whose head populates ``table``."""
        return [r for r in self.rules if r.head.table == table]

    def tables(self):
        """Return the set of table names mentioned anywhere in the program."""
        names = set()
        for rule in self.rules:
            names.add(rule.head.table)
            for atom in rule.body:
                names.add(atom.table)
        return names

    def base_tables(self):
        """Tables that are never derived by any rule (only inserted)."""
        derived = {r.head.table for r in self.rules}
        return self.tables() - derived

    def derived_tables(self):
        return {r.head.table for r in self.rules}

    def line_count(self):
        """Number of rules; used by the program-size scalability experiment."""
        return len(self.rules)

    def structural_digest(self):
        """Order-sensitive digest of the program's rule sequence."""
        from .plan import program_digest

        return program_digest(self)

    def to_ndlog(self):
        return "\n".join(rule.to_ndlog() for rule in self.rules) + "\n"

    def __str__(self):
        return self.to_ndlog()

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self):
        return len(self.rules)


# ---------------------------------------------------------------------------
# Helpers for building ASTs programmatically
# ---------------------------------------------------------------------------


def var(name):
    """Shorthand constructor for :class:`Var`."""
    return Var(name)


def const(value):
    """Shorthand constructor for :class:`Const`."""
    return Const(value)


def comparison(left, op, right):
    """Build a comparison ``Selection`` from expressions or raw values."""
    return Selection(BinOp(op, _lift(left), _lift(right)))


def assign(name, value):
    """Build an ``Assignment`` from a variable name and expression or value."""
    return Assignment(name, _lift(value))


def atom(table, *args, location_index=0):
    """Build an :class:`Atom`, lifting bare strings/ints to Var/Const."""
    return Atom(table, [_lift(a) for a in args], location_index=location_index)


def _lift(value):
    if isinstance(value, Expression):
        return value
    if isinstance(value, str):
        if value == WILDCARD:
            return Const(WILDCARD)
        if value and (value[0].isupper() or value[0] == "_"):
            return Var(value)
        return Const(value)
    return Const(value)
