"""NDlog / µDlog: a declarative networking language runtime.

This subpackage implements the substrate on which the paper's meta provenance
is defined: a network datalog engine with location specifiers, base and
derived tuples, and a full event/derivation history.

Public entry points:

* :func:`repro.ndlog.parser.parse_program` — parse NDlog source text.
* :class:`repro.ndlog.engine.Engine` — evaluate a program over tuples.
* :class:`repro.ndlog.tuples.NDTuple` / :class:`repro.ndlog.tuples.Database`.
"""

from .ast import (
    Assignment,
    Atom,
    BinOp,
    COMPARISON_OPERATORS,
    Const,
    Expression,
    FuncCall,
    Program,
    Rule,
    Selection,
    Var,
    WILDCARD,
    assign,
    atom,
    comparison,
    const,
    var,
)
from .engine import (Engine, EngineCheckpoint, ProgramDelta,
                     ProgramDeltaError, diff_programs, evaluate_program,
                     program_delta_eligible)
from .errors import EvaluationError, NDlogError, ParseError, SchemaError
from .naive import NaiveEngine
from .events import (
    APPEAR,
    DELETE,
    DERIVE,
    DISAPPEAR,
    INSERT,
    RECEIVE,
    SEND,
    UNDERIVE,
    DerivationRecord,
    EngineEvent,
)
from .expr import Bindings, FunctionRegistry, evaluate, try_evaluate, values_equal
from .parser import parse_expression, parse_program, parse_rule
from .tuples import Database, NDTuple, TableSchema, make_tuple

__all__ = [
    "Assignment", "Atom", "BinOp", "COMPARISON_OPERATORS", "Const",
    "Expression", "FuncCall", "Program", "Rule", "Selection", "Var",
    "WILDCARD", "assign", "atom", "comparison", "const", "var",
    "Engine", "EngineCheckpoint", "NaiveEngine", "ProgramDelta",
    "ProgramDeltaError", "diff_programs", "evaluate_program",
    "program_delta_eligible",
    "EvaluationError", "NDlogError", "ParseError", "SchemaError",
    "APPEAR", "DELETE", "DERIVE", "DISAPPEAR", "INSERT", "RECEIVE", "SEND",
    "UNDERIVE", "DerivationRecord", "EngineEvent",
    "Bindings", "FunctionRegistry", "evaluate", "try_evaluate", "values_equal",
    "parse_expression", "parse_program", "parse_rule",
    "Database", "NDTuple", "TableSchema", "make_tuple",
]
