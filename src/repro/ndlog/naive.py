"""Reference (naive) NDlog evaluator kept as a correctness oracle.

This is the original scan-based evaluation strategy the indexed engine in
:mod:`repro.ndlog.engine` replaced: joins enumerate whole tables per body
atom, derivation dedup scans the per-head record list, and deletion
recomputes the entire derived set from the remaining base tuples.  It is
deliberately simple and slow.

Tests cross-check the indexed engine against this oracle (identical derived
tuple sets over the Q1–Q5 scenario workloads and over delete/reinsert
sequences driven through ``insert``/``remove``), and the engine
microbenchmark uses it as the baseline the indexed join must beat.

Two intentional notes on oracle fidelity:

* the original evaluator refused to re-insert a head whose exact firing was
  already in the derivation history, so a deleted-then-reinserted base tuple
  never re-derived its consequences; the oracle keeps the historical dedup
  for *records* but re-inserts a missing head (the fixpoint property), the
  same fix the indexed engine received;
* tuples dropped via ``engine.consume`` / ``database.remove`` (one-shot
  message semantics) bypass both evaluators' bookkeeping and are not part of
  the cross-checked surface.

The oracle shares the storage layer (:class:`~repro.ndlog.tuples.Database`)
with the real engine; only the evaluation strategy differs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .ast import Atom, Const, Program, Rule, Var
from .errors import EvaluationError
from .events import (
    APPEAR,
    DELETE,
    DERIVE,
    DISAPPEAR,
    INSERT,
    RECEIVE,
    SEND,
    UNDERIVE,
    DerivationRecord,
    EngineEvent,
)
from .expr import Bindings, FunctionRegistry, evaluate
from .tuples import Database, NDTuple, TableSchema


class NaiveEngine:
    """Evaluates an NDlog program by scanning tables (the pre-index engine)."""

    def __init__(self, program: Program,
                 schemas: Optional[Dict[str, TableSchema]] = None,
                 functions: Optional[FunctionRegistry] = None,
                 record_events: bool = True,
                 max_derivations: int = 1_000_000):
        self.program = program
        self.database = Database(schemas)
        self.functions = functions or FunctionRegistry()
        self.record_events = record_events
        self.max_derivations = max_derivations
        self.clock = 0
        self.events: List[EngineEvent] = []
        self.derivations: List[DerivationRecord] = []
        self._derivations_by_head: Dict[NDTuple, List[DerivationRecord]] = defaultdict(list)
        self._rules_by_body_table: Dict[str, List[Tuple[Rule, int]]] = defaultdict(list)
        self._index_rules()

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------

    def _index_rules(self):
        self._rules_by_body_table.clear()
        for rule in self.program.rules:
            for position, atom in enumerate(rule.body):
                self._rules_by_body_table[atom.table].append((rule, position))

    def set_program(self, program: Program):
        self.program = program
        self._index_rules()

    def register_schema(self, schema: TableSchema):
        self.database.register_schema(schema)

    # ------------------------------------------------------------------
    # Event logging
    # ------------------------------------------------------------------

    def _tick(self):
        self.clock += 1
        return self.clock

    def _log(self, kind, tup, node=None, rule=None, derivation=None,
             source=None, destination=None):
        time = self._tick()
        if self.record_events:
            self.events.append(EngineEvent(
                kind=kind, time=time, tuple=tup, node=node, rule=rule,
                derivation=derivation, source=source, destination=destination))
        return time

    # ------------------------------------------------------------------
    # Public mutation API
    # ------------------------------------------------------------------

    def insert(self, tup: NDTuple) -> List[NDTuple]:
        schema = self.database.schema(tup.table)
        node = tup.location(schema)
        fresh = self.database.insert(tup, derived=False)
        self._log(INSERT, tup, node=node)
        if fresh:
            self._log(APPEAR, tup, node=node)
        derived = self._fixpoint([tup]) if fresh else []
        self._cleanup_transients([tup] + derived)
        return derived

    def insert_many(self, tuples: Iterable[NDTuple]) -> List[NDTuple]:
        inserted = []
        for tup in tuples:
            schema = self.database.schema(tup.table)
            node = tup.location(schema)
            if self.database.insert(tup, derived=False):
                inserted.append(tup)
                self._log(INSERT, tup, node=node)
                self._log(APPEAR, tup, node=node)
        derived = self._fixpoint(inserted)
        self._cleanup_transients(inserted + derived)
        return derived

    def remove(self, tup: NDTuple) -> List[NDTuple]:
        """Remove a base tuple and recompute the derived set from scratch."""
        if not self.database.contains(tup):
            return []
        schema = self.database.schema(tup.table)
        node = tup.location(schema)
        self.database.clear_base_flag(tup)
        self.database.clear_derived_flag(tup)
        self._log(DELETE, tup, node=node)
        self._log(DISAPPEAR, tup, node=node)
        return self._recompute_derived()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def tuples(self, table) -> Set[NDTuple]:
        return self.database.tuples(table)

    def contains(self, tup: NDTuple) -> bool:
        return self.database.contains(tup)

    def derivations_of(self, tup: NDTuple) -> List[DerivationRecord]:
        return list(self._derivations_by_head.get(tup, ()))

    def event_log(self) -> List[EngineEvent]:
        return list(self.events)

    # ------------------------------------------------------------------
    # Fixpoint evaluation
    # ------------------------------------------------------------------

    def _fixpoint(self, delta: Sequence[NDTuple]) -> List[NDTuple]:
        worklist = list(delta)
        newly_derived: List[NDTuple] = []
        while worklist:
            trigger = worklist.pop(0)
            for rule, position in self._rules_by_body_table.get(trigger.table, ()):
                for head, body, bindings in self._fire_rule(rule, position, trigger):
                    record = self._record_derivation(rule, head, body, bindings)
                    is_new = not self.database.contains(head)
                    if record is None and not is_new:
                        # Duplicate firing of a tuple that is still present:
                        # nothing to do.  (A *missing* head is re-inserted
                        # even when its record is a historical duplicate —
                        # the database must satisfy the fixpoint property.)
                        continue
                    self.database.insert(head, derived=True)
                    if is_new:
                        newly_derived.append(head)
                        worklist.append(head)
        return newly_derived

    def _recompute_derived(self) -> List[NDTuple]:
        """Recompute the derived set from base tuples after a deletion.

        Tuples that are also base keep their base flag (removing one base
        tuple must never evict another).
        """
        before = self.database.derived_tuples()
        for tup in before:
            self.database.clear_derived_flag(tup)
        base = list(self.database.base_tuples())
        recomputed: Set[NDTuple] = set()
        worklist = list(base)
        while worklist:
            trigger = worklist.pop(0)
            for rule, position in self._rules_by_body_table.get(trigger.table, ()):
                for head, body, bindings in self._fire_rule(rule, position, trigger):
                    if not self.database.is_derived(head):
                        fresh = not self.database.contains(head)
                        self.database.insert(head, derived=True)
                        recomputed.add(head)
                        if fresh:
                            worklist.append(head)
        # A tuple that was derived before and is absent now disappeared —
        # even if the recompute briefly re-derived it and a primary-key
        # update evicted it again.
        disappeared = [t for t in before if not self.database.contains(t)]
        for tup in disappeared:
            schema = self.database.schema(tup.table)
            node = tup.location(schema)
            self._log(UNDERIVE, tup, node=node)
            self._log(DISAPPEAR, tup, node=node)
        return disappeared

    def _record_derivation(self, rule: Rule, head: NDTuple,
                           body: Tuple[NDTuple, ...], bindings: Dict[str, object]):
        if len(self.derivations) >= self.max_derivations:
            raise EvaluationError(
                f"derivation limit of {self.max_derivations} exceeded; "
                "the program is probably not terminating")
        for existing in self._derivations_by_head.get(head, ()):
            if existing.rule == rule.name and existing.body == body:
                return None
        record = DerivationRecord(
            rule=rule.name,
            head=head,
            body=body,
            bindings=tuple(sorted(bindings.items(), key=lambda kv: kv[0])),
            time=self.clock + 1,
            node=self._head_node(rule, head),
        )
        self.derivations.append(record)
        self._derivations_by_head[head].append(record)
        head_node = record.node
        trigger_node = body[0].location(self.database.schema(body[0].table)) if body else None
        if body and head_node is not None and trigger_node is not None and head_node != trigger_node:
            self._log(SEND, head, node=trigger_node, rule=rule.name,
                      source=trigger_node, destination=head_node)
            self._log(RECEIVE, head, node=head_node, rule=rule.name,
                      source=trigger_node, destination=head_node)
        self._log(DERIVE, head, node=head_node, rule=rule.name, derivation=record)
        if not self.database.contains(head):
            self._log(APPEAR, head, node=head_node, rule=rule.name)
        return record

    def _head_node(self, rule: Rule, head: NDTuple):
        schema = self.database.schema(head.table)
        return head.location(schema)

    # ------------------------------------------------------------------
    # Rule firing (scan-based joins)
    # ------------------------------------------------------------------

    def _fire_rule(self, rule: Rule, trigger_position: int, trigger: NDTuple):
        initial = self._match_atom(rule.body[trigger_position], trigger, Bindings())
        if initial is None:
            return
        yield from self._join_remaining(rule, trigger_position, trigger, initial, 0, [])

    def _join_remaining(self, rule, trigger_position, trigger, bindings, atom_index, chosen):
        if atom_index == len(rule.body):
            result = self._finish_rule(rule, bindings)
            if result is not None:
                head, final_bindings = result
                body = tuple(self._ordered_body(rule, trigger_position, trigger, chosen))
                yield head, body, final_bindings
            return
        if atom_index == trigger_position:
            yield from self._join_remaining(
                rule, trigger_position, trigger, bindings, atom_index + 1, chosen)
            return
        atom = rule.body[atom_index]
        for candidate in self.database.tuples(atom.table):
            extended = self._match_atom(atom, candidate, bindings)
            if extended is None:
                continue
            yield from self._join_remaining(
                rule, trigger_position, trigger, extended, atom_index + 1,
                chosen + [(atom_index, candidate)])

    def _ordered_body(self, rule, trigger_position, trigger, chosen):
        by_index = {trigger_position: trigger}
        by_index.update(dict(chosen))
        return [by_index[i] for i in range(len(rule.body))]

    def _match_atom(self, atom: Atom, tup: NDTuple, bindings: Bindings) -> Optional[Bindings]:
        if atom.table != tup.table or atom.arity != tup.arity:
            return None
        new = Bindings(bindings)
        for arg, value in zip(atom.args, tup.values):
            if isinstance(arg, Var):
                if arg.name in new:
                    if new[arg.name] != value:
                        return None
                else:
                    new[arg.name] = value
            elif isinstance(arg, Const):
                if arg.value != value:
                    return None
            else:
                try:
                    computed = evaluate(arg, new, self.functions, rule_name="<atom-arg>")
                except EvaluationError:
                    return None
                if computed != value:
                    return None
        return new

    def _finish_rule(self, rule: Rule, bindings: Bindings):
        env = Bindings(bindings)
        pending_assignments = list(rule.assignments)
        pending_selections = list(rule.selections)
        progress = True
        while progress:
            progress = False
            for assignment in list(pending_assignments):
                if assignment.expr.variables() <= set(env):
                    env[assignment.var] = evaluate(
                        assignment.expr, env, self.functions, rule.name)
                    pending_assignments.remove(assignment)
                    progress = True
            for selection in list(pending_selections):
                if selection.variables() <= set(env):
                    if not evaluate(selection.expr, env, self.functions, rule.name):
                        return None
                    pending_selections.remove(selection)
                    progress = True
        if pending_selections or pending_assignments:
            return None
        head_values = []
        for arg in rule.head.args:
            if isinstance(arg, Var):
                if arg.name not in env:
                    return None
                head_values.append(env[arg.name])
            else:
                head_values.append(evaluate(arg, env, self.functions, rule.name))
        return NDTuple(rule.head.table, tuple(head_values)), dict(env)

    # ------------------------------------------------------------------
    # Transient-tuple handling
    # ------------------------------------------------------------------

    def _cleanup_transients(self, candidates: Iterable[NDTuple]):
        for tup in candidates:
            schema = self.database.schema(tup.table)
            if schema is not None and not schema.persistent:
                self.database.remove(tup)
