"""Event records emitted by the NDlog engine.

The engine keeps a chronological log of everything that happens to tuples:
insertions and deletions of base tuples, derivations and underivations,
appearances/disappearances in the database, and cross-node message traffic.
The provenance recorder (:mod:`repro.provenance.recorder`) turns this log
into the provenance graph of Section 3.1 of the paper.

With incremental deletion (see :mod:`repro.ndlog.engine`), a retraction
emits DELETE/DISAPPEAR for the retracted base tuple and UNDERIVE/DISAPPEAR
for every derived tuple of its downstream cone that lost its last support;
tuples that reappear through an alternative derivation are re-inserted
silently, exactly like the recompute-based evaluator behaved.  A derived
tuple re-appearing after deletion logs a fresh APPEAR even when its
DerivationRecord was already in the history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .tuples import NDTuple


# Event kind constants.  They intentionally mirror the vertex names used by
# the paper (INSERT / DELETE / DERIVE / UNDERIVE / APPEAR / DISAPPEAR /
# SEND / RECEIVE).
INSERT = "INSERT"
DELETE = "DELETE"
DERIVE = "DERIVE"
UNDERIVE = "UNDERIVE"
APPEAR = "APPEAR"
DISAPPEAR = "DISAPPEAR"
SEND = "SEND"
RECEIVE = "RECEIVE"

EVENT_KINDS = (INSERT, DELETE, DERIVE, UNDERIVE, APPEAR, DISAPPEAR, SEND, RECEIVE)


@dataclass(frozen=True)
class DerivationRecord:
    """A single successful rule firing.

    Attributes:
        rule: name of the rule that fired.
        head: the derived head tuple.
        body: the body tuples that satisfied the rule, in body-atom order.
        bindings: the variable assignment under which the rule fired.
        time: logical timestamp of the derivation.
        node: node at which the head tuple was produced.
    """

    rule: str
    head: NDTuple
    body: Tuple[NDTuple, ...]
    bindings: Tuple[Tuple[str, object], ...]
    time: int
    node: object = None

    def bindings_dict(self) -> Dict[str, object]:
        return dict(self.bindings)


@dataclass(frozen=True)
class EngineEvent:
    """One entry of the engine's chronological event log."""

    kind: str
    time: int
    tuple: NDTuple
    node: object = None
    rule: Optional[str] = None
    derivation: Optional[DerivationRecord] = None
    source: object = None
    destination: object = None

    def __str__(self):
        extra = f" via {self.rule}" if self.rule else ""
        return f"[{self.time}] {self.kind} {self.tuple}{extra}"
