"""Static analysis deciding when PacketIn handling may be batched.

Batched evaluation (one engine fixpoint per burst of ``PacketIn`` tuples,
:meth:`repro.ndlog.engine.Engine.insert_batch`) and batched trace replay
(:meth:`repro.sdn.network.NetworkSimulator.run_trace` with a ``batch_size``)
are *optimisations*: reports must stay bit-identical to per-packet replay.
That equivalence is a property of the controller program, so it is decided
here, once per program, by two conservative static checks:

``engine_batch_safe``
    The joint fixpoint over a batch of PacketIn tuples must produce, per
    tuple, exactly what sequential insertion would have produced.  This
    fails when packets can interact through the rules: a rule joining two
    tables that both descend from PacketIn (Q5's ``PacketIn ⋈ Learned``), a
    derivable table with a primary key (update semantics make results depend
    on insertion order), rules re-deriving PacketIn itself, or rules reading
    consumed/transient event tables.

``probe_exact``
    Batched replay predicts, before walking a burst, which packets will miss
    in the ingress flow table.  The prediction is exact only when a packet's
    hit/miss status is fully determined by its PacketIn tuple key: every
    flow-entry head must be wildcard-free and match on exactly the packet
    fields that make up the PacketIn tuple.  A wildcard head (Q5's
    ``SipP := *``) lets one packet's FlowMod change another key's fate
    mid-burst, so such programs replay per-packet.

Both checks run against the *instantiated* program — repaired candidate
programs are analysed individually, so a repair that introduces a wildcard
or a new join simply opts that one candidate out of batching.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ndlog.ast import Program, Var, WILDCARD
from ..ndlog.tuples import TableSchema


def derivable_tables(program: Program, packet_in_table: str) -> Set[str]:
    """Tables whose contents can (transitively) depend on PacketIn tuples."""
    tainted = {packet_in_table}
    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            if rule.head.table in tainted:
                continue
            if any(atom.table in tainted for atom in rule.body):
                tainted.add(rule.head.table)
                changed = True
    return tainted


def engine_batch_safe(program: Program, packet_in_table: str,
                      packet_out_table: str,
                      schemas: Dict[str, TableSchema]) -> bool:
    """May a batch of distinct PacketIn tuples share one fixpoint?"""
    tainted = derivable_tables(program, packet_in_table)
    for rule in program.rules:
        # Deriving new PacketIns would extend the batch mid-fixpoint.
        if rule.head.table == packet_in_table:
            return False
        tainted_atoms = sum(1 for atom in rule.body if atom.table in tainted)
        if tainted_atoms >= 2:
            # Two packets (or their derivations) could join with each other —
            # sequential insertion would not have seen the later packet yet.
            return False
        for atom in rule.body:
            if atom.table == packet_out_table:
                # Consumed between events sequentially, visible jointly.
                return False
            schema = schemas.get(atom.table)
            if (atom.table != packet_in_table and atom.table in tainted
                    and schema is not None and not schema.persistent):
                return False
    for table in tainted:
        if table == packet_in_table:
            continue
        schema = schemas.get(table)
        if schema is not None and schema.primary_key:
            # Primary-key updates evict by insertion order.
            return False
    return True


def probe_exact(program: Program, mapping) -> bool:
    """Is ingress hit/miss fully determined by the PacketIn tuple key?

    Batched replay relies on "a mid-burst install can only affect packets
    sharing the installing packet's tuple key".  That holds when

    (a) flow-entry match columns equal the PacketIn tuple's packet fields,
    (b) every flow-head rule that replay can trigger installs the entry for
        the *triggering packet's own key*: its switch column and every match
        column must be the very variable the rule's PacketIn atom binds for
        that field (not a constant, another variable, a wildcard, or a
        variable overwritten by an assignment), and
    (c) the entry carries no wildcard in a match column (implied by (b)).

    Flow-head rules with no PacketIn-derivable body atom only fire during
    static setup — before any burst is probed — and are always eligible.
    """
    match_columns = tuple(name for name in mapping.flow_entry_layout
                          if name != "out_port")
    if set(match_columns) != set(mapping.packet_in_fields):
        return False
    tainted = derivable_tables(program, mapping.packet_in_table)
    field_position = {name: 2 + offset for offset, name
                      in enumerate(mapping.packet_in_fields)}
    for rule in program.rules:
        if rule.head.table != mapping.flow_table:
            continue
        if rule.head.arity != len(mapping.flow_entry_layout) + 1:
            # Mis-shaped heads are dropped by the translator; a repair can
            # produce them, and we cannot predict their effect — bail out.
            return False
        tainted_atoms = [atom for atom in rule.body if atom.table in tainted]
        if not tainted_atoms:
            continue    # fires from static data only, i.e. pre-burst
        if (len(tainted_atoms) != 1
                or tainted_atoms[0].table != mapping.packet_in_table):
            # Chained or joined event derivations: the head values are not
            # traceable to one packet's fields by this analysis.
            return False
        packet_in = tainted_atoms[0]
        if packet_in.arity != 2 + len(mapping.packet_in_fields):
            return False
        assigned = {assignment.var for assignment in rule.assignments}

        def bound_to_trigger(head_arg, pin_position):
            source = packet_in.args[pin_position]
            return (isinstance(head_arg, Var) and isinstance(source, Var)
                    and head_arg.name == source.name
                    and head_arg.name not in assigned)

        if not bound_to_trigger(rule.head.args[0], 1):   # the switch column
            return False
        for column, name in enumerate(mapping.flow_entry_layout, start=1):
            if name == "out_port":
                continue
            if not bound_to_trigger(rule.head.args[column],
                                    field_position[name]):
                return False
    return True


def data_wildcard_free(program: Program, mapping,
                       static_tuples: Iterable) -> bool:
    """No wildcard can flow from base data into a flow-entry match column.

    ``probe_exact`` analyses the program text, but a repair can also inject
    wildcards through *data* (an ``InsertTuple`` edit materialised with
    WILDCARD columns): a '*' value in a table joined by a flow-head rule can
    unify through a body variable into a match column, producing exactly the
    wildcard entry the probe analysis excludes.  Conservatively reject
    batching when any static tuple of a body-joined table carries the
    wildcard value.  (Wildcarded tuples inserted directly into the flow
    table are fine: they become entries during ``on_start``, before any
    burst is probed.)
    """
    wildcarded_tables = {tup.table for tup in static_tuples
                         if WILDCARD in tup.values}
    if not wildcarded_tables:
        return True
    for rule in program.rules:
        if rule.head.table != mapping.flow_table:
            continue
        if any(atom.table in wildcarded_tables for atom in rule.body):
            return False
    return True


class PacketInInertProbe:
    """Decides, per PacketIn tuple key, whether *no rule can possibly fire*.

    Extends the batched-replay probe beyond ingress misses: during a burst
    walk, a packet can miss at a *downstream* switch whose key the ingress
    probe never saw.  Per-packet replay answers those misses with a live
    engine insertion that (for typical Swi-guarded programs) derives
    nothing.  This probe proves the "derives nothing" part statically, so
    the walk can serve a deterministic empty response without touching the
    engine — a multi-switch walk then needs only the single ingress batch
    call.

    The proof is delegated to
    :class:`repro.analysis.constprop.ConstantPropagation`, which mirrors
    the engine's matching semantics exactly (strict constant and join
    matching, wildcard-aware selection guards, raising comparisons deferred
    as "might fire") and additionally propagates the key's constants
    through joins with statically enumerable tables — a key whose join
    column matches no static tuple is proven inert even though every guard
    alone is satisfiable.  A key is inert only if *every* occurrence in the
    program is ruled out; the verdict is conservative (``False`` never
    lies, ``True`` is a proof) and depends only on the program text and the
    static base data, so it is cached per key.

    The probe keeps hit/miss counters (``hits`` / ``misses``) so replay
    layers can report how much work static analysis saved.
    """

    def __init__(self, program: Program, packet_in_table: str,
                 schemas: Optional[Dict[str, TableSchema]] = None,
                 static_tuples: Iterable = (),
                 flow_table: Optional[str] = None,
                 closed_world: bool = False):
        from ..analysis.constprop import ConstantPropagation

        self._packet_in_table = packet_in_table
        # Static-join enumeration is only sound when the caller's static
        # tuples are the complete base extent (controllers pass
        # ``closed_world=True``); bare probes reason from guards alone.
        self._propagation = ConstantPropagation(
            program, schemas=schemas, static_tuples=list(static_tuples),
            event_tables={packet_in_table}, flow_table=flow_table,
            closed_world=closed_world)
        self.hits = 0
        self.misses = 0

    def inert(self, values: Tuple) -> bool:
        verdict = self._propagation.tuple_inert(self._packet_in_table, values)
        if verdict:
            self.hits += 1
        else:
            self.misses += 1
        return verdict


def batch_replay_safe(program: Program, mapping,
                      schemas: Dict[str, TableSchema],
                      static_tuples: Iterable = ()) -> bool:
    """Full eligibility for batched trace replay (fixpoint + probe phases)."""
    return (engine_batch_safe(program, mapping.packet_in_table,
                              mapping.packet_out_table, schemas)
            and probe_exact(program, mapping)
            and data_wildcard_free(program, mapping, static_tuples))
