"""A NetCore-style policy DSL — the Pyretic substitute (Section 5.8).

The DSL provides the static policy combinators of Pyretic/NetCore (Figure 16
of the paper's appendix): primitive actions (``fwd``, ``drop``, ``mod``),
predicate restriction (``match(...)[policy]``), parallel composition
(``p1 | p2``) and sequential composition (``p1 >> p2``).  A
:class:`PolicyController` evaluates the policy reactively, installing
micro-flow entries.

The meta model for this language lives in :class:`PolicyRepairer`: it treats
the policy tree as data (every match value and forwarding port is a meta
tuple with a path into the tree) and generates repair candidates for a
missing-delivery symptom.  As the paper notes for Pyretic, the match syntax
does not permit operator changes, so the candidate space is smaller than for
NDlog — which is exactly the effect visible in Table 3.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..sdn.controller import Controller, FlowMod, PacketInEvent, PacketOut
from ..sdn.packets import Packet
from ..sdn.switch import DROP_PORT, FLOOD_PORT, FlowEntry


@dataclass(frozen=True)
class LocatedPacket:
    """A packet at a specific switch/ingress port, as policies see it."""

    packet: Packet
    switch: int
    in_port: Optional[int] = None
    out_port: Optional[int] = None

    def field_value(self, name: str):
        if name == "switch":
            return self.switch
        if name == "in_port":
            return self.in_port
        return self.packet.header().get(name)

    def forwarded(self, port: int) -> "LocatedPacket":
        return LocatedPacket(self.packet, self.switch, self.in_port, port)

    def modified(self, name: str, value) -> "LocatedPacket":
        if name in ("switch", "in_port"):
            raise ValueError(f"cannot modify location field {name!r}")
        return LocatedPacket(self.packet.with_fields(**{name: value}),
                             self.switch, self.in_port, self.out_port)


# ---------------------------------------------------------------------------
# Policy combinators
# ---------------------------------------------------------------------------


class Policy:
    """Base class: a policy maps a located packet to a set of located packets."""

    def evaluate(self, located: LocatedPacket) -> List[LocatedPacket]:
        raise NotImplementedError

    def children(self) -> List["Policy"]:
        return []

    def replace_child(self, index: int, new_child: "Policy") -> "Policy":
        raise IndexError(f"{type(self).__name__} has no child {index}")

    def clone(self) -> "Policy":
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    # Composition operators.
    def __or__(self, other: "Policy") -> "Policy":
        return Parallel(self, other)

    def __rshift__(self, other: "Policy") -> "Policy":
        return Sequential(self, other)

    def __str__(self):
        return self.describe()

    def node_count(self) -> int:
        return 1 + sum(child.node_count() for child in self.children())


class Drop(Policy):
    """Drop every packet."""

    def evaluate(self, located):
        return []

    def clone(self):
        return Drop()

    def describe(self):
        return "drop"


class Fwd(Policy):
    """Forward out of a fixed port."""

    def __init__(self, port: int):
        self.port = port

    def evaluate(self, located):
        return [located.forwarded(self.port)]

    def clone(self):
        return Fwd(self.port)

    def describe(self):
        return f"fwd({self.port})"


class Flood(Policy):
    """Flood (forward out of the special flood port)."""

    def evaluate(self, located):
        return [located.forwarded(FLOOD_PORT)]

    def clone(self):
        return Flood()

    def describe(self):
        return "flood"


class Mod(Policy):
    """Rewrite one header field and pass the packet on."""

    def __init__(self, field_name: str, value):
        self.field_name = field_name
        self.value = value

    def evaluate(self, located):
        return [located.modified(self.field_name, self.value)]

    def clone(self):
        return Mod(self.field_name, self.value)

    def describe(self):
        return f"mod({self.field_name}={self.value})"


class Match(Policy):
    """A predicate on header/location fields.

    Used alone it acts as a filter; ``match(...)[policy]`` builds a
    :class:`Restrict` that applies ``policy`` only to matching packets.
    """

    def __init__(self, **fields):
        self.fields = dict(fields)

    def test(self, located: LocatedPacket) -> bool:
        return all(located.field_value(name) == value
                   for name, value in self.fields.items())

    def evaluate(self, located):
        return [located] if self.test(located) else []

    def __getitem__(self, policy: Policy) -> "Restrict":
        return Restrict(self, policy)

    def clone(self):
        return Match(**self.fields)

    def describe(self):
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"match({inner})"


class Restrict(Policy):
    """``predicate[policy]``: apply the policy only to matching packets."""

    def __init__(self, predicate: Match, policy: Policy):
        self.predicate = predicate
        self.policy = policy

    def evaluate(self, located):
        if not self.predicate.test(located):
            return []
        return self.policy.evaluate(located)

    def children(self):
        return [self.policy]

    def replace_child(self, index, new_child):
        if index != 0:
            raise IndexError(index)
        return Restrict(self.predicate.clone(), new_child)

    def clone(self):
        return Restrict(self.predicate.clone(), self.policy.clone())

    def describe(self):
        return f"{self.predicate.describe()}[{self.policy.describe()}]"


class Parallel(Policy):
    """Apply both policies and take the union of the results."""

    def __init__(self, left: Policy, right: Policy):
        self.left = left
        self.right = right

    def evaluate(self, located):
        return self.left.evaluate(located) + self.right.evaluate(located)

    def children(self):
        return [self.left, self.right]

    def replace_child(self, index, new_child):
        if index == 0:
            return Parallel(new_child, self.right.clone())
        if index == 1:
            return Parallel(self.left.clone(), new_child)
        raise IndexError(index)

    def clone(self):
        return Parallel(self.left.clone(), self.right.clone())

    def describe(self):
        return f"({self.left.describe()} | {self.right.describe()})"


class Sequential(Policy):
    """Feed the output packets of the first policy into the second."""

    def __init__(self, first: Policy, second: Policy):
        self.first = first
        self.second = second

    def evaluate(self, located):
        out: List[LocatedPacket] = []
        for intermediate in self.first.evaluate(located):
            out.extend(self.second.evaluate(intermediate))
        return out

    def children(self):
        return [self.first, self.second]

    def replace_child(self, index, new_child):
        if index == 0:
            return Sequential(new_child, self.second.clone())
        if index == 1:
            return Sequential(self.first.clone(), new_child)
        raise IndexError(index)

    def clone(self):
        return Sequential(self.first.clone(), self.second.clone())

    def describe(self):
        return f"({self.first.describe()} >> {self.second.describe()})"


# Lower-case aliases matching Pyretic's surface syntax.
def match(**fields) -> Match:
    return Match(**fields)


def fwd(port: int) -> Fwd:
    return Fwd(port)


def drop() -> Drop:
    return Drop()


def flood() -> Flood:
    return Flood()


def modify(field_name: str, value) -> Mod:
    return Mod(field_name, value)


# ---------------------------------------------------------------------------
# Controller
# ---------------------------------------------------------------------------


class PolicyController(Controller):
    """Evaluates a policy reactively, installing micro-flow entries."""

    name = "policy"

    def __init__(self, policy: Policy, priority: int = 10,
                 tags: Tuple[str, ...] = ()):
        self.policy = policy
        self.priority = priority
        self.tags = tags

    def handle_packet_in(self, event: PacketInEvent) -> List[object]:
        located = LocatedPacket(event.packet, event.switch_id, event.in_port)
        results = self.policy.evaluate(located)
        messages: List[object] = []
        header = event.packet.header()
        micro_match = {"src_ip": header["src_ip"], "dst_ip": header["dst_ip"],
                       "src_port": header["src_port"], "dst_port": header["dst_port"]}
        forwarded = False
        if not results:
            entry = FlowEntry.create(micro_match, DROP_PORT,
                                     priority=self.priority, tags=self.tags)
            messages.append(FlowMod(event.switch_id, entry))
            return messages
        for outcome in results:
            if outcome.out_port is None:
                continue
            entry = FlowEntry.create(micro_match, outcome.out_port,
                                     priority=self.priority, tags=self.tags)
            messages.append(FlowMod(event.switch_id, entry))
            if not forwarded:
                messages.append(PacketOut(event.switch_id, outcome.out_port,
                                          event.packet))
                forwarded = True
        return messages

    def reset(self):
        """Policies are stateless; nothing to reset."""


# ---------------------------------------------------------------------------
# Meta model / repair search over the policy tree
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PolicyRepair:
    """A repair candidate for a policy program."""

    description: str
    cost: float
    policy: Policy            # the full repaired policy
    kind: str = "policy_edit"
    candidate_id: int = field(default_factory=lambda: next(_policy_repair_ids))

    @property
    def tag(self) -> str:
        return f"p{self.candidate_id}"

    def __str__(self):
        return f"[cost {self.cost:.2f}] {self.description}"


_policy_repair_ids = itertools.count(1)


@dataclass(frozen=True)
class PolicyDeliveryGoal:
    """Symptom for the policy repairer: a packet should be forwarded.

    ``packet`` is a representative packet of the affected traffic;
    ``switch`` is where it enters; ``expected_port`` (optional) is the port
    it should leave from.
    """

    packet: Packet
    switch: int
    expected_port: Optional[int] = None
    in_port: Optional[int] = None


class PolicyRepairer:
    """Generates repair candidates for a policy program.

    The search walks the policy tree, treating match values and forwarding
    ports as meta tuples.  For a packet that should be delivered but is not,
    it proposes: fixing a failing ``match`` value, deleting a failing
    restriction, changing a ``fwd`` port, and adding a dedicated branch for
    the affected traffic (the analogue of "manually installing a flow
    entry").
    """

    COSTS = {"change_match": 1.1, "delete_restriction": 2.0,
             "change_port": 1.3, "add_branch": 2.6}

    def __init__(self, policy: Policy, max_candidates: int = 20):
        self.policy = policy
        self.max_candidates = max_candidates

    def repair_missing_delivery(self, goal: PolicyDeliveryGoal) -> List[PolicyRepair]:
        located = LocatedPacket(goal.packet, goal.switch, goal.in_port)
        candidates: List[PolicyRepair] = []
        self._repair_node(self.policy, (), located, goal, candidates)
        # "Manual" fix: add a parallel branch matching exactly this traffic.
        if goal.expected_port is not None:
            branch = Match(switch=goal.switch,
                           dst_port=goal.packet.dst_port)[Fwd(goal.expected_port)]
            candidates.append(PolicyRepair(
                description=f"add branch {branch.describe()}",
                cost=self.COSTS["add_branch"],
                policy=Parallel(self.policy.clone(), branch),
                kind="add_branch"))
        unique: Dict[str, PolicyRepair] = {}
        for candidate in candidates:
            key = candidate.description
            if key not in unique or candidate.cost < unique[key].cost:
                unique[key] = candidate
        ranked = sorted(unique.values(), key=lambda c: (c.cost, c.candidate_id))
        return ranked[: self.max_candidates]

    # -- recursive tree walk -------------------------------------------------

    def _repair_node(self, node: Policy, path: Tuple[int, ...],
                     located: LocatedPacket, goal: PolicyDeliveryGoal,
                     out: List[PolicyRepair], reachable: bool = True):
        if isinstance(node, Restrict):
            predicate_holds = node.predicate.test(located)
            if not predicate_holds and self._could_forward(node.policy, goal):
                # Only restrictions guarding a branch that could forward the
                # affected traffic towards the goal are worth repairing.
                for name, value in sorted(node.predicate.fields.items()):
                    actual = located.field_value(name)
                    if actual == value:
                        continue
                    fixed_fields = dict(node.predicate.fields)
                    fixed_fields[name] = actual
                    repaired = Restrict(Match(**fixed_fields), node.policy.clone())
                    out.append(PolicyRepair(
                        description=(f"change match {name}={value!r} to "
                                     f"{name}={actual!r} in "
                                     f"{node.predicate.describe()}"),
                        cost=self.COSTS["change_match"],
                        policy=self._rebuild(path, repaired),
                        kind="change_match"))
                out.append(PolicyRepair(
                    description=f"delete restriction {node.predicate.describe()}",
                    cost=self.COSTS["delete_restriction"],
                    policy=self._rebuild(path, node.policy.clone()),
                    kind="delete_restriction"))
            self._repair_node(node.policy, path + (0,), located, goal, out,
                              reachable=reachable and predicate_holds)
            return
        if isinstance(node, Fwd) and reachable and goal.expected_port is not None \
                and node.port != goal.expected_port:
            out.append(PolicyRepair(
                description=f"change fwd({node.port}) to fwd({goal.expected_port})",
                cost=self.COSTS["change_port"],
                policy=self._rebuild(path, Fwd(goal.expected_port)),
                kind="change_port"))
        for index, child in enumerate(node.children()):
            self._repair_node(child, path + (index,), located, goal, out,
                              reachable=reachable)

    def _could_forward(self, node: Policy, goal: PolicyDeliveryGoal) -> bool:
        """True if the sub-policy contains a forwarding action that could
        satisfy the goal (the goal port, or any port when unspecified)."""
        if isinstance(node, Fwd):
            return goal.expected_port is None or node.port == goal.expected_port
        if isinstance(node, Flood):
            return True
        return any(self._could_forward(child, goal) for child in node.children())

    def _rebuild(self, path: Tuple[int, ...], replacement: Policy) -> Policy:
        """Return a copy of the full policy with the node at ``path`` replaced."""
        return _replace_at(self.policy, path, replacement)


def _replace_at(node: Policy, path: Tuple[int, ...], replacement: Policy) -> Policy:
    if not path:
        return replacement
    index = path[0]
    children = node.children()
    if index >= len(children):
        return node.clone()
    new_child = _replace_at(children[index], path[1:], replacement)
    return node.replace_child(index, new_child)
