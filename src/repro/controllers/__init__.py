"""Controller applications for the three languages covered by the paper.

* :mod:`repro.controllers.ndlog_controller` — the declarative (RapidNet/NDlog)
  controller, the primary target of meta provenance.
* :mod:`repro.controllers.imperative` — "RubyFlow", the Trema/Ruby substitute.
* :mod:`repro.controllers.policy` — the NetCore-style policy DSL, the Pyretic
  substitute.
"""

from .imperative import (
    Assign,
    BinExpr,
    Env,
    FieldRef,
    Handler,
    HashGet,
    HashHas,
    HashPut,
    If,
    ImperativeController,
    ImperativeDeliveryGoal,
    ImperativeRepair,
    ImperativeRepairer,
    InstallFlow,
    Lit,
    SendPacketOut,
    VarRef,
)
from .batching import batch_replay_safe, engine_batch_safe, probe_exact
from .ndlog_controller import (
    FIELD_MAPPINGS,
    FIGURE2_MAPPING,
    FIVE_TUPLE_MAPPING,
    FieldMapping,
    IN_PORT_FIELD,
    NDlogController,
    PacketInResponse,
)
from .policy import (
    Drop,
    Flood,
    Fwd,
    LocatedPacket,
    Match,
    Mod,
    Parallel,
    Policy,
    PolicyController,
    PolicyDeliveryGoal,
    PolicyRepair,
    PolicyRepairer,
    Restrict,
    Sequential,
    drop,
    flood,
    fwd,
    match,
    modify,
)

__all__ = [
    "Assign", "BinExpr", "Env", "FieldRef", "Handler", "HashGet", "HashHas",
    "HashPut", "If", "ImperativeController", "ImperativeDeliveryGoal",
    "ImperativeRepair", "ImperativeRepairer", "InstallFlow", "Lit",
    "SendPacketOut", "VarRef",
    "FIELD_MAPPINGS", "FIGURE2_MAPPING", "FIVE_TUPLE_MAPPING", "FieldMapping",
    "IN_PORT_FIELD", "NDlogController", "PacketInResponse",
    "batch_replay_safe", "engine_batch_safe", "probe_exact",
    "Drop", "Flood", "Fwd", "LocatedPacket", "Match", "Mod", "Parallel",
    "Policy", "PolicyController", "PolicyDeliveryGoal", "PolicyRepair",
    "PolicyRepairer", "Restrict", "Sequential", "drop", "flood", "fwd",
    "match", "modify",
]
