"""An imperative controller language ("RubyFlow") — the Trema substitute.

The paper's Trema meta model (Appendix B.2) covers an imperative packet-in
handler: local variables, if-clauses, hash tables (used for MAC learning),
calls that install flow entries and calls that emit packet-outs.  RubyFlow is
a small AST-interpreted language with exactly those constructs, so the same
classes of bugs (wrong constant in a condition, wrong match field, missing
packet-out call) and the same classes of repairs are expressible.

The meta model / repair search is :class:`ImperativeRepairer`: constants,
comparison operators, field references and call arguments are the meta
tuples; repairs are generated for a missing-delivery symptom by symbolically
re-executing the handler on a representative packet.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..sdn.controller import Controller, FlowMod, PacketInEvent, PacketOut
from ..sdn.packets import Packet
from ..sdn.switch import DROP_PORT, FLOOD_PORT, FlowEntry


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    def evaluate(self, env: "Env"):
        raise NotImplementedError

    def clone(self) -> "Expr":
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def __str__(self):
        return self.describe()


@dataclass
class Lit(Expr):
    """A literal constant."""

    value: object

    def evaluate(self, env):
        return self.value

    def clone(self):
        return Lit(self.value)

    def describe(self):
        return repr(self.value)


@dataclass
class FieldRef(Expr):
    """A reference to a packet header field (``packet.dst_port``) or to the
    special variables ``switch`` and ``in_port``."""

    name: str

    def evaluate(self, env):
        return env.field(self.name)

    def clone(self):
        return FieldRef(self.name)

    def describe(self):
        return f"packet.{self.name}"


@dataclass
class VarRef(Expr):
    """A reference to a local variable set by ``Assign``."""

    name: str

    def evaluate(self, env):
        return env.variables.get(self.name)

    def clone(self):
        return VarRef(self.name)

    def describe(self):
        return self.name


@dataclass
class BinExpr(Expr):
    """A binary comparison or arithmetic expression."""

    op: str
    left: Expr
    right: Expr

    _OPS = {
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        ">": lambda a, b: a > b,
        "<=": lambda a, b: a <= b,
        ">=": lambda a, b: a >= b,
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "and": lambda a, b: bool(a) and bool(b),
        "or": lambda a, b: bool(a) or bool(b),
    }

    def evaluate(self, env):
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        try:
            return self._OPS[self.op](left, right)
        except TypeError:
            return False

    def clone(self):
        return BinExpr(self.op, self.left.clone(), self.right.clone())

    def describe(self):
        return f"({self.left.describe()} {self.op} {self.right.describe()})"


@dataclass
class HashGet(Expr):
    """Read from a controller-state hash table (e.g. the MAC learning table)."""

    table: str
    key: Expr
    default: object = None

    def evaluate(self, env):
        return env.state.get(self.table, {}).get(self.key.evaluate(env), self.default)

    def clone(self):
        return HashGet(self.table, self.key.clone(), self.default)

    def describe(self):
        return f"{self.table}[{self.key.describe()}]"


@dataclass
class HashHas(Expr):
    """Check whether a key is present in a controller-state hash table."""

    table: str
    key: Expr

    def evaluate(self, env):
        return self.key.evaluate(env) in env.state.get(self.table, {})

    def clone(self):
        return HashHas(self.table, self.key.clone())

    def describe(self):
        return f"{self.table}.include?({self.key.describe()})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    def execute(self, env: "Env"):
        raise NotImplementedError

    def clone(self) -> "Stmt":
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def children(self) -> List["Stmt"]:
        return []


@dataclass
class Assign(Stmt):
    name: str
    expr: Expr

    def execute(self, env):
        env.variables[self.name] = self.expr.evaluate(env)

    def clone(self):
        return Assign(self.name, self.expr.clone())

    def describe(self):
        return f"{self.name} = {self.expr.describe()}"


@dataclass
class If(Stmt):
    condition: Expr
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)

    def execute(self, env):
        branch = self.then_body if self.condition.evaluate(env) else self.else_body
        for stmt in branch:
            stmt.execute(env)

    def clone(self):
        return If(self.condition.clone(),
                  [s.clone() for s in self.then_body],
                  [s.clone() for s in self.else_body])

    def describe(self):
        return f"if {self.condition.describe()}"

    def children(self):
        return list(self.then_body) + list(self.else_body)


@dataclass
class HashPut(Stmt):
    table: str
    key: Expr
    value: Expr

    def execute(self, env):
        env.state.setdefault(self.table, {})[self.key.evaluate(env)] = \
            self.value.evaluate(env)

    def clone(self):
        return HashPut(self.table, self.key.clone(), self.value.clone())

    def describe(self):
        return f"{self.table}[{self.key.describe()}] = {self.value.describe()}"


@dataclass
class InstallFlow(Stmt):
    """``send_flow_mod_add``: install a flow entry on a switch."""

    switch: Expr
    match_fields: Dict[str, Expr]
    out_port: Expr
    priority: int = 10

    def execute(self, env):
        switch_id = self.switch.evaluate(env)
        match = {}
        for name, expr in self.match_fields.items():
            value = expr.evaluate(env)
            if value is not None and value != "*":
                match[name] = value
        port = self.out_port.evaluate(env)
        if not isinstance(switch_id, int) or not isinstance(port, int):
            return
        entry = FlowEntry.create(match, port, priority=self.priority,
                                 tags=env.tags)
        env.messages.append(FlowMod(switch_id, entry))
        env.installed_ports.append((switch_id, port))

    def clone(self):
        return InstallFlow(self.switch.clone(),
                           {k: v.clone() for k, v in self.match_fields.items()},
                           self.out_port.clone(), self.priority)

    def describe(self):
        match = ", ".join(f"{k}={v.describe()}" for k, v in self.match_fields.items())
        return (f"send_flow_mod_add(switch={self.switch.describe()}, "
                f"match({match}), port={self.out_port.describe()})")


@dataclass
class SendPacketOut(Stmt):
    """``send_packet_out``: release the buffered packet out of a port."""

    switch: Expr
    port: Expr

    def execute(self, env):
        switch_id = self.switch.evaluate(env)
        port = self.port.evaluate(env)
        if isinstance(switch_id, int) and isinstance(port, int):
            env.messages.append(PacketOut(switch_id, port, env.packet))

    def clone(self):
        return SendPacketOut(self.switch.clone(), self.port.clone())

    def describe(self):
        return (f"send_packet_out(switch={self.switch.describe()}, "
                f"port={self.port.describe()})")


@dataclass
class Handler:
    """A ``packet_in`` handler: a named list of statements."""

    name: str
    body: List[Stmt] = field(default_factory=list)

    def clone(self) -> "Handler":
        return Handler(self.name, [s.clone() for s in self.body])

    def describe(self) -> str:
        return "\n".join(s.describe() for s in self.body)

    def line_count(self) -> int:
        def count(statements: Sequence[Stmt]) -> int:
            total = 0
            for stmt in statements:
                total += 1
                if isinstance(stmt, If):
                    total += count(stmt.then_body) + count(stmt.else_body)
            return total
        return count(self.body)


# ---------------------------------------------------------------------------
# Interpreter / controller
# ---------------------------------------------------------------------------


class Env:
    """Execution environment for one handler invocation."""

    def __init__(self, packet: Packet, switch: int, in_port: Optional[int],
                 state: Dict[str, Dict], tags: Tuple[str, ...] = ()):
        self.packet = packet
        self.switch = switch
        self.in_port = in_port
        self.state = state
        self.variables: Dict[str, object] = {}
        self.messages: List[object] = []
        self.installed_ports: List[Tuple[int, int]] = []
        self.tags = tags

    def field(self, name: str):
        if name == "switch":
            return self.switch
        if name == "in_port":
            return self.in_port
        return self.packet.header().get(name)


class ImperativeController(Controller):
    """Runs a RubyFlow handler as the controller application."""

    name = "rubyflow"

    def __init__(self, handler: Handler, tags: Tuple[str, ...] = ()):
        self.handler = handler
        self.tags = tags
        self.state: Dict[str, Dict] = {}

    def handle_packet_in(self, event: PacketInEvent) -> List[object]:
        env = Env(event.packet, event.switch_id, event.in_port, self.state,
                  tags=self.tags)
        for stmt in self.handler.body:
            stmt.execute(env)
        return env.messages

    def reset(self):
        self.state = {}


# ---------------------------------------------------------------------------
# Meta model / repair search
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ImperativeRepair:
    """A repair candidate for a RubyFlow handler."""

    description: str
    cost: float
    handler: Handler
    kind: str = "imperative_edit"
    candidate_id: int = field(default_factory=lambda: next(_imperative_repair_ids))

    @property
    def tag(self) -> str:
        return f"t{self.candidate_id}"

    def __str__(self):
        return f"[cost {self.cost:.2f}] {self.description}"


_imperative_repair_ids = itertools.count(1)


@dataclass(frozen=True)
class ImperativeDeliveryGoal:
    """Symptom: a representative packet should be forwarded out of a port."""

    packet: Packet
    switch: int
    expected_port: Optional[int] = None
    in_port: Optional[int] = None


class ImperativeRepairer:
    """Generates repair candidates for a RubyFlow handler.

    Meta tuples are the literals in if-conditions, the comparison operators,
    the field references, and the port arguments of install/packet-out calls;
    repairs are proposed by re-running the handler on the symptom packet and
    looking at which conditions failed and which calls never executed.
    """

    COSTS = {"change_constant": 1.1, "change_operator": 1.6,
             "change_field": 1.7, "change_port": 1.3,
             "delete_condition": 2.0, "add_packet_out": 2.2}

    _COMPARISONS = ("==", "!=", "<", ">", "<=", ">=")

    def __init__(self, handler: Handler, max_candidates: int = 20):
        self.handler = handler
        self.max_candidates = max_candidates

    def repair_missing_delivery(self, goal: ImperativeDeliveryGoal,
                                state: Optional[Dict[str, Dict]] = None
                                ) -> List[ImperativeRepair]:
        env = Env(goal.packet, goal.switch, goal.in_port, dict(state or {}))
        candidates: List[ImperativeRepair] = []
        self._walk(self.handler.body, [], env, goal, candidates)
        if goal.expected_port is not None and not self._has_packet_out(self.handler.body):
            repaired = self.handler.clone()
            repaired.body.append(SendPacketOut(FieldRef("switch"),
                                               Lit(goal.expected_port)))
            candidates.append(ImperativeRepair(
                description=f"add send_packet_out(port={goal.expected_port})",
                cost=self.COSTS["add_packet_out"], handler=repaired,
                kind="add_packet_out"))
        unique: Dict[str, ImperativeRepair] = {}
        for candidate in candidates:
            if candidate.description not in unique or \
                    candidate.cost < unique[candidate.description].cost:
                unique[candidate.description] = candidate
        ranked = sorted(unique.values(), key=lambda c: (c.cost, c.candidate_id))
        return ranked[: self.max_candidates]

    # -- helpers --------------------------------------------------------------

    def _has_packet_out(self, statements: Sequence[Stmt]) -> bool:
        for stmt in statements:
            if isinstance(stmt, SendPacketOut):
                return True
            if isinstance(stmt, If) and (self._has_packet_out(stmt.then_body)
                                         or self._has_packet_out(stmt.else_body)):
                return True
        return False

    def _walk(self, statements: Sequence[Stmt], path: List[int], env: Env,
              goal: ImperativeDeliveryGoal, out: List[ImperativeRepair]):
        for index, stmt in enumerate(statements):
            where = path + [index]
            if isinstance(stmt, Assign):
                stmt.execute(env)
            elif isinstance(stmt, HashPut):
                stmt.execute(env)
            elif isinstance(stmt, If):
                holds = bool(stmt.condition.evaluate(env))
                if not holds and self._contains_forwarding(stmt.then_body):
                    out.extend(self._condition_repairs(stmt, where, env))
                branch = stmt.then_body if holds else stmt.else_body
                self._walk(branch, where + [0 if holds else 1], env, goal, out)
            elif isinstance(stmt, InstallFlow):
                port = stmt.out_port.evaluate(env)
                if goal.expected_port is not None and port != goal.expected_port:
                    out.append(self._port_repair(stmt, where, goal.expected_port,
                                                 "flow entry"))
                self._field_reference_repairs(stmt, where, env, out)
            elif isinstance(stmt, SendPacketOut):
                port = stmt.port.evaluate(env)
                if goal.expected_port is not None and port != goal.expected_port:
                    out.append(self._port_repair(stmt, where, goal.expected_port,
                                                 "packet out"))

    def _contains_forwarding(self, statements: Sequence[Stmt]) -> bool:
        for stmt in statements:
            if isinstance(stmt, (InstallFlow, SendPacketOut)):
                return True
            if isinstance(stmt, If) and (self._contains_forwarding(stmt.then_body)
                                         or self._contains_forwarding(stmt.else_body)):
                return True
        return False

    def _condition_repairs(self, stmt: If, path: List[int], env: Env
                           ) -> List[ImperativeRepair]:
        repairs: List[ImperativeRepair] = []
        condition = stmt.condition
        where = "/".join(str(p) for p in path)
        if isinstance(condition, BinExpr) and condition.op in self._COMPARISONS:
            left = condition.left.evaluate(env)
            right = condition.right.evaluate(env)
            # Change the literal operand so the condition holds.
            for side_name, side_expr, other in (("right", condition.right, left),
                                                ("left", condition.left, right)):
                if isinstance(side_expr, Lit) and other is not None:
                    repairs.append(self._rebuild_condition(
                        stmt, path,
                        BinExpr(condition.op,
                                condition.left.clone() if side_name == "right" else Lit(other),
                                Lit(other) if side_name == "right" else condition.right.clone()),
                        f"change constant {side_expr.value!r} to {other!r} in "
                        f"condition {condition.describe()} at {where}",
                        self.COSTS["change_constant"]))
            # Change the comparison operator.
            if left is not None and right is not None:
                for op in self._COMPARISONS:
                    if op == condition.op:
                        continue
                    if BinExpr(op, Lit(left), Lit(right)).evaluate(env):
                        repairs.append(self._rebuild_condition(
                            stmt, path,
                            BinExpr(op, condition.left.clone(), condition.right.clone()),
                            f"change operator {condition.op!r} to {op!r} in "
                            f"condition {condition.describe()} at {where}",
                            self.COSTS["change_operator"]))
                        break
            # Change a field reference on the left-hand side (Q5 pattern).
            if isinstance(condition.left, FieldRef) and condition.right is not None:
                target = condition.right.evaluate(env)
                for field_name in ("src_ip", "dst_ip", "src_mac", "dst_mac",
                                   "in_port", "switch", "src_port", "dst_port"):
                    if field_name == condition.left.name:
                        continue
                    if env.field(field_name) == target:
                        repairs.append(self._rebuild_condition(
                            stmt, path,
                            BinExpr(condition.op, FieldRef(field_name),
                                    condition.right.clone()),
                            f"change field {condition.left.name} to {field_name} in "
                            f"condition {condition.describe()} at {where}",
                            self.COSTS["change_field"]))
                        break
        # Delete the condition (make the then-branch unconditional).
        repairs.append(self._rebuild_condition(
            stmt, path, Lit(True),
            f"delete condition {condition.describe()} at {where}",
            self.COSTS["delete_condition"]))
        return repairs

    def _rebuild_condition(self, stmt: If, path: List[int], new_condition: Expr,
                           description: str, cost: float) -> ImperativeRepair:
        repaired = self.handler.clone()
        target = self._statement_at(repaired.body, path)
        if isinstance(target, If):
            target.condition = new_condition
        return ImperativeRepair(description=description, cost=cost,
                                handler=repaired, kind="change_condition")

    def _port_repair(self, stmt: Stmt, path: List[int], new_port: int,
                     what: str) -> ImperativeRepair:
        repaired = self.handler.clone()
        target = self._statement_at(repaired.body, path)
        if isinstance(target, InstallFlow):
            target.out_port = Lit(new_port)
        elif isinstance(target, SendPacketOut):
            target.port = Lit(new_port)
        return ImperativeRepair(
            description=f"change {what} output port to {new_port}",
            cost=self.COSTS["change_port"], handler=repaired, kind="change_port")

    def _field_reference_repairs(self, stmt: InstallFlow, path: List[int],
                                 env: Env, out: List[ImperativeRepair]):
        """Propose replacing a wildcard match argument with a packet field.

        This is the Q5 class of repairs: the MAC-learning handler installs
        entries that fail to match on the source address; adding the missing
        field reference fixes it.
        """
        for name, expr in stmt.match_fields.items():
            if isinstance(expr, Lit) and expr.value in ("*", None):
                repaired = self.handler.clone()
                target = self._statement_at(repaired.body, path)
                if isinstance(target, InstallFlow):
                    target.match_fields[name] = FieldRef(name)
                out.append(ImperativeRepair(
                    description=f"match on packet.{name} instead of wildcard",
                    cost=self.COSTS["change_field"], handler=repaired,
                    kind="change_field"))

    def _statement_at(self, body: List[Stmt], path: Sequence[int]) -> Optional[Stmt]:
        """Resolve a statement path produced by :meth:`_walk`."""
        statements = body
        stmt: Optional[Stmt] = None
        index = 0
        while index < len(path):
            position = path[index]
            if position >= len(statements):
                return stmt
            stmt = statements[position]
            index += 1
            if index < len(path) and isinstance(stmt, If):
                branch = path[index]
                statements = stmt.then_body if branch == 0 else stmt.else_body
                index += 1
            elif index < len(path):
                return stmt
        return stmt
