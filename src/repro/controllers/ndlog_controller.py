"""Declarative (NDlog) controller — the RapidNet substitute.

The controller runs an NDlog program reactively: every ``PacketIn`` event is
turned into a ``PacketIn`` tuple and inserted into the engine; tuples derived
into the flow-entry table become ``FlowMod`` messages and tuples derived into
the packet-out table become ``PacketOut`` messages, exactly like the paper's
proxy "translates NDlog tuples into OpenFlow messages and vice versa".

Because different scenarios use different packet headers, the mapping between
packets and tuples is configurable through :class:`FieldMapping`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..ndlog.ast import Program, WILDCARD
from ..ndlog.engine import Engine
from ..ndlog.tuples import NDTuple, TableSchema
from ..sdn.controller import Controller, FlowMod, PacketInEvent, PacketOut
from ..sdn.packets import Packet
from ..sdn.switch import DROP_PORT, FlowEntry
from . import batching


#: Name of the pseudo packet field carrying the ingress port.
IN_PORT_FIELD = "in_port"

CONTROLLER_NODE = "C"


@dataclass(frozen=True)
class FieldMapping:
    """Mapping between packets and the controller program's tuples.

    Attributes:
        packet_in_fields: packet header fields (in order) that populate the
            ``PacketIn`` tuple after the leading ``(@C, Swi)`` columns.
        flow_entry_layout: names of the flow-entry table's columns after the
            leading switch column.  Each is either a packet header field (a
            match column) or the special name ``"out_port"`` (the action).
        packet_in_table / flow_table / packet_out_table: table names.
    """

    packet_in_fields: Tuple[str, ...] = ("dst_port",)
    flow_entry_layout: Tuple[str, ...] = ("dst_port", "out_port")
    packet_in_table: str = "PacketIn"
    flow_table: str = "FlowTable"
    packet_out_table: str = "PacketOut"

    def packet_in_tuple_from(self, switch_id: int, packet: Packet,
                             in_port: Optional[int] = None) -> NDTuple:
        header = dict(packet.header())
        header[IN_PORT_FIELD] = in_port if in_port is not None else 0
        values = [CONTROLLER_NODE, switch_id]
        values.extend(header[name] for name in self.packet_in_fields)
        return NDTuple(self.packet_in_table, tuple(values))

    def packet_in_tuple(self, event: PacketInEvent) -> NDTuple:
        header = dict(event.packet.header())
        header[IN_PORT_FIELD] = event.in_port if event.in_port is not None else 0
        values = [CONTROLLER_NODE, event.switch_id]
        values.extend(header[name] for name in self.packet_in_fields)
        return NDTuple(self.packet_in_table, tuple(values))

    def flow_entry_from_tuple(self, tup: NDTuple, priority: int,
                              tags: Tuple[str, ...] = ()) -> Optional[Tuple[int, FlowEntry]]:
        """Translate a flow-entry tuple into (switch id, FlowEntry)."""
        if tup.arity != len(self.flow_entry_layout) + 1:
            return None
        switch_id = tup.values[0]
        match: Dict[str, object] = {}
        out_port: Optional[int] = None
        for column, name in enumerate(self.flow_entry_layout, start=1):
            value = tup.values[column]
            if name == "out_port":
                out_port = value
            elif value != WILDCARD:
                match[name] = value
        if out_port is None or not isinstance(switch_id, int):
            return None
        if not isinstance(out_port, int):
            return None
        entry = FlowEntry.create(match, out_port, priority=priority, tags=tags)
        return switch_id, entry

    def schemas(self) -> List[TableSchema]:
        packet_in = TableSchema(
            self.packet_in_table,
            ("C", "Swi") + tuple(self.packet_in_fields),
            persistent=False)
        flow = TableSchema(
            self.flow_table, ("Swi",) + tuple(self.flow_entry_layout))
        # No schema is registered for the packet-out table: repairs may
        # re-target rules with differently-shaped heads into it (Q4), and the
        # controller only reads the first (switch) and last (port) columns.
        return [packet_in, flow]


#: The mapping used by the Figure 2 load-balancer program.
FIGURE2_MAPPING = FieldMapping(
    packet_in_fields=("dst_port",),
    flow_entry_layout=("dst_port", "out_port"))

#: A five-tuple mapping used by the richer scenarios (Q2-Q5).
FIVE_TUPLE_MAPPING = FieldMapping(
    packet_in_fields=("src_ip", "dst_ip", "src_port", "dst_port", IN_PORT_FIELD,
                      "src_mac", "dst_mac"),
    flow_entry_layout=("src_ip", "dst_ip", "src_port", "dst_port", "out_port"))

#: Registry of the named mappings (used by tests and scenario definitions).
FIELD_MAPPINGS = {
    "figure2": FIGURE2_MAPPING,
    "five_tuple": FIVE_TUPLE_MAPPING,
}


@dataclass(frozen=True)
class PacketInResponse:
    """One event's controller response in packet-agnostic template form.

    ``FlowMod`` messages are fully determined by the derived tuples, but
    ``PacketOut`` messages carry the triggering packet — batched replay may
    serve one precomputed response to several packets sharing a PacketIn
    tuple key, so packet-outs are stored as ``(switch_id, port)`` specs and
    materialised per packet by :meth:`messages_for`.
    """

    flow_mods: Tuple[FlowMod, ...]
    packet_out_specs: Tuple[Tuple[int, int], ...]
    #: Whether the event derived anything at all.  An empty derivation leaves
    #: the engine untouched, so the identical response may be replayed for
    #: later same-key events without consulting the engine again.
    derived_any: bool

    def messages_for(self, packet: Packet) -> List[object]:
        messages: List[object] = list(self.flow_mods)
        messages.extend(PacketOut(switch_id, port, packet)
                        for switch_id, port in self.packet_out_specs)
        return messages


class _BatchReplayAdapter:
    """Hooks a batch-safe NDlog controller into batched trace replay."""

    def __init__(self, controller: "NDlogController"):
        self.controller = controller

    def key(self, switch_id: int, packet: Packet,
            in_port: Optional[int]) -> Tuple:
        """The PacketIn tuple key that fully determines the response."""
        return self.controller.mapping.packet_in_tuple_from(
            switch_id, packet, in_port).values

    def handle(self, events: Sequence[PacketInEvent]) -> List[PacketInResponse]:
        return self.controller.handle_packet_in_batch(events)

    def is_inert(self, key: Tuple) -> bool:
        """Is an empty response *provably* correct for this key, with no
        engine involvement?  Lets multi-switch walks answer downstream
        misses without breaking out of the shared batch call."""
        return self.controller.packet_in_provably_inert(key)


class NDlogController(Controller):
    """Runs an NDlog program as a reactive SDN controller application."""

    name = "ndlog"

    def __init__(self, program: Program,
                 mapping: FieldMapping = FIGURE2_MAPPING,
                 static_tuples: Sequence[NDTuple] = (),
                 extra_schemas: Sequence[TableSchema] = (),
                 auto_packet_out: bool = True,
                 priority: int = 10,
                 tags: Tuple[str, ...] = (),
                 record_events: bool = True):
        self.program = program
        self.mapping = mapping
        self.static_tuples = list(static_tuples)
        self.extra_schemas = list(extra_schemas)
        self.auto_packet_out = auto_packet_out
        self.priority = priority
        self.tags = tags
        self.record_events = record_events
        #: Cached batch-safety verdicts (program and mapping are fixed).
        self._engine_batch_safe: Optional[bool] = None
        self._batch_replay_safe: Optional[bool] = None
        #: PacketIn tuple values whose derivation is provably always empty.
        #: Under the engine-batch-safe analysis a PacketIn joins only tables
        #: that never change during replay, so an empty derivation stays
        #: empty for the lifetime of the controller — repeated misses (e.g.
        #: packets dropped on every repetition of a trace) skip the engine
        #: entirely.  Disabled while recording events, where each insertion
        #: must reach the historical log.
        self._empty_responses: set = set()
        #: Lazily-built static inertness probe (see
        #: :class:`repro.controllers.batching.PacketInInertProbe`).
        self._inert_probe = None
        self.engine = self._build_engine()

    # ------------------------------------------------------------------
    # Engine lifecycle
    # ------------------------------------------------------------------

    def _build_engine(self) -> Engine:
        engine = Engine(self.program, record_events=self.record_events)
        for schema in self.mapping.schemas():
            engine.register_schema(schema)
        for schema in self.extra_schemas:
            engine.register_schema(schema)
        if self.static_tuples:
            engine.insert_many(list(self.static_tuples))
        return engine

    def reset(self):
        self._empty_responses = set()
        self._inert_probe = None
        self.engine = self._build_engine()

    def rebind_program(self, program: Program):
        """Point the controller at a program its engine already evaluates.

        Warm candidate switching swaps the *engine's* rules in place
        (:meth:`Engine.apply_program_delta` after a checkpoint restore);
        this drops every per-program cache — batch-safety verdicts, the
        empty-response memo, the inertness probe — so they are re-derived
        for the new rule set.  The engine itself is left untouched.
        """
        self.program = program
        self._engine_batch_safe = None
        self._batch_replay_safe = None
        self._empty_responses = set()
        self._inert_probe = None

    # ------------------------------------------------------------------
    # Controller interface
    # ------------------------------------------------------------------

    def on_start(self, network) -> List[object]:
        """Install flow entries for any flow tuples already in the engine.

        This is how "manually installed" flow entries (the InsertTuple repair
        of Table 2 candidate A) reach the switches: they are passed to the
        controller as static tuples and pushed proactively here.
        """
        messages: List[object] = []
        for tup in self.engine.tuples(self.mapping.flow_table):
            translated = self.mapping.flow_entry_from_tuple(
                tup, self.priority, self.tags)
            if translated is not None:
                switch_id, entry = translated
                messages.append(FlowMod(switch_id, entry))
        return messages

    def handle_packet_in(self, event: PacketInEvent) -> List[object]:
        packet_in = self.mapping.packet_in_tuple(event)
        if packet_in.values in self._empty_responses:
            return []
        derived = self.engine.insert(packet_in)
        if not derived and self._may_memoise_empty():
            self._empty_responses.add(packet_in.values)
        response = self._translate_derived(event, derived)
        self._consume_packet_outs()
        return response.messages_for(event.packet)

    def handle_packet_in_batch(self, events: Sequence[PacketInEvent]
                               ) -> List["PacketInResponse"]:
        """Handle a burst of PacketIn events, sharing one engine fixpoint.

        Equivalent to calling :meth:`handle_packet_in` for each event in
        order.  When the program is batch-order-independent (see
        :mod:`repro.controllers.batching`), all first-occurrence PacketIn
        tuples are inserted with a single :meth:`Engine.insert_batch`
        fixpoint; repeated tuples and unsafe programs fall back to per-event
        insertion, so the responses are always bit-identical to the
        sequential ones.
        """
        responses: List[Optional[PacketInResponse]] = [None] * len(events)
        tuples = [self.mapping.packet_in_tuple(event) for event in events]
        empty = PacketInResponse(flow_mods=(), packet_out_specs=(),
                                 derived_any=False)
        first_occurrence: Dict[Tuple, int] = {}
        pending: List[int] = []
        for index, tup in enumerate(tuples):
            if tup.values in self._empty_responses:
                responses[index] = empty
            elif tup.values not in first_occurrence:
                first_occurrence[tup.values] = index
                pending.append(index)
        if self.engine_batch_safe and len(pending) > 1:
            derived_lists = self.engine.insert_batch(
                [tuples[i] for i in pending],
                consumed_tables=(self.mapping.packet_out_table,))
            memoise = self._may_memoise_empty()
            for index, derived in zip(pending, derived_lists):
                if not derived and memoise:
                    self._empty_responses.add(tuples[index].values)
                responses[index] = self._translate_derived(events[index], derived)
            self._consume_packet_outs()
            pending = []
        for index in range(len(events)):
            if responses[index] is None:
                derived = self.engine.insert(tuples[index])
                if not derived and self._may_memoise_empty():
                    self._empty_responses.add(tuples[index].values)
                responses[index] = self._translate_derived(events[index],
                                                           derived)
                self._consume_packet_outs()
        return responses

    def _translate_derived(self, event: PacketInEvent,
                           derived: Sequence[NDTuple]) -> "PacketInResponse":
        """Turn one event's newly-derived tuples into control messages."""
        flow_mods: List[FlowMod] = []
        packet_out_specs: List[Tuple[int, int]] = []
        packet_out_for_switch = False
        matched_ports: List[int] = []
        for tup in derived:
            if tup.table == self.mapping.flow_table:
                translated = self.mapping.flow_entry_from_tuple(
                    tup, self.priority, self.tags)
                if translated is None:
                    continue
                switch_id, entry = translated
                flow_mods.append(FlowMod(switch_id, entry))
                if switch_id == event.switch_id and entry.matches(event.packet,
                                                                  event.in_port):
                    matched_ports.append(entry.out_port)
            elif tup.table == self.mapping.packet_out_table:
                switch_id, port = tup.values[0], tup.values[-1]
                if isinstance(switch_id, int) and isinstance(port, int):
                    packet_out_specs.append((switch_id, port))
                    if switch_id == event.switch_id:
                        packet_out_for_switch = True
        if self.auto_packet_out and not packet_out_for_switch:
            forward_ports = [p for p in matched_ports if p != DROP_PORT]
            if forward_ports:
                packet_out_specs.append((event.switch_id, forward_ports[0]))
        return PacketInResponse(flow_mods=tuple(flow_mods),
                                packet_out_specs=tuple(packet_out_specs),
                                derived_any=bool(derived))

    def packet_in_provably_inert(self, values: Tuple) -> bool:
        """May a PacketIn with this tuple key be answered with an empty
        response without consulting the engine?

        ``True`` only when the static analysis proves no rule can fire for
        the key (see :class:`repro.controllers.batching.PacketInInertProbe`)
        — then a live insertion would leave the engine untouched (the
        PacketIn tuple is transient) and return no derivations, so skipping
        it is behaviour-preserving.  Requires a transient PacketIn schema
        and is only consulted on replay paths (``record_events=False``);
        recording controllers must log every insertion.
        """
        if self.record_events:
            return False
        schema = self.engine.database.schema(self.mapping.packet_in_table)
        if schema is None or schema.persistent:
            return False
        if self._inert_probe is None:
            self._inert_probe = batching.PacketInInertProbe(
                self.program, self.mapping.packet_in_table,
                schemas=self.engine.database.schemas(),
                static_tuples=self.static_tuples,
                flow_table=self.mapping.flow_table,
                closed_world=True)
        return self._inert_probe.inert(values)

    def probe_counters(self) -> Dict[str, int]:
        """Hit/miss counters of the static inertness probe (zero until the
        probe is first consulted); reported through ``warm_engine_stats``."""
        if self._inert_probe is None:
            return {"inert_probe_hits": 0, "inert_probe_misses": 0}
        return {"inert_probe_hits": self._inert_probe.hits,
                "inert_probe_misses": self._inert_probe.misses}

    def _may_memoise_empty(self) -> bool:
        """Empty responses are permanent only when PacketIns join nothing
        that replay can change, and skipping inserts must not starve the
        event log consumed by provenance."""
        return not self.record_events and self.engine_batch_safe

    def _consume_packet_outs(self):
        # Packet-out tuples are one-shot messages: consume them so they do
        # not accumulate in the engine database between PacketIns.
        for stale in list(self.engine.tuples(self.mapping.packet_out_table)):
            self.engine.consume(stale)

    # ------------------------------------------------------------------
    # Batched-replay protocol (consumed by NetworkSimulator.run_trace)
    # ------------------------------------------------------------------

    @property
    def engine_batch_safe(self) -> bool:
        """May distinct PacketIn tuples share one engine fixpoint?

        Joint fixpoints keep a *different event log* than sequential
        insertion (``Engine.insert_batch``), so recording controllers —
        whose logs feed provenance — always answer ``False`` and fall back
        to per-event insertion.
        """
        if self.record_events:
            return False
        if self._engine_batch_safe is None:
            schemas = self.engine.database.schemas()
            self._engine_batch_safe = batching.engine_batch_safe(
                self.program, self.mapping.packet_in_table,
                self.mapping.packet_out_table, schemas)
        return self._engine_batch_safe

    def batch_replay_adapter(self) -> Optional["_BatchReplayAdapter"]:
        """Adapter for batched trace replay, or ``None`` when the program's
        responses could interact across a burst (then replay is per-packet)."""
        if self.record_events:
            return None
        if self._batch_replay_safe is None:
            schemas = self.engine.database.schemas()
            self._batch_replay_safe = batching.batch_replay_safe(
                self.program, self.mapping, schemas,
                static_tuples=self.static_tuples)
        if not self._batch_replay_safe:
            return None
        return _BatchReplayAdapter(self)

    # ------------------------------------------------------------------
    # Introspection used by the debugger
    # ------------------------------------------------------------------

    def flow_table_tuples(self) -> List[NDTuple]:
        return sorted(self.engine.tuples(self.mapping.flow_table),
                      key=lambda t: t.values)

    def history_tuples(self) -> List[NDTuple]:
        """Base tuples observed by the controller (for the HistoryIndex)."""
        from ..ndlog.events import INSERT

        out = []
        seen = set()
        for event in self.engine.events:
            if event.kind == INSERT and event.tuple not in seen:
                seen.add(event.tuple)
                out.append(event.tuple)
        return out
