"""Declarative (NDlog) controller — the RapidNet substitute.

The controller runs an NDlog program reactively: every ``PacketIn`` event is
turned into a ``PacketIn`` tuple and inserted into the engine; tuples derived
into the flow-entry table become ``FlowMod`` messages and tuples derived into
the packet-out table become ``PacketOut`` messages, exactly like the paper's
proxy "translates NDlog tuples into OpenFlow messages and vice versa".

Because different scenarios use different packet headers, the mapping between
packets and tuples is configurable through :class:`FieldMapping`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..ndlog.ast import Program, WILDCARD
from ..ndlog.engine import Engine
from ..ndlog.tuples import NDTuple, TableSchema
from ..sdn.controller import Controller, FlowMod, PacketInEvent, PacketOut
from ..sdn.packets import Packet
from ..sdn.switch import DROP_PORT, FlowEntry


#: Name of the pseudo packet field carrying the ingress port.
IN_PORT_FIELD = "in_port"

CONTROLLER_NODE = "C"


@dataclass(frozen=True)
class FieldMapping:
    """Mapping between packets and the controller program's tuples.

    Attributes:
        packet_in_fields: packet header fields (in order) that populate the
            ``PacketIn`` tuple after the leading ``(@C, Swi)`` columns.
        flow_entry_layout: names of the flow-entry table's columns after the
            leading switch column.  Each is either a packet header field (a
            match column) or the special name ``"out_port"`` (the action).
        packet_in_table / flow_table / packet_out_table: table names.
    """

    packet_in_fields: Tuple[str, ...] = ("dst_port",)
    flow_entry_layout: Tuple[str, ...] = ("dst_port", "out_port")
    packet_in_table: str = "PacketIn"
    flow_table: str = "FlowTable"
    packet_out_table: str = "PacketOut"

    def packet_in_tuple_from(self, switch_id: int, packet: Packet,
                             in_port: Optional[int] = None) -> NDTuple:
        header = dict(packet.header())
        header[IN_PORT_FIELD] = in_port if in_port is not None else 0
        values = [CONTROLLER_NODE, switch_id]
        values.extend(header[name] for name in self.packet_in_fields)
        return NDTuple(self.packet_in_table, tuple(values))

    def packet_in_tuple(self, event: PacketInEvent) -> NDTuple:
        header = dict(event.packet.header())
        header[IN_PORT_FIELD] = event.in_port if event.in_port is not None else 0
        values = [CONTROLLER_NODE, event.switch_id]
        values.extend(header[name] for name in self.packet_in_fields)
        return NDTuple(self.packet_in_table, tuple(values))

    def flow_entry_from_tuple(self, tup: NDTuple, priority: int,
                              tags: Tuple[str, ...] = ()) -> Optional[Tuple[int, FlowEntry]]:
        """Translate a flow-entry tuple into (switch id, FlowEntry)."""
        if tup.arity != len(self.flow_entry_layout) + 1:
            return None
        switch_id = tup.values[0]
        match: Dict[str, object] = {}
        out_port: Optional[int] = None
        for column, name in enumerate(self.flow_entry_layout, start=1):
            value = tup.values[column]
            if name == "out_port":
                out_port = value
            elif value != WILDCARD:
                match[name] = value
        if out_port is None or not isinstance(switch_id, int):
            return None
        if not isinstance(out_port, int):
            return None
        entry = FlowEntry.create(match, out_port, priority=priority, tags=tags)
        return switch_id, entry

    def schemas(self) -> List[TableSchema]:
        packet_in = TableSchema(
            self.packet_in_table,
            ("C", "Swi") + tuple(self.packet_in_fields),
            persistent=False)
        flow = TableSchema(
            self.flow_table, ("Swi",) + tuple(self.flow_entry_layout))
        # No schema is registered for the packet-out table: repairs may
        # re-target rules with differently-shaped heads into it (Q4), and the
        # controller only reads the first (switch) and last (port) columns.
        return [packet_in, flow]


#: The mapping used by the Figure 2 load-balancer program.
FIGURE2_MAPPING = FieldMapping(
    packet_in_fields=("dst_port",),
    flow_entry_layout=("dst_port", "out_port"))

#: A five-tuple mapping used by the richer scenarios (Q2-Q5).
FIVE_TUPLE_MAPPING = FieldMapping(
    packet_in_fields=("src_ip", "dst_ip", "src_port", "dst_port", IN_PORT_FIELD,
                      "src_mac", "dst_mac"),
    flow_entry_layout=("src_ip", "dst_ip", "src_port", "dst_port", "out_port"))

#: Registry of the named mappings (used by tests and scenario definitions).
FIELD_MAPPINGS = {
    "figure2": FIGURE2_MAPPING,
    "five_tuple": FIVE_TUPLE_MAPPING,
}


class NDlogController(Controller):
    """Runs an NDlog program as a reactive SDN controller application."""

    name = "ndlog"

    def __init__(self, program: Program,
                 mapping: FieldMapping = FIGURE2_MAPPING,
                 static_tuples: Sequence[NDTuple] = (),
                 extra_schemas: Sequence[TableSchema] = (),
                 auto_packet_out: bool = True,
                 priority: int = 10,
                 tags: Tuple[str, ...] = (),
                 record_events: bool = True):
        self.program = program
        self.mapping = mapping
        self.static_tuples = list(static_tuples)
        self.extra_schemas = list(extra_schemas)
        self.auto_packet_out = auto_packet_out
        self.priority = priority
        self.tags = tags
        self.record_events = record_events
        self.engine = self._build_engine()

    # ------------------------------------------------------------------
    # Engine lifecycle
    # ------------------------------------------------------------------

    def _build_engine(self) -> Engine:
        engine = Engine(self.program, record_events=self.record_events)
        for schema in self.mapping.schemas():
            engine.register_schema(schema)
        for schema in self.extra_schemas:
            engine.register_schema(schema)
        if self.static_tuples:
            engine.insert_many(list(self.static_tuples))
        return engine

    def reset(self):
        self.engine = self._build_engine()

    # ------------------------------------------------------------------
    # Controller interface
    # ------------------------------------------------------------------

    def on_start(self, network) -> List[object]:
        """Install flow entries for any flow tuples already in the engine.

        This is how "manually installed" flow entries (the InsertTuple repair
        of Table 2 candidate A) reach the switches: they are passed to the
        controller as static tuples and pushed proactively here.
        """
        messages: List[object] = []
        for tup in self.engine.tuples(self.mapping.flow_table):
            translated = self.mapping.flow_entry_from_tuple(
                tup, self.priority, self.tags)
            if translated is not None:
                switch_id, entry = translated
                messages.append(FlowMod(switch_id, entry))
        return messages

    def handle_packet_in(self, event: PacketInEvent) -> List[object]:
        packet_in = self.mapping.packet_in_tuple(event)
        derived = self.engine.insert(packet_in)
        messages: List[object] = []
        packet_out_for_switch = False
        matched_ports: List[int] = []
        for tup in derived:
            if tup.table == self.mapping.flow_table:
                translated = self.mapping.flow_entry_from_tuple(
                    tup, self.priority, self.tags)
                if translated is None:
                    continue
                switch_id, entry = translated
                messages.append(FlowMod(switch_id, entry))
                if switch_id == event.switch_id and entry.matches(event.packet,
                                                                  event.in_port):
                    matched_ports.append(entry.out_port)
            elif tup.table == self.mapping.packet_out_table:
                switch_id, port = tup.values[0], tup.values[-1]
                if isinstance(switch_id, int) and isinstance(port, int):
                    messages.append(PacketOut(switch_id, port, event.packet))
                    if switch_id == event.switch_id:
                        packet_out_for_switch = True
        if self.auto_packet_out and not packet_out_for_switch:
            forward_ports = [p for p in matched_ports if p != DROP_PORT]
            if forward_ports:
                messages.append(PacketOut(event.switch_id, forward_ports[0],
                                          event.packet))
        # Packet-out tuples are one-shot messages: consume them so they do
        # not accumulate in the engine database between PacketIns.
        for stale in list(self.engine.tuples(self.mapping.packet_out_table)):
            self.engine.consume(stale)
        return messages

    # ------------------------------------------------------------------
    # Introspection used by the debugger
    # ------------------------------------------------------------------

    def flow_table_tuples(self) -> List[NDTuple]:
        return sorted(self.engine.tuples(self.mapping.flow_table),
                      key=lambda t: t.values)

    def history_tuples(self) -> List[NDTuple]:
        """Base tuples observed by the controller (for the HistoryIndex)."""
        from ..ndlog.events import INSERT

        out = []
        seen = set()
        for event in self.engine.events:
            if event.kind == INSERT and event.tuple not in seen:
                seen.add(event.tuple)
                out.append(event.tuple)
        return out
