"""Constraint types for the mini-solver.

The constraint language matches what meta provenance generates (Section 3.4
of the paper): comparisons between terms (``==``, ``!=``, ``<``, ``>``,
``<=``, ``>=``) and implications used for primary-key consistency
(``D.x == D0.x implies D.y == 1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from .terms import (
    SymVar,
    Term,
    WILDCARD,
    evaluate_term,
    is_constant,
    render_term,
    term_variables,
)


NEGATIONS = {
    "==": "!=",
    "!=": "==",
    "<": ">=",
    ">": "<=",
    "<=": ">",
    ">=": "<",
}

COMPARISON_OPS = tuple(NEGATIONS)


class Constraint:
    """Base class for solver constraints."""

    def variables(self):
        raise NotImplementedError

    def evaluate(self, assignment):
        """Return True/False under a complete assignment, or ``None`` if a
        referenced variable is unassigned."""
        raise NotImplementedError

    def negated(self) -> "Constraint":
        raise NotImplementedError


def _compare(op: str, left, right):
    if left is None or right is None:
        return None
    wildcard = left == WILDCARD or right == WILDCARD
    if op == "==":
        return True if wildcard else left == right
    if op == "!=":
        return False if wildcard else left != right
    if wildcard:
        return False
    if not isinstance(left, type(right)) and not (
            isinstance(left, (int, bool)) and isinstance(right, (int, bool))):
        # Ordered comparison between incompatible types never holds.
        return False
    if op == "<":
        return left < right
    if op == ">":
        return left > right
    if op == "<=":
        return left <= right
    if op == ">=":
        return left >= right
    raise ValueError(f"unknown comparison operator {op!r}")


@dataclass(frozen=True)
class Comparison(Constraint):
    """A binary comparison between two terms."""

    op: str
    left: Term
    right: Term

    def __post_init__(self):
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator {self.op!r}")

    def variables(self):
        return term_variables(self.left) | term_variables(self.right)

    def evaluate(self, assignment):
        left = evaluate_term(self.left, assignment)
        right = evaluate_term(self.right, assignment)
        return _compare(self.op, left, right)

    def negated(self):
        return Comparison(NEGATIONS[self.op], self.left, self.right)

    def is_ground(self):
        return is_constant(self.left) and is_constant(self.right)

    def __str__(self):
        return f"{render_term(self.left)} {self.op} {render_term(self.right)}"


@dataclass(frozen=True)
class Implication(Constraint):
    """``antecedent -> consequent`` over conjunctions of comparisons.

    Used for the primary-key constraints of Section 3.4: if two tuple
    references agree on the key columns, they must agree on the rest.
    """

    antecedent: Tuple[Comparison, ...]
    consequent: Tuple[Comparison, ...]

    def variables(self):
        out = set()
        for comparison in self.antecedent + self.consequent:
            out |= comparison.variables()
        return out

    def evaluate(self, assignment):
        antecedent_values = [c.evaluate(assignment) for c in self.antecedent]
        if any(v is False for v in antecedent_values):
            return True
        if any(v is None for v in antecedent_values):
            return None
        consequent_values = [c.evaluate(assignment) for c in self.consequent]
        if any(v is False for v in consequent_values):
            return False
        if any(v is None for v in consequent_values):
            return None
        return True

    def negated(self):
        # not (A -> B) == A and not B; we approximate by keeping the
        # antecedent and negating the first consequent (sufficient for the
        # primary-key constraints the meta provenance generates).
        negated_consequent = tuple(c.negated() for c in self.consequent[:1])
        return Implication(self.antecedent, negated_consequent)

    def __str__(self):
        ant = " and ".join(str(c) for c in self.antecedent)
        con = " and ".join(str(c) for c in self.consequent)
        return f"({ant}) -> ({con})"


def eq(left: Term, right: Term) -> Comparison:
    return Comparison("==", left, right)


def ne(left: Term, right: Term) -> Comparison:
    return Comparison("!=", left, right)


def lt(left: Term, right: Term) -> Comparison:
    return Comparison("<", left, right)


def gt(left: Term, right: Term) -> Comparison:
    return Comparison(">", left, right)


def le(left: Term, right: Term) -> Comparison:
    return Comparison("<=", left, right)


def ge(left: Term, right: Term) -> Comparison:
    return Comparison(">=", left, right)


def comparison_from_ndlog(op: str, left: Term, right: Term) -> Comparison:
    """Build a comparison from an NDlog operator string."""
    return Comparison(op, left, right)
