"""Mini constraint solver used by the meta provenance constraint pools.

This subpackage is the reproduction's substitute for the Z3 binding used by
the paper's prototype.  See :mod:`repro.solver.solver` for details.
"""

from .constraints import (
    COMPARISON_OPS,
    Comparison,
    Constraint,
    Implication,
    NEGATIONS,
    comparison_from_ndlog,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
)
from .solver import Model, Solver, UnsatisfiableError, solve
from .terms import Offset, SymVar, Term, WILDCARD, evaluate_term, is_constant, term_variables

__all__ = [
    "COMPARISON_OPS", "Comparison", "Constraint", "Implication", "NEGATIONS",
    "comparison_from_ndlog", "eq", "ge", "gt", "le", "lt", "ne",
    "Model", "Solver", "UnsatisfiableError", "solve",
    "Offset", "SymVar", "Term", "WILDCARD", "evaluate_term", "is_constant",
    "term_variables",
]
