"""Terms for the constraint mini-solver.

The solver reasons about *terms*, which are either symbolic variables
(:class:`SymVar`), concrete constants (Python ints or strings, plus the
wildcard sentinel), or a variable plus an integer offset (:class:`Offset`,
used for constraints such as ``x + 1 == y`` that arise from arithmetic in
selection predicates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


#: Wildcard constant (mirrors :data:`repro.ndlog.ast.WILDCARD`).
WILDCARD = "*"


@dataclass(frozen=True)
class SymVar:
    """A symbolic variable, identified by name.

    Names follow the paper's convention of ``<Tuple>.<attribute>`` — e.g.
    ``Const0.Val`` or ``A0.x`` — but any string is accepted.
    """

    name: str

    def __str__(self):
        return self.name

    def plus(self, offset: int) -> "Offset":
        return Offset(self, offset)


@dataclass(frozen=True)
class Offset:
    """A symbolic variable plus a constant integer offset (``var + k``)."""

    var: SymVar
    offset: int

    def __str__(self):
        sign = "+" if self.offset >= 0 else "-"
        return f"{self.var} {sign} {abs(self.offset)}"


Term = Union[SymVar, Offset, int, str]


def is_constant(term: Term) -> bool:
    """True if the term is a concrete value (int, string or wildcard)."""
    return not isinstance(term, (SymVar, Offset))


def term_variables(term: Term):
    """Return the set of :class:`SymVar` appearing in the term."""
    if isinstance(term, SymVar):
        return {term}
    if isinstance(term, Offset):
        return {term.var}
    return set()


def evaluate_term(term: Term, assignment) -> object:
    """Evaluate a term under a {SymVar: value} assignment.

    Returns ``None`` if the term references an unassigned variable.
    """
    if isinstance(term, SymVar):
        return assignment.get(term)
    if isinstance(term, Offset):
        base = assignment.get(term.var)
        if base is None or not isinstance(base, int):
            return None
        return base + term.offset
    return term


def render_term(term: Term) -> str:
    if isinstance(term, str) and term != WILDCARD:
        return repr(term)
    return str(term)
