"""Extraction of program-based meta tuples from an NDlog program.

The meta tuple generator of the paper's prototype ("tuple generators",
Section 5.1) turns a controller program into meta tuples once, and the
runtime log into runtime-based meta tuples on demand.  This module implements
the program side; the runtime side is derived from the engine history by
:class:`repro.meta.history.HistoryIndex`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ndlog.ast import BinOp, Const, Program, Rule, Var
from .metatuples import (
    AssignMeta,
    ConstMeta,
    HeadFuncMeta,
    MetaLocation,
    OperMeta,
    PredFuncMeta,
)


@dataclass
class MetaProgram:
    """All program-based meta tuples of a program, indexed by rule."""

    program: Program
    heads: List[HeadFuncMeta] = field(default_factory=list)
    predicates: List[PredFuncMeta] = field(default_factory=list)
    constants: List[ConstMeta] = field(default_factory=list)
    operators: List[OperMeta] = field(default_factory=list)
    assignments: List[AssignMeta] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_program(cls, program: Program) -> "MetaProgram":
        meta = cls(program=program)
        for rule in program.rules:
            meta._extract_rule(rule)
        return meta

    def _extract_rule(self, rule: Rule):
        self.heads.append(HeadFuncMeta(
            rule=rule.name,
            table=rule.head.table,
            args=tuple(a.to_ndlog() for a in rule.head.args),
            location=MetaLocation(rule.name, "head", 0),
        ))
        for index, atom in enumerate(rule.body):
            self.predicates.append(PredFuncMeta(
                rule=rule.name,
                table=atom.table,
                args=tuple(a.to_ndlog() for a in atom.args),
                location=MetaLocation(rule.name, "body", index),
            ))
        for index, selection in enumerate(rule.selections):
            sid = selection.to_ndlog()
            left_id = f"{rule.name}.s{index}.l"
            right_id = f"{rule.name}.s{index}.r"
            self.operators.append(OperMeta(
                rule=rule.name,
                selection_id=sid,
                left_id=left_id,
                right_id=right_id,
                op=selection.op,
                location=MetaLocation(rule.name, "selection", index, "op"),
            ))
            self._extract_expression(rule.name, selection.left,
                                     MetaLocation(rule.name, "selection", index, "left"),
                                     left_id)
            self._extract_expression(rule.name, selection.right,
                                     MetaLocation(rule.name, "selection", index, "right"),
                                     right_id)
        for index, assignment in enumerate(rule.assignments):
            expr_id = f"{rule.name}.a{index}"
            self.assignments.append(AssignMeta(
                rule=rule.name,
                var=assignment.var,
                expr_id=expr_id,
                expr_text=assignment.expr.to_ndlog(),
                location=MetaLocation(rule.name, "assignment", index),
            ))
            self._extract_expression(rule.name, assignment.expr,
                                     MetaLocation(rule.name, "assignment", index, "expr"),
                                     expr_id)

    def _extract_expression(self, rule_name, expr, location, expr_id):
        if isinstance(expr, Const):
            self.constants.append(ConstMeta(
                rule=rule_name, const_id=expr_id, value=expr.value,
                location=location))
        elif isinstance(expr, BinOp):
            self._extract_expression(rule_name, expr.left, location, expr_id + ".l")
            self._extract_expression(rule_name, expr.right, location, expr_id + ".r")
        # Variables contribute no Const meta tuples.

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def for_rule(self, rule_name: str) -> Dict[str, list]:
        """Return all meta tuples of one rule, grouped by kind."""
        return {
            "heads": [m for m in self.heads if m.rule == rule_name],
            "predicates": [m for m in self.predicates if m.rule == rule_name],
            "constants": [m for m in self.constants if m.rule == rule_name],
            "operators": [m for m in self.operators if m.rule == rule_name],
            "assignments": [m for m in self.assignments if m.rule == rule_name],
        }

    def all_tuples(self) -> List[object]:
        return (list(self.heads) + list(self.predicates) + list(self.constants)
                + list(self.operators) + list(self.assignments))

    def count(self) -> int:
        return len(self.all_tuples())

    def constants_in_selection(self, rule_name: str, selection_index: int) -> List[ConstMeta]:
        return [
            m for m in self.constants
            if m.rule == rule_name
            and m.location.component == "selection"
            and m.location.index == selection_index
        ]

    def operator_of_selection(self, rule_name: str, selection_index: int) -> Optional[OperMeta]:
        for meta in self.operators:
            if meta.rule == rule_name and meta.location.index == selection_index:
                return meta
        return None

    def program_constants(self) -> List[object]:
        """All constant values used anywhere in the program (candidate pool)."""
        return [m.value for m in self.constants]
