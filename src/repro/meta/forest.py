"""Meta provenance forests.

A meta provenance *tree* explains one way of making the symptom go away (for
a missing tuple) or one derivation of an unwanted tuple.  Because the same
effect can often be achieved in several ways — different rules could derive
the missing tuple, a failing selection can be fixed by changing a constant
or the operator — the explorer maintains a *forest*: whenever a vertex has k
individually-sufficient children, the current tree is forked into k copies
(Section 3.3 of the paper).

Trees carry their accumulated cost, constraint pool and program edits, so a
completed tree is exactly one repair candidate plus its explanation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .constraints import ConstraintPool


# Vertex polarity.
EXIST = "EXIST"
NEXIST = "NEXIST"

_vertex_ids = itertools.count(1)
_tree_ids = itertools.count(1)


@dataclass(frozen=True)
class MetaVertex:
    """A vertex of a meta provenance tree.

    ``subject`` may be a runtime tuple, a tuple pattern, or a program-based
    meta tuple (Const, Oper, PredFunc, ...).  ``kind`` is ``EXIST`` for facts
    that held during the recorded execution and ``NEXIST`` for facts that
    were missing and must be brought into existence by the repair.
    """

    kind: str
    subject: object
    rule: Optional[str] = None
    note: str = ""
    vertex_id: int = field(default_factory=lambda: next(_vertex_ids))

    def label(self) -> str:
        rule = f" [{self.rule}]" if self.rule else ""
        note = f" ({self.note})" if self.note else ""
        return f"{self.kind}[{self.subject}]{rule}{note}"

    def __str__(self):
        return self.label()


class MetaTree:
    """A (possibly partial) meta provenance tree."""

    def __init__(self, root: MetaVertex, pool: Optional[ConstraintPool] = None,
                 cost: float = 0.0):
        self.tree_id = next(_tree_ids)
        self.root = root
        self.pool = pool if pool is not None else ConstraintPool()
        self.cost = cost
        self.edits: List[object] = []
        self._vertices: Dict[int, MetaVertex] = {root.vertex_id: root}
        self._children: Dict[int, List[int]] = {root.vertex_id: []}
        self.unexpanded: List[MetaVertex] = [root]
        self.completed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_vertex(self, vertex: MetaVertex) -> MetaVertex:
        self._vertices.setdefault(vertex.vertex_id, vertex)
        self._children.setdefault(vertex.vertex_id, [])
        return vertex

    def add_child(self, parent: MetaVertex, child: MetaVertex) -> MetaVertex:
        self.add_vertex(parent)
        self.add_vertex(child)
        if child.vertex_id not in self._children[parent.vertex_id]:
            self._children[parent.vertex_id].append(child.vertex_id)
        return child

    def mark_expanded(self, vertex: MetaVertex):
        self.unexpanded = [v for v in self.unexpanded if v.vertex_id != vertex.vertex_id]

    def mark_unexpanded(self, vertex: MetaVertex):
        if all(v.vertex_id != vertex.vertex_id for v in self.unexpanded):
            self.unexpanded.append(vertex)

    def add_cost(self, amount: float):
        self.cost += amount

    def record_edit(self, edit) -> None:
        self.edits.append(edit)

    def fork(self) -> "MetaTree":
        """Create a copy of this tree that can evolve independently."""
        clone = MetaTree(self.root, pool=self.pool.copy(), cost=self.cost)
        clone._vertices = dict(self._vertices)
        clone._children = {k: list(v) for k, v in self._children.items()}
        clone.unexpanded = list(self.unexpanded)
        clone.edits = list(self.edits)
        clone.completed = self.completed
        return clone

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def children(self, vertex: MetaVertex) -> List[MetaVertex]:
        return [self._vertices[i] for i in self._children.get(vertex.vertex_id, [])]

    def vertices(self) -> List[MetaVertex]:
        return list(self._vertices.values())

    def size(self) -> int:
        return len(self._vertices)

    def is_complete(self) -> bool:
        return self.completed or not self.unexpanded

    def find(self, predicate) -> List[MetaVertex]:
        return [v for v in self._vertices.values() if predicate(v)]

    def leaves(self) -> List[MetaVertex]:
        return [v for v in self._vertices.values() if not self._children.get(v.vertex_id)]

    def to_text(self) -> str:
        lines: List[str] = []

        def visit(vertex: MetaVertex, depth: int):
            lines.append("  " * depth + "- " + vertex.label())
            for child in self.children(vertex):
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)

    def __len__(self):
        return self.size()

    def __lt__(self, other: "MetaTree"):
        # Cheaper trees first; ties broken by fewer unexpanded vertices, then
        # by creation order (matches the tie-break rule of Section 3.5).
        return (self.cost, len(self.unexpanded), self.tree_id) < (
            other.cost, len(other.unexpanded), other.tree_id)


class MetaForest:
    """A collection of meta provenance trees for one diagnostic query."""

    def __init__(self, trees: Optional[List[MetaTree]] = None):
        self.trees: List[MetaTree] = list(trees or [])

    def add(self, tree: MetaTree):
        self.trees.append(tree)
        return tree

    def completed(self) -> List[MetaTree]:
        return [t for t in self.trees if t.is_complete()]

    def sorted_by_cost(self) -> List[MetaTree]:
        return sorted(self.trees)

    def cheapest(self) -> Optional[MetaTree]:
        trees = self.sorted_by_cost()
        return trees[0] if trees else None

    def __len__(self):
        return len(self.trees)

    def __iter__(self):
        return iter(self.trees)
