"""Meta provenance: provenance over programs as well as data.

This package implements the paper's primary contribution:

* :mod:`repro.meta.metatuples` / :mod:`repro.meta.metaprogram` — the program
  represented as data (Const, Oper, PredFunc, HeadFunc, Assign meta tuples).
* :mod:`repro.meta.metarules` — the µDlog meta model of Figure 4.
* :mod:`repro.meta.forest` — meta provenance trees and forests.
* :mod:`repro.meta.constraints` — constraint pools (Section 3.4).
* :mod:`repro.meta.costs` — the plausibility cost model (Section 3.5).
* :mod:`repro.meta.explorer` — cost-ordered exploration and repair
  candidate extraction (Figures 5 and 17).
"""

from .constraints import ConstraintPool
from .costs import CostModel, DEFAULT_COSTS, uniform_cost_model
from .explorer import (
    ExistingTupleGoal,
    ExplorationResult,
    ExplorationStats,
    MetaProvenanceExplorer,
    MissingTupleGoal,
)
from .forest import EXIST, MetaForest, MetaTree, MetaVertex, NEXIST
from .history import HistoryIndex
from .metaprogram import MetaProgram
from .metarules import (
    MUDLOG_META_RULES_SOURCE,
    MUDLOG_META_TUPLES,
    NDLOG_META_MODEL_SIZE,
    PYRETIC_META_MODEL_SIZE,
    TREMA_META_MODEL_SIZE,
    meta_model_summary,
    meta_rule_names,
    mudlog_meta_program,
)
from .metatuples import (
    AssignMeta,
    BaseMeta,
    ConstMeta,
    ExprMeta,
    HeadFuncMeta,
    HeadValMeta,
    JoinMeta,
    MetaLocation,
    OperMeta,
    PredFuncMeta,
    SelMeta,
    TupleMeta,
    TuplePredMeta,
)

__all__ = [
    "ConstraintPool", "CostModel", "DEFAULT_COSTS", "uniform_cost_model",
    "ExistingTupleGoal", "ExplorationResult", "ExplorationStats",
    "MetaProvenanceExplorer", "MissingTupleGoal",
    "EXIST", "MetaForest", "MetaTree", "MetaVertex", "NEXIST",
    "HistoryIndex", "MetaProgram",
    "MUDLOG_META_RULES_SOURCE", "MUDLOG_META_TUPLES", "NDLOG_META_MODEL_SIZE",
    "PYRETIC_META_MODEL_SIZE", "TREMA_META_MODEL_SIZE",
    "meta_model_summary", "meta_rule_names", "mudlog_meta_program",
    "AssignMeta", "BaseMeta", "ConstMeta", "ExprMeta", "HeadFuncMeta",
    "HeadValMeta", "JoinMeta", "MetaLocation", "OperMeta", "PredFuncMeta",
    "SelMeta", "TupleMeta", "TuplePredMeta",
]
