"""Meta provenance exploration and repair-candidate extraction.

This module implements the heart of the paper: given a symptom — a tuple
that should exist but does not ("negative symptom"), or a tuple that exists
but should not ("positive symptom") — it explores the meta provenance forest
in cost order and extracts repair candidates (Figures 5 and 17 of the paper).

The search is best-first over partial meta provenance trees: work items are
kept in a priority queue keyed by accumulated cost, so cheap (plausible)
repairs are produced before expensive ones, and exploration can stop as soon
as enough candidates have been found or the cost cut-off is reached.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..ndlog.ast import (
    Atom,
    BinOp,
    COMPARISON_OPERATORS,
    Const,
    Program,
    Rule,
    Var,
    WILDCARD,
)
from ..ndlog.expr import Bindings, try_evaluate, values_equal
from ..ndlog.tuples import NDTuple
from ..repair.candidates import (
    ChangeAssignment,
    ChangeConstant,
    ChangeOperator,
    ChangeRuleHead,
    ChangeTuple,
    CopyRule,
    DeletePredicate,
    DeleteRule,
    DeleteSelection,
    DeleteTuple,
    Edit,
    InsertTuple,
    RepairCandidate,
    deduplicate,
)
from ..solver import Comparison, SymVar, eq
from ..solver.constraints import _compare as _ground_compare
from .constraints import ConstraintPool
from .costs import CostModel
from .forest import EXIST, MetaForest, MetaTree, MetaVertex, NEXIST
from .history import HistoryIndex
from .metaprogram import MetaProgram
from .metatuples import (
    BaseMeta,
    ConstMeta,
    ExprMeta,
    HeadValMeta,
    MetaLocation,
    OperMeta,
    PredFuncMeta,
    SelMeta,
    TupleMeta,
)


# ---------------------------------------------------------------------------
# Goals
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MissingTupleGoal:
    """A negative symptom: "a tuple like this should exist but does not".

    ``constraints`` maps head-column index to the required value.  Columns
    not mentioned are unconstrained (the repair may pick any value).
    """

    table: str
    constraints: Tuple[Tuple[int, object], ...]
    node: object = None
    description: str = ""

    @classmethod
    def create(cls, table: str, constraints: Dict[int, object], node=None,
               description: str = "") -> "MissingTupleGoal":
        return cls(table, tuple(sorted(constraints.items())), node, description)

    def constraints_dict(self) -> Dict[int, object]:
        return dict(self.constraints)

    def __str__(self):
        inner = ", ".join(f"[{i}]={v!r}" for i, v in self.constraints)
        return f"missing {self.table}({inner})"


@dataclass(frozen=True)
class ExistingTupleGoal:
    """A positive symptom: "this tuple exists but should not"."""

    tuple: NDTuple
    description: str = ""

    def __str__(self):
        return f"unwanted {self.tuple}"


# ---------------------------------------------------------------------------
# Results and statistics
# ---------------------------------------------------------------------------


@dataclass
class ExplorationStats:
    """Counters filled in during exploration (feeds the Figure 9a breakdown)."""

    trees_created: int = 0
    trees_completed: int = 0
    work_items_processed: int = 0
    history_lookups: int = 0
    solver_invocations: int = 0
    solver_seconds: float = 0.0
    candidates_generated: int = 0
    candidates_discarded_unsat: int = 0


@dataclass
class ExplorationResult:
    """Candidates plus the forest and statistics of one exploration."""

    goal: object
    candidates: List[RepairCandidate]
    forest: MetaForest
    stats: ExplorationStats

    def best(self) -> Optional[RepairCandidate]:
        return self.candidates[0] if self.candidates else None


# ---------------------------------------------------------------------------
# The explorer
# ---------------------------------------------------------------------------


class MetaProvenanceExplorer:
    """Explores meta provenance and extracts repair candidates."""

    def __init__(self, program: Program, history: HistoryIndex,
                 cost_model: Optional[CostModel] = None,
                 max_candidates: int = 25,
                 max_body_combinations: int = 100,
                 max_constant_variants: int = 4,
                 max_fix_combinations: int = 64,
                 enable_retarget_tasks: bool = True):
        self.program = program
        self.history = history
        self.cost_model = cost_model or CostModel()
        self.meta_program = MetaProgram.from_program(program)
        self.max_candidates = max_candidates
        self.max_body_combinations = max_body_combinations
        self.max_constant_variants = max_constant_variants
        self.max_fix_combinations = max_fix_combinations
        self.enable_retarget_tasks = enable_retarget_tasks
        self._history_value_hints: Optional[List[object]] = None
        self._program_constant_hints: Optional[List[object]] = None
        self._constant_values_cache: Dict[Tuple, List[object]] = {}

    def _solver_value_hints(self) -> List[object]:
        """History values usable as solver hints (computed once per explorer;
        rebuilding this list per selection dominated large-program runs)."""
        if self._history_value_hints is None:
            self._history_value_hints = [
                v for v in self.history.all_values() if isinstance(v, (int, str))]
        return self._history_value_hints

    def _constant_hints(self) -> List[object]:
        if self._program_constant_hints is None:
            self._program_constant_hints = list(self.meta_program.program_constants())
        return self._program_constant_hints

    # ==================================================================
    # Negative symptoms (missing tuples)
    # ==================================================================

    def explore_missing(self, goal: MissingTupleGoal) -> ExplorationResult:
        stats = ExplorationStats()
        forest = MetaForest()
        lookups_before = self.history.lookup_count
        candidates: List[RepairCandidate] = []
        queue: List[Tuple[float, int, object]] = []
        counter = itertools.count()

        def push(cost: float, item):
            heapq.heappush(queue, (cost, next(counter), item))

        # Seed the queue: one tree per rule that could derive the goal table,
        # one "manual tuple" tree, and (optionally) retargeting trees.
        for rule in self.program.rules_deriving(goal.table):
            push(0.0, ("rule", rule))
            if rule.body:
                push(self.cost_model.costs["support_tuple"], ("support", rule))
        push(self.cost_model.costs["insert_tuple"], ("insert", None))
        if self.enable_retarget_tasks:
            for rule in self.program.rules:
                if rule.head.table != goal.table:
                    push(self.cost_model.costs["change_head"], ("retarget", rule))

        seen_signatures = set()
        while queue and len(candidates) < self.max_candidates:
            cost, _, item = heapq.heappop(queue)
            stats.work_items_processed += 1
            kind, payload = item[0], item[1]
            if kind == "candidate":
                candidate = payload
                signature = candidate.signature()
                if signature in seen_signatures:
                    continue
                if self.cost_model.within_cutoff(candidate.cost):
                    seen_signatures.add(signature)
                    candidates.append(candidate)
                    stats.candidates_generated += 1
                    if candidate.tree is not None:
                        forest.add(candidate.tree)
                        stats.trees_completed += 1
                continue
            if not self.cost_model.within_cutoff(cost):
                continue
            if kind == "rule":
                for cand_cost, candidate in self._expand_rule_tree(goal, payload, stats):
                    push(cand_cost, ("candidate", candidate))
            elif kind == "insert":
                candidate = self._manual_insert_candidate(goal, stats)
                if candidate is not None:
                    push(candidate.cost, ("candidate", candidate))
            elif kind == "support":
                for candidate in self._support_insert_candidates(goal, payload):
                    push(candidate.cost, ("candidate", candidate))
            elif kind == "retarget":
                for cand_cost, candidate in self._retarget_candidates(goal, payload, stats):
                    push(cand_cost, ("candidate", candidate))
            stats.trees_created += 1

        stats.history_lookups += self.history.lookup_count - lookups_before
        final = deduplicate(candidates)[: self.max_candidates]
        return ExplorationResult(goal=goal, candidates=final, forest=forest, stats=stats)

    # ------------------------------------------------------------------
    # Rule trees: make an existing rule derive the missing tuple
    # ------------------------------------------------------------------

    def _expand_rule_tree(self, goal: MissingTupleGoal, rule: Rule,
                          stats: ExplorationStats):
        """Yield (cost, candidate) pairs for repairs that make ``rule`` fire."""
        head_bindings = self._head_bindings(rule, goal)
        if head_bindings is None:
            return
        combos = self._body_combinations(rule, head_bindings, stats)
        results = []
        for body_choice in combos:
            results.extend(self._repairs_for_combination(
                goal, rule, head_bindings, body_choice, stats))
        yield from results

    def _head_bindings(self, rule: Rule, goal: MissingTupleGoal) -> Optional[Bindings]:
        """Bind head variables to the goal's required values."""
        bindings = Bindings()
        for index, value in goal.constraints:
            if index >= len(rule.head.args):
                return None
            arg = rule.head.args[index]
            if isinstance(arg, Var):
                if arg.name in bindings and bindings[arg.name] != value:
                    return None
                bindings[arg.name] = value
            elif isinstance(arg, Const) and arg.value != value:
                # A constant head argument contradicting the goal would need a
                # head edit; retarget tasks cover that case.
                return None
        return bindings

    def _body_combinations(self, rule: Rule, head_bindings: Bindings,
                           stats: ExplorationStats):
        """Enumerate joint support choices for all body atoms.

        Each choice is a list with one entry per body atom: either
        ``("tuple", ndtuple)`` for a historical tuple, or
        ``("missing", pattern_dict)`` when no historical tuple matches and a
        base-tuple insertion would be required.
        """
        per_atom_options: List[List[Tuple[str, object]]] = []
        for atom in rule.body:
            matching = self._matching_history(atom, head_bindings)
            options: List[Tuple[str, object]] = [("tuple", t) for t in matching[:20]]
            if not options:
                pattern = self._atom_pattern(atom, head_bindings)
                options = [("missing", pattern)]
            per_atom_options.append(options)
        combos = []
        for combo in itertools.product(*per_atom_options):
            if not self._combo_joins(rule, head_bindings, combo):
                continue
            combos.append(list(combo))
            if len(combos) >= self.max_body_combinations:
                break
        return combos

    def _matching_history(self, atom: Atom, bindings: Bindings) -> List[NDTuple]:
        constraints: Dict[int, object] = {}
        for index, arg in enumerate(atom.args):
            if isinstance(arg, Const):
                constraints[index] = arg.value
            elif isinstance(arg, Var) and arg.name in bindings:
                constraints[index] = bindings[arg.name]
        return self.history.matching(atom.table, constraints)

    def _atom_pattern(self, atom: Atom, bindings: Bindings) -> Dict[int, object]:
        pattern: Dict[int, object] = {}
        for index, arg in enumerate(atom.args):
            if isinstance(arg, Const):
                pattern[index] = arg.value
            elif isinstance(arg, Var) and arg.name in bindings:
                pattern[index] = bindings[arg.name]
        return pattern

    def _combo_joins(self, rule: Rule, head_bindings: Bindings, combo) -> bool:
        """Check that the chosen tuples agree on shared join variables."""
        bindings = Bindings(head_bindings)
        for atom, (kind, payload) in zip(rule.body, combo):
            if kind != "tuple":
                continue
            extended = self._match_atom(atom, payload, bindings)
            if extended is None:
                return False
            bindings = extended
        return True

    def _match_atom(self, atom: Atom, tup: NDTuple, bindings: Bindings) -> Optional[Bindings]:
        if atom.table != tup.table or atom.arity != tup.arity:
            return None
        new = Bindings(bindings)
        for arg, value in zip(atom.args, tup.values):
            if isinstance(arg, Var):
                if arg.name in new and new[arg.name] != value:
                    return None
                new[arg.name] = value
            elif isinstance(arg, Const) and arg.value != value:
                return None
        return new

    def _repairs_for_combination(self, goal: MissingTupleGoal, rule: Rule,
                                 head_bindings: Bindings, body_choice,
                                 stats: ExplorationStats):
        """Produce repair candidates for one joint body-support choice."""
        env = Bindings(head_bindings)
        insert_edits: List[Edit] = []
        base_cost = 0.0
        body_vertices: List[MetaVertex] = []
        for atom, (kind, payload) in zip(rule.body, body_choice):
            if kind == "tuple":
                env = self._match_atom(atom, payload, env) or env
                body_vertices.append(MetaVertex(EXIST, TupleMeta(payload)))
            else:
                missing_tuple = self._materialise_pattern(atom, payload, goal)
                insert_edits.append(InsertTuple(missing_tuple))
                base_cost += self.cost_model.costs["insert_tuple"]
                body_vertices.append(MetaVertex(NEXIST, BaseMeta(missing_tuple)))

        # Per-selection fix options.
        selection_option_sets: List[List[Tuple[List[Edit], float, List[MetaVertex]]]] = []
        for sel_index, selection in enumerate(rule.selections):
            value = try_evaluate(selection.expr, env)
            if value is True:
                selection_option_sets.append([
                    ([], 0.0, [MetaVertex(EXIST, SelMeta(rule.name, "*",
                                                         selection.to_ndlog(), True))])
                ])
                continue
            options = self._selection_fix_options(rule, sel_index, selection, env, stats)
            if not options:
                return []
            selection_option_sets.append(options)

        # Assignment fixes (for goal-constrained head columns set by ":=").
        assignment_options = self._assignment_fix_options(goal, rule, env, stats)
        if assignment_options is None:
            return []
        if assignment_options:
            selection_option_sets.append(assignment_options)

        results = []
        for combination in itertools.islice(
                itertools.product(*selection_option_sets) if selection_option_sets
                else [()],
                self.max_fix_combinations):
            edits: List[Edit] = list(insert_edits)
            vertices: List[MetaVertex] = list(body_vertices)
            cost = base_cost
            for option_edits, option_cost, option_vertices in combination:
                edits.extend(option_edits)
                cost += option_cost
                vertices.extend(option_vertices)
            if not edits:
                # Nothing to change: the rule should already fire, so this
                # combination does not explain the missing tuple.
                continue
            tree = self._build_missing_tree(goal, rule, vertices)
            if not self._pool_satisfiable(tree, goal, rule, env, edits, stats):
                stats.candidates_discarded_unsat += 1
                continue
            candidate = RepairCandidate(edits=tuple(edits), cost=cost, tree=tree)
            results.append((cost, candidate))
        return results

    def _materialise_pattern(self, atom: Atom, pattern: Dict[int, object],
                             goal: MissingTupleGoal) -> NDTuple:
        values = []
        for index in range(atom.arity):
            if index in pattern:
                values.append(pattern[index])
            else:
                values.append(WILDCARD)
        return NDTuple(atom.table, tuple(values))

    # -- selection fixes ----------------------------------------------------

    def _selection_fix_options(self, rule: Rule, sel_index: int, selection,
                               env: Bindings, stats: ExplorationStats):
        """Repair options that make one failing selection true."""
        options: List[Tuple[List[Edit], float, List[MetaVertex]]] = []
        left_is_const = isinstance(selection.left, Const)
        right_is_const = isinstance(selection.right, Const)
        op = selection.op
        oper_meta = self.meta_program.operator_of_selection(rule.name, sel_index)

        # (a) Change the constant operand.
        for side, is_const, other in (("right", right_is_const, selection.left),
                                      ("left", left_is_const, selection.right)):
            if not is_const:
                continue
            const_expr = selection.right if side == "right" else selection.left
            other_value = try_evaluate(other, env)
            if other_value is None:
                continue
            for new_value in self._constant_repair_values(
                    op, side, other_value, rule, sel_index, stats):
                if new_value == const_expr.value:
                    continue
                edit = ChangeConstant(rule.name, sel_index, side,
                                      const_expr.value, new_value)
                cost = self.cost_model.edit_cost(edit)
                vertices = [
                    MetaVertex(NEXIST, SelMeta(rule.name, "*", selection.to_ndlog(), True)),
                    MetaVertex(EXIST, oper_meta) if oper_meta is not None else
                    MetaVertex(EXIST, OperMeta(rule.name, selection.to_ndlog(),
                                               "l", "r", op,
                                               MetaLocation(rule.name, "selection",
                                                            sel_index, "op"))),
                    MetaVertex(NEXIST, ExprMeta(rule.name, "*",
                                                f"{rule.name}.s{sel_index}.{side[0]}",
                                                new_value)),
                    MetaVertex(NEXIST, ConstMeta(rule.name,
                                                 f"{rule.name}.s{sel_index}.{side[0]}",
                                                 new_value,
                                                 MetaLocation(rule.name, "selection",
                                                              sel_index, side))),
                ]
                options.append(([edit], cost, vertices))

        # (b) Change the comparison operator.
        left_value = try_evaluate(selection.left, env)
        right_value = try_evaluate(selection.right, env)
        if left_value is not None and right_value is not None:
            for new_op in COMPARISON_OPERATORS:
                if new_op == op:
                    continue
                if Comparison(new_op, left_value, right_value).evaluate({}) is True:
                    edit = ChangeOperator(rule.name, sel_index, op, new_op)
                    cost = self.cost_model.edit_cost(edit)
                    vertices = [
                        MetaVertex(NEXIST, SelMeta(rule.name, "*",
                                                   selection.to_ndlog(), True)),
                        MetaVertex(NEXIST, OperMeta(
                            rule.name, selection.to_ndlog(), "l", "r", new_op,
                            MetaLocation(rule.name, "selection", sel_index, "op"))),
                    ]
                    options.append(([edit], cost, vertices))

        # (c) Delete the selection predicate altogether.
        edit = DeleteSelection(rule.name, sel_index, selection.to_ndlog())
        cost = self.cost_model.edit_cost(edit)
        options.append(([edit], cost, [
            MetaVertex(NEXIST, SelMeta(rule.name, "*", selection.to_ndlog(), True),
                       note="deleted")]))

        options.sort(key=lambda item: item[1])
        return options

    def _constant_repair_values(self, op: str, side: str, other_value,
                                rule: Rule, sel_index: int,
                                stats: ExplorationStats) -> List[object]:
        """Values for the constant that make ``other_value <op> const`` true.

        The first value comes from the constraint solver (the minimal
        solution); further values are taken from the history and from other
        constants in the program, mirroring how the paper's prototype seeds
        its solver with logged values.

        The result only depends on ``(op, side, other_value)`` — the hint
        pools are fixed per explorer — so it is memoised on that key (pad
        rules in large programs repeat the same selections hundreds of
        times).
        """
        cache_key = (op, side, other_value)
        cached = self._constant_values_cache.get(cache_key)
        if cached is not None:
            return cached
        symbol = SymVar(f"Const.{rule.name}.s{sel_index}.Val")
        pool = ConstraintPool()
        if side == "right":
            pool.add(Comparison(op, other_value, symbol))
        else:
            pool.add(Comparison(op, symbol, other_value))
        hints: List[object] = []
        if isinstance(other_value, int):
            hints.extend([other_value, other_value + 1, other_value - 1])
        hints.extend(self._solver_value_hints())
        hints.extend(self._constant_hints())
        pool.hint(symbol, hints)
        values: List[object] = []
        model = pool.solve()
        stats.solver_invocations += pool.solver_invocations
        stats.solver_seconds += pool.solve_seconds
        if model is not None:
            values.append(model.value_of(symbol.name))
        for hint in hints:
            if len(values) >= self.max_constant_variants:
                break
            if hint in values:
                continue
            # Ground comparison — equivalent to Comparison(...).evaluate({})
            # without allocating a constraint object per hint.
            check = (_ground_compare(op, other_value, hint) if side == "right"
                     else _ground_compare(op, hint, other_value))
            if check is True:
                values.append(hint)
        self._constant_values_cache[cache_key] = values
        return values

    # -- assignment fixes ----------------------------------------------------

    def _assignment_fix_options(self, goal: MissingTupleGoal, rule: Rule,
                                env: Bindings, stats: ExplorationStats):
        """Fix assignments whose value conflicts with the goal constraints.

        Returns ``None`` if a conflicting head column cannot be repaired, an
        empty list if nothing needs fixing, or a list of alternative fix
        options otherwise.
        """
        needed: Dict[str, object] = {}
        for index, value in goal.constraints:
            arg = rule.head.args[index]
            if isinstance(arg, Var):
                needed[arg.name] = value
        options: List[Tuple[List[Edit], float, List[MetaVertex]]] = []
        conflicts = 0
        for assign_index, assignment in enumerate(rule.assignments):
            if assignment.var not in needed:
                continue
            current = try_evaluate(assignment.expr, env)
            target = needed[assignment.var]
            # Strict comparison: an assignment of the wildcard constant does
            # NOT satisfy a concrete goal value (that is precisely the Q5 bug).
            if current is not None and current == target:
                continue
            conflicts += 1
            vertices = [MetaVertex(NEXIST, HeadValMeta(rule.name, "*",
                                                       assignment.var, target))]
            # Option 1: assign the constant the goal requires.
            edit = ChangeAssignment(rule.name, assign_index, assignment.var,
                                    assignment.expr.to_ndlog(), Const(target))
            options.append(([edit], self.cost_model.edit_cost(edit), vertices))
            # Option 2: assign a body variable that already carries the value.
            for var_name, value in env.items():
                if var_name != assignment.var and value == target:
                    var_edit = ChangeAssignment(rule.name, assign_index,
                                                assignment.var,
                                                assignment.expr.to_ndlog(),
                                                Var(var_name))
                    options.append(([var_edit],
                                    self.cost_model.edit_cost(var_edit),
                                    vertices))
        if conflicts and not options:
            return None
        options.sort(key=lambda item: item[1])
        return options

    # -- tree / pool construction --------------------------------------------

    def _build_missing_tree(self, goal: MissingTupleGoal, rule: Rule,
                            vertices: Sequence[MetaVertex]) -> MetaTree:
        root = MetaVertex(NEXIST, TupleMeta(
            NDTuple(goal.table, tuple(
                goal.constraints_dict().get(i, WILDCARD)
                for i in range(self._goal_arity(goal, rule))))), rule=rule.name)
        tree = MetaTree(root)
        nderive = MetaVertex(NEXIST, HeadValMeta(rule.name, "*", "head", goal.table),
                             rule=rule.name, note="missing derivation")
        tree.add_child(root, nderive)
        for vertex in vertices:
            tree.add_child(nderive, vertex)
        tree.mark_expanded(root)
        tree.completed = True
        return tree

    def _goal_arity(self, goal: MissingTupleGoal, rule: Optional[Rule]) -> int:
        max_index = max((i for i, _ in goal.constraints), default=-1)
        if rule is not None:
            return max(len(rule.head.args), max_index + 1)
        return max_index + 1

    def _pool_satisfiable(self, tree: MetaTree, goal: MissingTupleGoal, rule: Rule,
                          env: Bindings, edits: Sequence[Edit],
                          stats: ExplorationStats) -> bool:
        """Build the tree's constraint pool and check satisfiability.

        Every constraint here is ``var == constant``, so satisfiability is a
        direct consistency check: no variable may be forced to two distinct
        non-wildcard values (the wildcard compares equal to everything, like
        in the solver).  The pool is still populated for later tree use.
        """
        pool = tree.pool
        assigned: Dict[str, object] = {}
        satisfiable = True
        def bind(name, value):
            nonlocal satisfiable
            pool.add(eq(SymVar(name), value))
            if value == WILDCARD:
                return
            previous = assigned.setdefault(name, value)
            if previous != value:
                satisfiable = False
        for index, value in goal.constraints:
            arg = rule.head.args[index]
            if isinstance(arg, Var):
                bind(f"{rule.name}.{arg.name}", value)
        for var_name, value in env.items():
            bind(f"{rule.name}.{var_name}", value)
        return satisfiable

    # ------------------------------------------------------------------
    # Manual tuple insertion
    # ------------------------------------------------------------------

    def _manual_insert_candidate(self, goal: MissingTupleGoal,
                                 stats: ExplorationStats) -> Optional[RepairCandidate]:
        arity = self._infer_table_arity(goal)
        if arity == 0:
            return None
        values = tuple(goal.constraints_dict().get(i, WILDCARD) for i in range(arity))
        tup = NDTuple(goal.table, values)
        edit = InsertTuple(tup)
        cost = self.cost_model.edit_cost(edit)
        root = MetaVertex(NEXIST, TupleMeta(tup))
        tree = MetaTree(root, cost=cost)
        tree.add_child(root, MetaVertex(NEXIST, BaseMeta(tup), note="manual insertion"))
        tree.completed = True
        return RepairCandidate(edits=(edit,), cost=cost, tree=tree,
                               description=f"manually insert {tup}")

    def _support_insert_candidates(self, goal: MissingTupleGoal,
                                   rule: Rule) -> List[RepairCandidate]:
        """Standalone base-tuple insertions that give ``rule`` the support
        it would need to derive the goal tuple.

        The per-combination path only proposes an insertion when *no*
        historical tuple matches a body atom, but historical event tuples
        (``PacketIn``) are transient — present in the trace, absent at
        replay setup — so "history matched" does not imply the support will
        exist when the repaired program runs.  These candidates install the
        support statically regardless, one body atom at a time, at a higher
        cost than a direct goal-tuple insertion (the goal column values are
        only indirect evidence for the body tuple's columns).
        """
        head_bindings = self._head_bindings(rule, goal)
        if head_bindings is None:
            return []
        cost = self.cost_model.costs["support_tuple"]
        out: List[RepairCandidate] = []
        for atom in rule.body:
            pattern = self._atom_pattern(atom, head_bindings)
            tup = self._materialise_pattern(atom, pattern, goal)
            if all(value == WILDCARD for value in tup.values):
                continue    # no goal constant reaches this atom
            root = MetaVertex(NEXIST, TupleMeta(NDTuple(goal.table, tuple(
                goal.constraints_dict().get(i, WILDCARD)
                for i in range(self._goal_arity(goal, rule))))), rule=rule.name)
            tree = MetaTree(root, cost=cost)
            tree.add_child(root, MetaVertex(NEXIST, BaseMeta(tup),
                                            note="support insertion"))
            tree.completed = True
            out.append(RepairCandidate(
                edits=(InsertTuple(tup),), cost=cost, tree=tree,
                description=f"insert support tuple {tup} for rule {rule.name}"))
        return out

    def _infer_table_arity(self, goal: MissingTupleGoal) -> int:
        rules = self.program.rules_deriving(goal.table)
        if rules:
            return len(rules[0].head.args)
        historical = self.history.tuples_of(goal.table)
        if historical:
            return historical[0].arity
        return self._goal_arity(goal, None)

    # ------------------------------------------------------------------
    # Retargeting: change/copy another rule's head
    # ------------------------------------------------------------------

    def _retarget_candidates(self, goal: MissingTupleGoal, rule: Rule,
                             stats: ExplorationStats):
        """Candidates that re-point (or copy) a rule whose head table differs.

        Only rules that actually fired in the recorded history and whose
        output is compatible with the goal constraints are considered — this
        is the Q4 pattern, where the fix copies a flow-entry rule and changes
        its head into a ``PacketOut``.
        """
        head_bindings = Bindings()
        combos = self._body_combinations(rule, head_bindings, stats)
        results = []
        for body_choice in combos[:10]:
            if any(kind != "tuple" for kind, _ in body_choice):
                continue
            env = Bindings()
            for atom, (kind, payload) in zip(rule.body, body_choice):
                extended = self._match_atom(atom, payload, env)
                if extended is None:
                    env = None
                    break
                env = extended
            if env is None:
                continue
            if not all(try_evaluate(s.expr, env) is True for s in rule.selections):
                continue
            for assignment in rule.assignments:
                value = try_evaluate(assignment.expr, env)
                if value is not None:
                    env[assignment.var] = value
            head_values = [try_evaluate(arg, env) if not isinstance(arg, Var)
                           else env.get(arg.name) for arg in rule.head.args]
            if not self._head_values_match_goal(head_values, goal):
                continue
            new_head = Atom(goal.table, [a.clone() for a in rule.head.args],
                            location_index=rule.head.location_index)
            change_edit = ChangeRuleHead(rule.name, new_head)
            change_cost = self.cost_model.edit_cost(change_edit)
            results.append((change_cost, RepairCandidate(
                edits=(change_edit,), cost=change_cost,
                tree=self._retarget_tree(goal, rule, "change head"))))
            copied = rule.clone()
            copied.name = f"{rule.name}_copy"
            copied.head = new_head.clone()
            copy_edit = CopyRule(rule.name, copied)
            copy_cost = self.cost_model.edit_cost(copy_edit)
            results.append((copy_cost, RepairCandidate(
                edits=(copy_edit,), cost=copy_cost,
                tree=self._retarget_tree(goal, rule, "copy rule"))))
            break
        return results

    def _head_values_match_goal(self, head_values, goal: MissingTupleGoal) -> bool:
        for index, value in goal.constraints:
            if index >= len(head_values):
                return False
            if head_values[index] is None:
                continue
            if not values_equal(head_values[index], value):
                return False
        return True

    def _retarget_tree(self, goal: MissingTupleGoal, rule: Rule, note: str) -> MetaTree:
        root = MetaVertex(NEXIST, TupleMeta(NDTuple(goal.table, tuple(
            v for _, v in goal.constraints))))
        tree = MetaTree(root)
        tree.add_child(root, MetaVertex(
            NEXIST, HeadValMeta(rule.name, "*", "head", goal.table), note=note))
        tree.completed = True
        return tree

    # ==================================================================
    # Positive symptoms (unwanted tuples)
    # ==================================================================

    def explore_existing(self, goal: ExistingTupleGoal,
                         derivations) -> ExplorationResult:
        """Repairs that make an existing (unwanted) tuple disappear.

        ``derivations`` is the list of
        :class:`~repro.ndlog.events.DerivationRecord` supporting the tuple
        (obtained from the engine / provenance layer).
        """
        stats = ExplorationStats()
        forest = MetaForest()
        lookups_before = self.history.lookup_count
        candidates: List[RepairCandidate] = []
        for record in derivations:
            try:
                rule = self.program.rule_named(record.rule)
            except KeyError:
                continue
            bindings = Bindings(record.bindings_dict())
            tree = self._build_existing_tree(goal, rule, record)
            forest.add(tree)
            candidates.extend(self._break_selection_candidates(rule, bindings, tree, stats))
            candidates.extend(self._delete_structure_candidates(rule, record, tree))
            candidates.extend(self._base_tuple_candidates(rule, record, bindings, tree, stats))
        candidates = [c for c in candidates if self.cost_model.within_cutoff(c.cost)]
        candidates = [c for c in candidates
                      if not self._rederives(goal.tuple, c)]
        stats.candidates_generated = len(candidates)
        stats.history_lookups += self.history.lookup_count - lookups_before
        final = deduplicate(candidates)[: self.max_candidates]
        return ExplorationResult(goal=goal, candidates=final, forest=forest, stats=stats)

    def _build_existing_tree(self, goal: ExistingTupleGoal, rule: Rule,
                             record) -> MetaTree:
        root = MetaVertex(EXIST, TupleMeta(goal.tuple), rule=rule.name)
        tree = MetaTree(root)
        join = MetaVertex(EXIST, HeadValMeta(rule.name, "*", "head", goal.tuple.table),
                          rule=rule.name)
        tree.add_child(root, join)
        for body_tuple in record.body:
            tree.add_child(join, MetaVertex(EXIST, TupleMeta(body_tuple)))
        for index, selection in enumerate(rule.selections):
            tree.add_child(join, MetaVertex(EXIST, SelMeta(
                rule.name, "*", selection.to_ndlog(), True)))
        tree.completed = True
        return tree

    def _break_selection_candidates(self, rule: Rule, bindings: Bindings,
                                    tree: MetaTree, stats: ExplorationStats):
        """Change a constant or operator so a satisfied selection becomes false."""
        out = []
        for sel_index, selection in enumerate(rule.selections):
            left_value = try_evaluate(selection.left, bindings)
            right_value = try_evaluate(selection.right, bindings)
            # Constant change via symbolic negation (Section 4.2).
            for side, expr, other_value in (("right", selection.right, left_value),
                                            ("left", selection.left, right_value)):
                if not isinstance(expr, Const) or other_value is None:
                    continue
                symbol = SymVar(f"Const.{rule.name}.s{sel_index}.Val")
                pool = ConstraintPool()
                if side == "right":
                    pool.add(Comparison(selection.op, other_value, symbol))
                else:
                    pool.add(Comparison(selection.op, symbol, other_value))
                pool.hint(symbol, self._solver_value_hints())
                negation = pool.solve_negation()
                stats.solver_invocations += pool.solver_invocations
                stats.solver_seconds += pool.solve_seconds
                if negation is None:
                    continue
                model, _ = negation
                new_value = model.value_of(symbol.name)
                if new_value is None or new_value == expr.value:
                    continue
                edit = ChangeConstant(rule.name, sel_index, side, expr.value, new_value)
                out.append(RepairCandidate(
                    edits=(edit,), cost=self.cost_model.edit_cost(edit), tree=tree))
            # Operator change making the selection false.
            if left_value is not None and right_value is not None:
                for new_op in COMPARISON_OPERATORS:
                    if new_op == selection.op:
                        continue
                    if Comparison(new_op, left_value, right_value).evaluate({}) is False:
                        edit = ChangeOperator(rule.name, sel_index, selection.op, new_op)
                        out.append(RepairCandidate(
                            edits=(edit,), cost=self.cost_model.edit_cost(edit),
                            tree=tree))
                        break
        return out

    def _delete_structure_candidates(self, rule: Rule, record, tree: MetaTree):
        """Delete a predicate or the whole rule (syntax permitting)."""
        out = []
        if len(rule.body) > 1:
            for index, atom in enumerate(rule.body):
                edit = DeletePredicate(rule.name, index, atom.table)
                out.append(RepairCandidate(
                    edits=(edit,), cost=self.cost_model.edit_cost(edit), tree=tree,
                    notes=("may allow re-derivation via other meta rules",)))
        rule_edit = DeleteRule(rule.name)
        out.append(RepairCandidate(
            edits=(rule_edit,), cost=self.cost_model.edit_cost(rule_edit), tree=tree))
        return out

    def _base_tuple_candidates(self, rule: Rule, record, bindings: Bindings,
                               tree: MetaTree, stats: ExplorationStats):
        """Delete or change the base tuples supporting the derivation."""
        out = []
        for body_tuple in record.body:
            edit = DeleteTuple(body_tuple)
            out.append(RepairCandidate(
                edits=(edit,), cost=self.cost_model.edit_cost(edit), tree=tree))
            # Change a value that feeds a selection so the derivation breaks.
            atom = self._atom_for_tuple(rule, body_tuple)
            if atom is None:
                continue
            for column, arg in enumerate(atom.args):
                if not isinstance(arg, Var):
                    continue
                affected = [s for s in rule.selections if arg.name in s.variables()]
                if not affected:
                    continue
                selection = affected[0]
                symbol = SymVar(f"{body_tuple.table}.{column}")
                pool = ConstraintPool()
                substituted = dict(bindings)
                substituted[arg.name] = symbol
                left = substituted.get(selection.left.name, None) \
                    if isinstance(selection.left, Var) else try_evaluate(selection.left, bindings)
                right = substituted.get(selection.right.name, None) \
                    if isinstance(selection.right, Var) else try_evaluate(selection.right, bindings)
                if left is None or right is None:
                    continue
                pool.add(Comparison(selection.op, left, right))
                pool.hint(symbol, self._solver_value_hints())
                negation = pool.solve_negation()
                stats.solver_invocations += pool.solver_invocations
                stats.solver_seconds += pool.solve_seconds
                if negation is None:
                    continue
                model, _ = negation
                new_value = model.value_of(symbol.name)
                if new_value is None or new_value == body_tuple.values[column]:
                    continue
                change = ChangeTuple(body_tuple, column, new_value)
                out.append(RepairCandidate(
                    edits=(change,), cost=self.cost_model.edit_cost(change), tree=tree))
        return out

    def _atom_for_tuple(self, rule: Rule, tup: NDTuple) -> Optional[Atom]:
        for atom in rule.body:
            if atom.table == tup.table and atom.arity == tup.arity:
                return atom
        return None

    def _rederives(self, unwanted: NDTuple, candidate: RepairCandidate) -> bool:
        """Quick check whether the repaired program still derives the tuple.

        The check replays only the historical base tuples (cheap), mirroring
        the paper's observation that full protection against re-derivation is
        undecidable and best left to backtesting.
        """
        from ..repair.apply import apply_candidate
        from ..ndlog.engine import Engine

        repaired = apply_candidate(self.program, candidate)
        engine = Engine(repaired.program)
        removed = set(repaired.removed_tuples)
        base = []
        for table in self.history.tables():
            if table in self.program.derived_tables():
                continue
            for tup in self.history.tuples_of(table):
                if tup not in removed:
                    base.append(tup)
        base.extend(repaired.inserted_tuples)
        try:
            engine.insert_many(base)
        except Exception:
            return False
        return engine.contains(unwanted)
