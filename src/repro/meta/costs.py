"""Cost model for program changes.

Section 3.5: "We assign a low cost to common errors (such as changing a
constant by one or changing a == to a !=) and a high cost to unlikely errors
(such as writing an entirely new rule, or defining a new table)."  The
default numbers below follow the relative frequencies of bug-fix patterns
reported by Pan et al. (cited as [41] in the paper): tweaks to existing
literals are the most common fixes, changes to operators and deleted
conditions follow, and whole-rule additions are rare.

The model is deliberately table-driven so that ablation benchmarks can swap
in a uniform-cost model and measure the effect on search effort.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..repair.candidates import Edit, RepairCandidate


#: Default per-edit-kind base costs.
DEFAULT_COSTS: Dict[str, float] = {
    "insert_tuple": 1.0,       # manually install a flow entry / config row
    "change_constant": 1.1,    # tweak a literal (most common bug-fix pattern)
    "delete_tuple": 1.4,
    "change_tuple": 1.4,
    "change_operator": 1.6,    # == -> !=, < -> <=, ...
    "change_assignment": 1.8,  # change the expression assigned to a head var
    "delete_selection": 2.0,   # drop a condition
    "support_tuple": 2.0,      # insert base data to let an existing rule fire
    "change_head": 2.4,        # re-target a rule head
    "delete_predicate": 2.5,   # drop a joined table
    "copy_rule": 3.0,          # copy an existing rule with modifications
    "delete_rule": 3.0,
    "add_rule": 4.0,           # write a new rule from scratch
}

#: Extra cost added when a constant change moves the value by more than one
#: (an off-by-one fix is more plausible than an arbitrary re-write).
FAR_CONSTANT_SURCHARGE = 0.3

#: Default exploration cut-off: trees costlier than this are never expanded.
DEFAULT_CUTOFF = 5.0


@dataclass
class CostModel:
    """Assigns costs to individual edits and whole repair candidates."""

    costs: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_COSTS))
    far_constant_surcharge: float = FAR_CONSTANT_SURCHARGE
    cutoff: float = DEFAULT_CUTOFF
    #: Small cost added per expanded vertex so exploration always terminates
    #: (Appendix D: "add a (possibly very small) cost to expanding each vertex").
    expansion_cost: float = 0.01

    def edit_cost(self, edit: Edit) -> float:
        base = self.costs.get(edit.kind, max(self.costs.values()))
        if edit.kind == "change_constant":
            base += self._constant_distance_surcharge(edit)
        return base

    def _constant_distance_surcharge(self, edit) -> float:
        old, new = getattr(edit, "old_value", None), getattr(edit, "new_value", None)
        if isinstance(old, int) and isinstance(new, int) and abs(old - new) > 1:
            return self.far_constant_surcharge
        return 0.0

    def candidate_cost(self, edits) -> float:
        return sum(self.edit_cost(e) for e in edits)

    def within_cutoff(self, cost: float) -> bool:
        return cost <= self.cutoff

    def rank(self, candidates):
        """Sort candidates by cost (and id for determinism)."""
        return sorted(candidates, key=lambda c: (c.cost, c.candidate_id))


def uniform_cost_model(cost: float = 1.0, cutoff: float = DEFAULT_CUTOFF * 2) -> CostModel:
    """A cost model where every edit kind costs the same.

    Used by the ablation benchmark to show why the plausibility-ordered model
    matters: with uniform costs, implausible repairs (deleting predicates,
    adding rules) are explored as eagerly as constant tweaks.
    """
    return CostModel(costs={kind: cost for kind in DEFAULT_COSTS},
                     far_constant_surcharge=0.0, cutoff=cutoff)
