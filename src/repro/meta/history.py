"""Historical data index used by the meta provenance explorer.

The explorer needs two things from the network's history: (a) the base
tuples that existed (or arrived) during the time window of the diagnostic
query — e.g. which ``PacketIn`` events switch S3 reported — and (b) the set
of "interesting" constant values observed per table column, which seeds the
candidate pools of the constraint solver (this is how repairs such as
``Sip < 6  ->  Sip < 16`` arise: 16 is a value seen in the history).

A :class:`HistoryIndex` can be built from an :class:`~repro.ndlog.engine.Engine`
(using its event log), from a plain list of tuples, or from the SDN
simulator's :class:`~repro.sdn.log.HistoricalLog`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..ndlog.engine import Engine
from ..ndlog.events import INSERT
from ..ndlog.tuples import NDTuple


class HistoryIndex:
    """Index of historical tuples by table and by (table, column)."""

    def __init__(self, tuples: Optional[Iterable[NDTuple]] = None):
        self._by_table: Dict[str, List[NDTuple]] = defaultdict(list)
        self._seen: Set[NDTuple] = set()
        self.lookup_count = 0
        for tup in tuples or ():
            self.add(tup)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_engine(cls, engine: Engine, include_derived: bool = True) -> "HistoryIndex":
        """Build an index from an engine's event log and current database."""
        index = cls()
        for event in engine.events:
            if event.kind == INSERT:
                index.add(event.tuple)
        for tup in engine.database.base_tuples():
            index.add(tup)
        if include_derived:
            for tup in engine.database.derived_tuples():
                index.add(tup)
        return index

    @classmethod
    def from_tuples(cls, tuples: Iterable[NDTuple]) -> "HistoryIndex":
        return cls(tuples)

    def add(self, tup: NDTuple):
        if tup in self._seen:
            return
        self._seen.add(tup)
        self._by_table[tup.table].append(tup)

    def merge(self, other: "HistoryIndex") -> "HistoryIndex":
        for tup in other._seen:
            self.add(tup)
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def tables(self) -> Set[str]:
        return set(self._by_table)

    def tuples_of(self, table: str) -> List[NDTuple]:
        """All historical tuples of a table (each counted once)."""
        self.lookup_count += 1
        return list(self._by_table.get(table, ()))

    def count(self, table: Optional[str] = None) -> int:
        if table is not None:
            return len(self._by_table.get(table, ()))
        return len(self._seen)

    def column_values(self, table: str, column: int) -> List[object]:
        """Distinct values observed in one column of a table, in first-seen order."""
        seen = set()
        out = []
        for tup in self._by_table.get(table, ()):
            if column < len(tup.values):
                value = tup.values[column]
                if value not in seen:
                    seen.add(value)
                    out.append(value)
        return out

    def all_values(self) -> List[object]:
        """Every distinct value in the history (candidate-pool seeding)."""
        seen = set()
        out = []
        for tuples in self._by_table.values():
            for tup in tuples:
                for value in tup.values:
                    if value not in seen:
                        seen.add(value)
                        out.append(value)
        return out

    def matching(self, table: str, constraints: Dict[int, object]) -> List[NDTuple]:
        """Tuples of ``table`` whose columns agree with ``constraints``."""
        out = []
        for tup in self._by_table.get(table, ()):
            if all(column < len(tup.values) and tup.values[column] == value
                   for column, value in constraints.items()):
                out.append(tup)
        self.lookup_count += 1
        return out

    def __len__(self):
        return len(self._seen)
