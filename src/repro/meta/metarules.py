"""The µDlog meta model (Figure 4 of the paper), expressed in NDlog.

The paper defines the operational semantics of the toy language µDlog with
13 meta tuples and 15 meta rules, themselves written in NDlog: a tuple
exists either because it was inserted as a base tuple (h1) or because some
rule's join produced values that satisfied both selection predicates (h2);
joins, expressions, assignments and selections each have their own meta
rules.

This module keeps the meta model both as *source text* (useful for
documentation and for testing that our parser accepts it) and as structured
metadata (tables and rule names) consumed by tests and by the DESIGN
inventory.  The repair search itself uses the operational encoding in
:mod:`repro.meta.explorer`, which is an optimised implementation of the same
semantics — the explorer never enumerates full cross-product ``Join`` tuples
but reasons about one join combination at a time, which is exactly the
optimisation the paper's "mini-solver for cross-table meta tuple joins"
performs.
"""

from __future__ import annotations

from typing import Dict, List

from ..ndlog.ast import Program
from ..ndlog.parser import parse_program


#: Names of the µDlog meta tuples (Section 3.2).
MUDLOG_META_TUPLES = (
    # program-based
    "HeadFunc", "PredFunc", "Assign", "Const", "Oper",
    # runtime-based
    "Base", "Tuple", "TuplePred", "PredFuncCount", "Join2", "Join4",
    "Expr", "Sel", "HeadVal",
)

#: Meta rules of Figure 4, in (simplified, parseable) NDlog syntax.  The
#: paper's h2 rule uses aggregation-style matching of two selection IDs; the
#: variant below keeps the same structure with the two selections named
#: explicitly, which is the µDlog restriction ("exactly two selection
#: predicates").
MUDLOG_META_RULES_SOURCE = """
h1 Tuple(@C,Tab,Val1,Val2) :- Base(@C,Tab,Val1,Val2).
h2 Tuple(@L,Tab,Val1,Val2) :- HeadFunc(@C,Rul,Tab,Loc,Arg1,Arg2), HeadVal(@C,Rul,JID,Loc,L), HeadVal(@C,Rul,JID1,Arg1,Val1), HeadVal(@C,Rul,JID2,Arg2,Val2), Sel(@C,Rul,JID,SID,Val), Sel(@C,Rul,JIDB,SIDB,ValB), Val == 1, ValB == 1, SID != SIDB, True == f_match(JID1,JID), True == f_match(JID2,JID).
p1 TuplePred(@C,Rul,Tab,Arg1,Arg2,Val1,Val2) :- Tuple(@C,Tab,Val1,Val2), PredFunc(@C,Rul,Tab,Arg1,Arg2).
p2 PredFuncCount(@C,Rul,N) :- PredFunc(@C,Rul,Tab,Arg1,Arg2), N := 1.
j1 Join4(@C,Rul,JID,Arg1,Arg2,Arg3,Arg4,Val1,Val2,Val3,Val4) :- TuplePred(@C,Rul,Tab,Arg1,Arg2,Val1,Val2), TuplePred(@C,Rul,TabB,Arg3,Arg4,Val3,Val4), PredFuncCount(@C,Rul,N), N == 2, Tab != TabB, JID := f_unique().
j2 Join2(@C,Rul,JID,Arg1,Arg2,Val1,Val2) :- TuplePred(@C,Rul,Tab,Arg1,Arg2,Val1,Val2), PredFuncCount(@C,Rul,N), N == 1, JID := f_unique().
e1 Expr(@C,Rul,JID,ID,Val) :- Const(@C,Rul,ID,Val), JID := *.
e2 Expr(@C,Rul,JID,Arg1,Val1) :- Join2(@C,Rul,JID,Arg1,Arg2,Val1,Val2).
e3 Expr(@C,Rul,JID,Arg2,Val2) :- Join2(@C,Rul,JID,Arg1,Arg2,Val1,Val2).
e4 Expr(@C,Rul,JID,Arg1,Val1) :- Join4(@C,Rul,JID,Arg1,Arg2,Arg3,Arg4,Val1,Val2,Val3,Val4).
e5 Expr(@C,Rul,JID,Arg2,Val2) :- Join4(@C,Rul,JID,Arg1,Arg2,Arg3,Arg4,Val1,Val2,Val3,Val4).
e6 Expr(@C,Rul,JID,Arg3,Val3) :- Join4(@C,Rul,JID,Arg1,Arg2,Arg3,Arg4,Val1,Val2,Val3,Val4).
e7 Expr(@C,Rul,JID,Arg4,Val4) :- Join4(@C,Rul,JID,Arg1,Arg2,Arg3,Arg4,Val1,Val2,Val3,Val4).
a1 HeadVal(@C,Rul,JID,Arg,Val) :- Assign(@C,Rul,Arg,ID), Expr(@C,Rul,JID,ID,Val).
s1 Sel(@C,Rul,JID,SID,Val) :- Oper(@C,Rul,SID,IDL,IDR,Opr), Expr(@C,Rul,JIDL,IDL,ValL), Expr(@C,Rul,JIDR,IDR,ValR), True == f_match(JIDL,JIDR), JID := f_join(JIDL,JIDR), Val := f_compare(Opr,ValL,ValR), IDL != IDR.
"""

#: Size of the full NDlog meta model reported by the paper (Section 3.2).
NDLOG_META_MODEL_SIZE = {"meta_tuples": 23, "meta_rules": 23}

#: Sizes of the Trema and Pyretic meta models reported in Section 5.8.
TREMA_META_MODEL_SIZE = {"meta_tuples": 32, "meta_rules": 42}
PYRETIC_META_MODEL_SIZE = {"meta_tuples": 41, "meta_rules": 53}


def mudlog_meta_program() -> Program:
    """Parse the µDlog meta rules into an NDlog :class:`Program`.

    The resulting program is mainly used for validation (the meta rules are
    legal NDlog and mention exactly the documented meta tuples); the repair
    search uses the optimised implementation in the explorer.
    """
    return parse_program(MUDLOG_META_RULES_SOURCE, name="mudlog-meta")


def meta_rule_names() -> List[str]:
    return [rule.name for rule in mudlog_meta_program().rules]


def meta_model_summary() -> Dict[str, int]:
    program = mudlog_meta_program()
    return {
        "meta_rules": len(program.rules),
        "meta_tuples": len(MUDLOG_META_TUPLES),
    }
