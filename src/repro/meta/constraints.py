"""Constraint pools for meta provenance trees.

Section 3.4: while a meta provenance tree is being expanded, the explorer
collects constraints over the attributes of (possibly still missing) tuples
— join constraints, selection constraints, head-derivation constraints and
primary-key constraints.  A tree can only produce a repair if its pool is
satisfiable; the satisfying assignment supplies concrete values for the
program changes (e.g. the new value of a constant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..solver import (
    Comparison,
    Constraint,
    Model,
    Solver,
    SymVar,
)


@dataclass
class ConstraintPool:
    """A conjunction of constraints plus candidate-value hints."""

    constraints: List[Constraint] = field(default_factory=list)
    candidate_hints: Dict[SymVar, List[object]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    #: Number of times a solver was invoked on this pool (for the Fig. 9a
    #: "constraint solving" phase accounting).
    solver_invocations: int = 0
    #: Wall-clock seconds spent inside the solver for this pool.
    solve_seconds: float = 0.0

    def add(self, *constraints: Constraint, note: Optional[str] = None):
        self.constraints.extend(constraints)
        if note:
            self.notes.append(note)
        return self

    def hint(self, var: SymVar, values: Iterable[object]):
        self.candidate_hints.setdefault(var, []).extend(values)
        return self

    def copy(self) -> "ConstraintPool":
        clone = ConstraintPool(
            constraints=list(self.constraints),
            candidate_hints={k: list(v) for k, v in self.candidate_hints.items()},
            notes=list(self.notes),
        )
        return clone

    def variables(self):
        out = set()
        for constraint in self.constraints:
            out |= constraint.variables()
        return out

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def _solver(self) -> Solver:
        solver = Solver(list(self.constraints))
        for var, values in self.candidate_hints.items():
            solver.add_candidates(var, values)
        return solver

    def solve(self) -> Optional[Model]:
        """SATASSIGNMENT of the paper's Figure 5."""
        import time as _time
        self.solver_invocations += 1
        started = _time.perf_counter()
        try:
            return self._solver().solve()
        finally:
            self.solve_seconds += _time.perf_counter() - started

    def solve_negation(self):
        """UNSATASSIGNMENT: an assignment violating the conjunction."""
        import time as _time
        self.solver_invocations += 1
        started = _time.perf_counter()
        try:
            return self._solver().solve_negation()
        finally:
            self.solve_seconds += _time.perf_counter() - started

    def is_satisfiable(self) -> bool:
        return self.solve() is not None

    def describe(self) -> str:
        lines = [str(c) for c in self.constraints]
        return " AND ".join(lines) if lines else "(empty pool)"

    def __len__(self):
        return len(self.constraints)
