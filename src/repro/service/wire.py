"""The :class:`RepairJob` wire format: a whole repair run as one job.

PR 5 made a repair run declaratively wire-shippable (`RepairConfig` +
`ScenarioSpec`), and the distributed fabric already moves *backtest* jobs
(:func:`repro.distrib.jobs.build_job_wire`) to workers.  A ``RepairJob``
closes the gap: it wraps a full :class:`~repro.api.config.RepairConfig`
so a remote ``repro-worker`` can run the entire Diagnose → Generate →
Backtest → Rank pipeline end-to-end and ship the ranked report back.

The wire dict is JSON-able like every other wire format in the codebase
and is distinguished from backtest job wires by ``"kind": "repair"`` —
:func:`repro.distrib.jobs.build_runtime` dispatches on that key, so both
job kinds travel over the identical frame protocol.  A repair job always
has exactly one work item (the run itself), so the header carries
``candidate_count: 1`` for the coordinator's queue bookkeeping.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..api.config import ConfigError, RepairConfig

#: The ``kind`` discriminator that routes a job wire to
#: :class:`~repro.service.runtime.RepairJobRuntime` on the worker.
REPAIR_JOB_KIND = "repair"

#: Keys a repair job wire may carry (unknown keys are rejected loudly,
#: matching the strictness of ``RepairConfig.from_wire``).
_WIRE_KEYS = {"kind", "session_id", "tenant", "config", "submitted_unix",
              "candidate_count"}


class RepairJobError(ValueError):
    """Raised for malformed repair job wires."""


@dataclass
class RepairJob:
    """One whole repair run, addressed to a tenant, as a wire object."""

    #: Coordinator-assigned session identifier (unique per daemon).
    session_id: str
    #: The full declarative run description (must carry a ScenarioSpec —
    #: a live scenario object cannot cross the wire).
    config: RepairConfig
    #: Fair-share scheduling key; every submission belongs to a tenant.
    tenant: str = "default"
    #: Coordinator wall-clock at submission (0.0 = unknown).
    submitted_unix: float = 0.0
    #: Per-tenant metric labels and anything else the daemon wants to
    #: remember with the job (not shipped to workers).
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if self.config.scenario is None:
            raise RepairJobError(
                "repair job config has no ScenarioSpec; only fully "
                "declarative configs can cross the wire")

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    def to_wire(self) -> Dict[str, object]:
        return {
            "kind": REPAIR_JOB_KIND,
            "session_id": self.session_id,
            "tenant": self.tenant,
            "config": self.config.to_wire(),
            "submitted_unix": self.submitted_unix,
            "candidate_count": 1,
        }

    @classmethod
    def from_wire(cls, wire: Dict[str, object]) -> "RepairJob":
        if not isinstance(wire, dict):
            raise RepairJobError("repair job wire must be an object")
        kind = wire.get("kind")
        if kind != REPAIR_JOB_KIND:
            raise RepairJobError(
                f"not a repair job wire (kind={kind!r})")
        unknown = set(wire) - _WIRE_KEYS
        if unknown:
            raise RepairJobError(
                f"unknown repair job keys: {sorted(unknown)}")
        config_wire = wire.get("config")
        if not isinstance(config_wire, dict):
            raise RepairJobError("repair job wire has no config object")
        try:
            config = RepairConfig.from_wire(config_wire)
        except ConfigError as exc:
            raise RepairJobError(f"bad repair job config: {exc}") from exc
        return cls(session_id=str(wire.get("session_id", "")),
                   config=config,
                   tenant=str(wire.get("tenant", "default")),
                   submitted_unix=float(wire.get("submitted_unix", 0.0)))

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_wire(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RepairJob":
        try:
            wire = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RepairJobError(
                f"repair job is not valid JSON: {exc}") from exc
        return cls.from_wire(wire)


def scenario_digest(job_wire: Dict) -> str:
    """Cache key for the worker's :class:`RuntimeCache`: the scenario only.

    Two repair jobs with different candidate budgets or acceptance knobs
    still replay the same scenario, so they share the cached scenario
    object (and its memoized trace/topology) on a persistent worker —
    only the spec participates in the digest.
    """
    config_wire = job_wire.get("config") or {}
    basis = json.dumps({"kind": "repair-scenario",
                        "spec": config_wire.get("scenario")},
                       sort_keys=True, default=str)
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()
