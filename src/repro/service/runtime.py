"""Worker-side execution of a :class:`~repro.service.wire.RepairJob`.

:class:`RepairJobRuntime` is the repair-kind sibling of
:class:`repro.distrib.jobs.JobRuntime`: the worker loop builds one per
job frame (via :func:`repro.distrib.jobs.build_runtime`) and calls
``evaluate(0)`` — a repair job has exactly one item, the run itself.

Inside ``evaluate`` the runtime reconstructs the declarative
:class:`~repro.api.config.RepairConfig`, normalizes its scheduling knobs
(the *worker* is the fabric's unit of parallelism, so the run executes
serially in-process — ``transport=None, workers=1`` — and never nests a
second fabric inside a worker), and drives a full
:class:`~repro.api.session.RepairSession`.  Every
:class:`~repro.events.SessionEvent` the session publishes is forwarded
through the event sink installed by the worker loop, which mirrors the
JSONL event wire onto ``{"type": "event"}`` coordinator frames — the
daemon stitches them into per-session ordered streams.

Scenario objects are cached across jobs in the worker's
:class:`~repro.distrib.jobs.RuntimeCache`, keyed by
:func:`~repro.service.wire.scenario_digest`: repeated submissions against
the same scenario skip the topology/trace rebuild, exactly like repeated
backtest jobs do.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..distrib.jobs import DistribError, RuntimeCache, _RuntimeEntry
from ..events import EventBus
from .wire import RepairJob, RepairJobError, scenario_digest

#: Signature of the sink the worker loop installs: one event wire dict in,
#: one coordinator frame out.
EventSink = Callable[[Dict[str, object]], None]


class RepairJobRuntime:
    """Run one whole repair session on a worker, streaming its events."""

    def __init__(self, job_wire: Dict, cache: Optional[RuntimeCache] = None):
        try:
            self.job = RepairJob.from_wire(job_wire)
        except RepairJobError as exc:
            raise DistribError(f"malformed repair job wire: {exc}") from exc
        self._cache = cache
        self._digest = scenario_digest(job_wire)
        self._sink: Optional[EventSink] = None

    def set_event_sink(self, sink: Optional[EventSink]) -> None:
        """Install the frame-forwarding event sink (worker loop hook)."""
        self._sink = sink

    def __len__(self) -> int:
        return 1                          # the run itself is the only item

    # ------------------------------------------------------------------

    def _scenario(self):
        """The (possibly cached) scenario object for this job's spec."""
        if self._cache is None:
            return self.job.config.build_scenario()
        entry = self._cache.get(self._digest)
        if entry is None:
            scenario = self.job.config.build_scenario()
            # Repair runs build their own backtester per session; the
            # cache entry only carries the scenario (trace included).
            entry = _RuntimeEntry(scenario, None)
            self._cache.put(self._digest, entry)
        return entry.scenario

    def evaluate(self, index: int, candidate_wire=None) -> Dict[str, object]:
        """Run the whole pipeline; the outcome is the JSON-able report."""
        if index != 0:
            raise DistribError(
                f"repair jobs have exactly one item; got index {index}")
        # Local import: the session facade imports the distrib package,
        # and build_runtime imports this module lazily for the same reason.
        from ..api.session import RepairSession
        from ..repair import reset_candidate_ids
        # Candidate ids come from a process-global counter; restarting it
        # per job makes the report a pure function of the config — the
        # N-th session on a long-lived worker is bit-identical to a fresh
        # in-process run of the same config.
        reset_candidate_ids()
        config = self.job.config
        if config.transport is not None or config.workers != 1 \
                or config.transport_options:
            # Scheduling is the daemon's business: one worker == one unit
            # of parallelism, and a worker must never nest its own fabric.
            config = config.with_updates(transport=None, workers=1,
                                         transport_options={})
        events = EventBus(keep_history=False)
        sink = self._sink
        if sink is not None:
            events.subscribe(lambda event: sink(event.to_wire()))
        session = RepairSession(config, scenario=self._scenario(),
                                events=events)
        report = session.run()
        if report is None:               # custom stage lists only
            raise DistribError("repair session produced no report")
        return {
            "session_id": self.job.session_id,
            "tenant": self.job.tenant,
            "scenario": report.scenario_name,
            "report": report.to_wire(),
            "stage_seconds": dict(session.stage_seconds),
        }
