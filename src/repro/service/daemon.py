"""The repair-service coordinator daemon: many tenants, one worker fleet.

The existing fabric transports move one job at a time through a worker
set with barrier semantics (``run_job`` blocks until every item is
delivered) — the right shape for a backtest stage, the wrong shape for a
long-lived service accepting submissions while others run.  The
:class:`RepairServiceDaemon` therefore speaks the *same* length-prefixed
frame protocol to the same ``repro-worker`` processes, but schedules
dynamically: every repair session is one single-item job
(:class:`~repro.service.wire.RepairJob`), idle workers pull the next
session the moment they finish one, and sessions from different tenants
interleave across the fleet.

Scheduling is **per-tenant fair-share**: when a worker frees up, the
daemon picks the queued tenant with the fewest sessions currently
running, breaking ties by least-recently-dispatched — so a tenant that
dumps a hundred sessions cannot starve a tenant submitting one.

The PR 9 fault machinery applies per repair job: a worker crash, hang
(explicit ``job_deadline``), disconnect or exception requeues the
session with an attempt charged, and a session out of attempts is failed
with the same ``quarantined(<reason>) after N attempts`` shape the
backtest fabric uses.  Dead local workers are respawned with capped
exponential backoff; respawned workers get fresh worker ids, so
positional :class:`~repro.distrib.faults.FaultPlan` actions do not
re-fire — the chaos semantics match ``SocketTransport``.

Events stream live: workers forward every
:class:`~repro.events.SessionEvent` as a ``{"type": "event"}`` frame,
and the daemon appends them to the owning session's record — per-session
ordering is inherent (one session runs on one connection at a time).
A retried session's partial event stream is discarded, so the final
stream is always one complete, clean run.
"""

from __future__ import annotations

import itertools
import os
import pickle
import socket
import subprocess
import sys
import threading
import time as _time
from collections import Counter as _Counter
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..api.config import ConfigError, RepairConfig
from ..distrib.faults import FaultPlan, FaultStats, FaultToleranceConfig
from ..distrib.transport import FrameError, recv_frame, send_frame
from ..obs.metrics import MetricsRegistry
from .wire import RepairJob, RepairJobError

#: Supervision tick (matches the fabric transports).
_TICK_SECONDS = 0.2

#: A crash streak resets when the fleet stays healthy this long.
_CRASH_STREAK_WINDOW = 10.0

#: Session lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"
TERMINAL_STATES = frozenset({DONE, FAILED})


class ServiceError(RuntimeError):
    """Raised for service-level failures (bad submissions, draining)."""


class ServiceUnavailable(ServiceError):
    """The daemon is draining and accepts no new sessions."""


@dataclass
class SessionRecord:
    """Everything the daemon tracks about one submitted repair session."""

    session_id: str
    tenant: str
    config: RepairConfig
    policy: FaultToleranceConfig
    state: str = QUEUED
    attempts: int = 0
    submitted_unix: float = 0.0
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    #: The ranked report wire (``DiagnosisReport.to_wire``), once done.
    report: Optional[Dict] = None
    #: Per-stage wall-clock seconds from the worker, once done.
    stage_seconds: Optional[Dict] = None
    #: ``quarantined(<reason>) after N attempts`` when the state is failed.
    error: str = ""
    #: Long-form failure detail (last traceback / disconnect note).
    error_detail: str = ""
    #: Forwarded SessionEvent wires, in emission order.
    events: List[Dict] = field(default_factory=list)
    worker_id: Optional[int] = None

    def summary(self) -> Dict[str, object]:
        """Status view (``GET /sessions`` row)."""
        scenario = self.config.scenario.name if self.config.scenario else "?"
        return {
            "id": self.session_id,
            "tenant": self.tenant,
            "scenario": scenario,
            "state": self.state,
            "attempts": self.attempts,
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "events": len(self.events),
            "error": self.error,
        }

    def to_wire(self) -> Dict[str, object]:
        """Full view (``GET /sessions/<id>``): status + ranked report."""
        wire = self.summary()
        wire["report"] = self.report
        wire["stage_seconds"] = self.stage_seconds
        return wire


class _WorkerLink(threading.Thread):
    """Daemon-side handler for one connected worker (frame protocol)."""

    def __init__(self, service: "RepairServiceDaemon", sock: socket.socket):
        super().__init__(daemon=True)
        self.service = service
        self.sock = sock
        self.worker_id: Optional[int] = None
        self.pid: Optional[int] = None
        #: Why the daemon is severing this link (``"deadline"``);
        #: ``None`` means an ordinary disconnect.
        self.fault_reason: Optional[str] = None
        #: The session this link is running, if any.
        self.record: Optional[SessionRecord] = None
        #: Monotonic dispatch time of the running session.
        self.started = 0.0

    def run(self):
        service = self.service
        try:
            hello = recv_frame(self.sock)
            if not hello or hello.get("type") != "hello":
                return
            self.pid = hello.get("pid")
            service._register_worker(self)
            while True:
                job = service._next_job(self)
                if job is None:
                    self._send_quietly({"type": "shutdown"})
                    return
                record, frame = job
                send_frame(self.sock, frame)
                self._drive(record)
        except (OSError, EOFError, FrameError, pickle.PickleError):
            pass
        finally:
            service._link_lost(self)
            try:
                self.sock.close()
            except OSError:
                pass

    def _drive(self, record: SessionRecord) -> None:
        """Run one session's job to completion on this link."""
        service = self.service
        while True:
            try:
                message = recv_frame(self.sock)
            except FrameError:
                service._frame_error(self)
                raise
            if message is None:
                raise EOFError
            kind = message.get("type")
            if kind == "next":
                # A repair job has exactly one item: the run itself.
                send_frame(self.sock, {"type": "item", "index": 0,
                                       "candidate": None})
            elif kind == "event":
                service._record_event(record, message.get("event") or {})
            elif kind == "result":
                service._complete(self, record, message.get("outcome"))
                send_frame(self.sock, {"type": "job_done"})
                return
            elif kind in ("error", "job_error"):
                service._item_failed(self, record,
                                     message.get("message", ""))
                if kind == "error":      # job_error workers already left
                    send_frame(self.sock, {"type": "job_done"})
                return

    def _send_quietly(self, message: Dict) -> None:
        try:
            send_frame(self.sock, message)
        except OSError:
            pass


class RepairServiceDaemon:
    """Accept, schedule and supervise many concurrent repair sessions.

    ``workers`` local ``repro-worker`` subprocesses are spawned against
    the daemon's listener unless ``spawn_workers=False`` (then point
    remote workers at :attr:`address`).  ``fault_policy`` sets the
    *default* retry/quarantine policy; a session whose config carries its
    own ``fault_tolerance`` uses that instead.  ``fault_plan`` arms
    deterministic chaos against the fleet, exactly like the transports.

    ``on_event`` (optional) observes every forwarded session event as a
    wire dict annotated with ``session_id``/``tenant`` — the ``repro
    serve --events`` JSONL log hangs off this hook.
    """

    def __init__(self, workers: int = 2, host: str = "127.0.0.1",
                 port: int = 0, spawn_workers: bool = True,
                 fault_policy=None, fault_plan=None,
                 metrics: Optional[MetricsRegistry] = None,
                 on_event: Optional[Callable[[Dict], None]] = None):
        if spawn_workers and workers < 1:
            raise ValueError("workers must be >= 1 when spawning locally")
        self.workers = workers
        self.host = host
        self.port = port
        self.spawn_workers = spawn_workers
        self.fault_policy = FaultToleranceConfig.coerce(fault_policy)
        self.fault_plan = FaultPlan.coerce(fault_plan)
        self.metrics = metrics or MetricsRegistry()
        self.on_event = on_event
        #: Cumulative recovery counters (mirrors transport.last_fault_stats,
        #: but over the daemon's lifetime).
        self.fault_stats = FaultStats()

        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._finished = threading.Condition(self._lock)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._supervisor: Optional[threading.Thread] = None
        self._processes: List[subprocess.Popen] = []
        self._links: List[_WorkerLink] = []
        self._next_worker_id = 0
        self._draining = False
        self._shutdown = False
        self._records: Dict[str, SessionRecord] = {}
        self._order: List[str] = []           # submission order, for listings
        self._queues: Dict[str, deque] = {}   # tenant -> deque[SessionRecord]
        self._running: Dict[_WorkerLink, SessionRecord] = {}
        self._dispatch_seq = itertools.count()
        self._last_dispatch: Dict[str, int] = {}
        self._ids = itertools.count(1)
        self._crash_streak = 0
        self._last_crash = 0.0
        self._respawn_at: List[float] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "RepairServiceDaemon":
        if self._listener is not None:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(16)
        self._listener = listener
        self._accept_thread = threading.Thread(target=self._accept_loop,
                                               daemon=True)
        self._accept_thread.start()
        self._supervisor = threading.Thread(target=self._supervise_loop,
                                            daemon=True)
        self._supervisor.start()
        if self.spawn_workers:
            for _ in range(self.workers):
                self._spawn_worker()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) workers connect to (starts the daemon if needed)."""
        self.start()
        return self._listener.getsockname()[:2]

    def _spawn_worker(self) -> None:
        host, port = self._listener.getsockname()[:2]
        if host == "0.0.0.0":
            host = "127.0.0.1"
        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (src_dir if not existing
                             else src_dir + os.pathsep + existing)
        self._processes.append(subprocess.Popen(
            [sys.executable, "-m", "repro.distrib.worker",
             "--connect", f"{host}:{port}"],
            env=env))

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            link = _WorkerLink(self, sock)
            with self._lock:
                if self._shutdown:
                    sock.close()
                    return
                self._links.append(link)
            link.start()

    def stop(self, grace: float = 10.0) -> None:
        """Drain and shut down: wait up to ``grace`` seconds for running
        sessions, requeue whatever is still in flight (no attempt charged
        — the operator interrupted it, not a fault), terminate the local
        fleet, and flush the event hook if it can be flushed."""
        with self._lock:
            self._draining = True
            self._wakeup.notify_all()
        deadline = _time.monotonic() + max(0.0, grace)
        with self._lock:
            while self._running:
                remaining = deadline - _time.monotonic()
                if remaining <= 0:
                    break
                self._finished.wait(timeout=min(_TICK_SECONDS, remaining))
            requeued = []
            for link, record in list(self._running.items()):
                record.state = QUEUED
                record.worker_id = None
                record.events.clear()     # partial stream; a rerun replaces it
                self._queue_for(record.tenant).appendleft(record)
                link.record = None
                requeued.append(link)
            self._running.clear()
            self._shutdown = True
            self._update_gauges_locked()
            self._wakeup.notify_all()
            self._finished.notify_all()
        for link in requeued:
            # Sever mid-job links so their workers stop evaluating work
            # nobody is waiting for.
            try:
                link.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for process in self._processes:
            if process.poll() is None:
                process.terminate()
        for process in self._processes:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
        sync = getattr(self.on_event, "sync", None)
        if callable(sync):
            sync()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()

    # ------------------------------------------------------------------
    # Submission and inspection
    # ------------------------------------------------------------------

    def submit(self, config, tenant: str = "default") -> str:
        """Queue one repair session; returns its id immediately."""
        if isinstance(config, dict):
            config = RepairConfig.from_wire(config)
        if not isinstance(config, RepairConfig):
            raise ConfigError(
                f"submit expects a RepairConfig or its wire dict, got "
                f"{type(config).__name__}")
        if config.scenario is None:
            raise ConfigError("submitted config names no scenario")
        tenant = str(tenant or "default")
        policy = config.fault_tolerance or self.fault_policy
        with self._lock:
            if self._draining or self._shutdown:
                raise ServiceUnavailable("service is draining")
            session_id = f"s-{next(self._ids):04d}"
            record = SessionRecord(session_id=session_id, tenant=tenant,
                                   config=config, policy=policy,
                                   submitted_unix=_time.time())
            self._records[session_id] = record
            self._order.append(session_id)
            self._queue_for(tenant).append(record)
            self.metrics.counter("service_sessions_submitted",
                                 tenant=tenant).inc()
            self._update_gauges_locked()
            self._wakeup.notify_all()
        return session_id

    def get(self, session_id: str) -> SessionRecord:
        with self._lock:
            record = self._records.get(session_id)
        if record is None:
            raise KeyError(session_id)
        return record

    def sessions(self) -> List[Dict[str, object]]:
        with self._lock:
            return [self._records[sid].summary() for sid in self._order]

    def session_wire(self, session_id: str) -> Dict[str, object]:
        record = self.get(session_id)
        with self._lock:
            return record.to_wire()

    def events_since(self, session_id: str,
                     offset: int = 0) -> Tuple[List[Dict], bool]:
        """Event wires from ``offset`` on, plus whether the session is
        terminal (the ``/events?follow=1`` long-poll primitive)."""
        record = self.get(session_id)
        with self._lock:
            return (list(record.events[offset:]),
                    record.state in TERMINAL_STATES)

    def wait(self, session_id: str,
             timeout: Optional[float] = 120.0) -> SessionRecord:
        """Block until the session is terminal; raises on timeout."""
        record = self.get(session_id)
        deadline = (None if timeout is None
                    else _time.monotonic() + timeout)
        with self._lock:
            while record.state not in TERMINAL_STATES:
                remaining = (None if deadline is None
                             else deadline - _time.monotonic())
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"session {session_id} still {record.state} after "
                        f"{timeout}s")
                self._finished.wait(timeout=(_TICK_SECONDS if remaining is None
                                             else min(_TICK_SECONDS,
                                                      remaining)))
                if self._shutdown and record.state not in TERMINAL_STATES:
                    raise ServiceError(
                        f"service stopped while session {session_id} was "
                        f"{record.state}")
        return record

    def status(self) -> Dict[str, object]:
        """Health view (``GET /healthz``)."""
        with self._lock:
            queued = sum(len(q) for q in self._queues.values())
            return {
                "state": ("draining" if self._draining else "serving"),
                "workers_connected": len([l for l in self._links
                                          if l.worker_id is not None]),
                "sessions_total": len(self._records),
                "sessions_queued": queued,
                "sessions_running": len(self._running),
            }

    # ------------------------------------------------------------------
    # Scheduling (fair-share over tenants)
    # ------------------------------------------------------------------

    def _queue_for(self, tenant: str) -> deque:
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
        return queue

    def _pick_locked(self) -> Optional[SessionRecord]:
        """The next session to dispatch: the queued tenant with the fewest
        running sessions, ties broken by least-recently-dispatched."""
        tenants = [t for t, q in self._queues.items() if q]
        if not tenants:
            return None
        running = _Counter(r.tenant for r in self._running.values())
        tenant = min(tenants, key=lambda t: (running.get(t, 0),
                                             self._last_dispatch.get(t, -1),
                                             t))
        return self._queues[tenant].popleft()

    def _next_job(self, link: _WorkerLink
                  ) -> Optional[Tuple[SessionRecord, Dict]]:
        """Block until a session is available for this link (or shutdown)."""
        with self._lock:
            while not (self._shutdown or self._draining):
                record = self._pick_locked()
                if record is not None:
                    record.state = RUNNING
                    record.started_unix = _time.time()
                    record.worker_id = link.worker_id
                    link.record = record
                    link.fault_reason = None
                    link.started = _time.monotonic()
                    self._running[link] = record
                    self._last_dispatch[record.tenant] = \
                        next(self._dispatch_seq)
                    job = RepairJob(session_id=record.session_id,
                                    config=record.config,
                                    tenant=record.tenant,
                                    submitted_unix=record.submitted_unix)
                    frame = {"type": "job", "job": job.to_wire(),
                             "worker_id": link.worker_id or 0}
                    if self.fault_plan is not None:
                        frame["fault"] = self.fault_plan.to_wire()
                    self._update_gauges_locked()
                    return record, frame
                self._wakeup.wait(timeout=1.0)
            return None

    # ------------------------------------------------------------------
    # Link callbacks (thread-safe)
    # ------------------------------------------------------------------

    def _register_worker(self, link: _WorkerLink) -> None:
        with self._lock:
            link.worker_id = self._next_worker_id
            self._next_worker_id += 1
            self._update_gauges_locked()

    def _record_event(self, record: SessionRecord, wire: Dict) -> None:
        with self._lock:
            if record.state == RUNNING:
                record.events.append(wire)
        hook = self.on_event
        if hook is not None:
            annotated = dict(wire)
            annotated["session_id"] = record.session_id
            annotated["tenant"] = record.tenant
            try:
                hook(annotated)
            except Exception:            # noqa: BLE001 — observers never kill
                pass

    def _complete(self, link: _WorkerLink, record: SessionRecord,
                  outcome) -> None:
        with self._lock:
            self._running.pop(link, None)
            link.record = None
            if record.state != RUNNING:
                return                   # raced a requeue (deadline/drain)
            record.state = DONE
            record.finished_unix = _time.time()
            if isinstance(outcome, dict):
                record.report = outcome.get("report")
                record.stage_seconds = outcome.get("stage_seconds")
            self.metrics.counter("service_sessions_finished",
                                 tenant=record.tenant, state=DONE).inc()
            if record.started_unix:
                self.metrics.histogram(
                    "service_session_seconds", tenant=record.tenant).observe(
                        record.finished_unix - record.started_unix)
            self._update_gauges_locked()
            self._finished.notify_all()

    def _item_failed(self, link: _WorkerLink, record: SessionRecord,
                     detail: str) -> None:
        with self._lock:
            self._running.pop(link, None)
            link.record = None
            if record.state != RUNNING:
                return
            self._retry_or_fail_locked(record, "worker-exception", detail)

    def _frame_error(self, link: _WorkerLink) -> None:
        with self._lock:
            self.fault_stats.frame_errors += 1
            self.metrics.counter("service_frame_errors").inc()
            if link.fault_reason is None:
                link.fault_reason = "frame-error"

    def _link_lost(self, link: _WorkerLink) -> None:
        with self._lock:
            if link in self._links:
                self._links.remove(link)
            record = self._running.pop(link, None)
            link.record = None
            if record is not None and record.state == RUNNING:
                self._retry_or_fail_locked(
                    record, link.fault_reason or "disconnect",
                    "worker connection lost")
            self._update_gauges_locked()
            self._wakeup.notify_all()

    def _retry_or_fail_locked(self, record: SessionRecord, reason: str,
                              detail: str) -> None:
        record.attempts += 1
        record.worker_id = None
        if record.attempts >= record.policy.max_attempts:
            record.state = FAILED
            record.finished_unix = _time.time()
            record.error = (f"quarantined({reason}) after "
                            f"{record.attempts} attempts")
            record.error_detail = detail
            self.fault_stats.quarantined += 1
            self.metrics.counter("service_sessions_finished",
                                 tenant=record.tenant, state=FAILED).inc()
            self.metrics.counter("service_quarantined",
                                 tenant=record.tenant, reason=reason).inc()
            self._finished.notify_all()
        else:
            record.state = QUEUED
            record.error_detail = detail
            record.events.clear()        # partial stream; the rerun replaces it
            self.fault_stats.record_retry(0, reason, record.attempts)
            self.metrics.counter("service_job_retries",
                                 tenant=record.tenant, reason=reason).inc()
            # Retries jump their tenant's queue: the session already waited.
            self._queue_for(record.tenant).appendleft(record)
            self._wakeup.notify_all()
        self._update_gauges_locked()

    def _update_gauges_locked(self) -> None:
        for tenant, queue in self._queues.items():
            self.metrics.gauge("service_queue_depth",
                               tenant=tenant).set(len(queue))
        running = _Counter(r.tenant for r in self._running.values())
        for tenant in self._queues:
            self.metrics.gauge("service_sessions_running",
                               tenant=tenant).set(running.get(tenant, 0))
        self.metrics.gauge("service_workers_connected").set(
            len([l for l in self._links if l.worker_id is not None]))

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------

    def _supervise_loop(self) -> None:
        while True:
            _time.sleep(_TICK_SECONDS)
            with self._lock:
                if self._shutdown:
                    return
                draining = self._draining
                now = _time.monotonic()
                # Per-job soft deadlines (explicit job_deadline only — a
                # whole-run baseline estimate does not exist up front).
                severed = []
                for link, record in list(self._running.items()):
                    deadline = record.policy.resolve_deadline(None)
                    if (deadline and link.fault_reason is None
                            and now - link.started > deadline):
                        link.fault_reason = "deadline"
                        severed.append(link)
                # Reap dead local workers; queue respawns with capped
                # backoff (streak resets after a healthy window).
                respawns = 0
                if self.spawn_workers and not draining:
                    for process in list(self._processes):
                        if process.poll() is None:
                            continue
                        self._processes.remove(process)
                        if now - self._last_crash > _CRASH_STREAK_WINDOW:
                            self._crash_streak = 0
                        self._last_crash = now
                        delay = self.fault_policy.backoff(self._crash_streak)
                        self._crash_streak += 1
                        self._respawn_at.append(now + delay)
                    due = [t for t in self._respawn_at if t <= now]
                    for t in due:
                        self._respawn_at.remove(t)
                        respawns += 1
            for link in severed:
                try:
                    link.sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    link.sock.close()
                except OSError:
                    pass
                for process in self._processes:
                    if process.pid == link.pid and process.poll() is None:
                        process.terminate()
            for _ in range(respawns):
                self._spawn_worker()
                with self._lock:
                    self.fault_stats.worker_restarts += 1
                    self.metrics.counter("service_worker_restarts").inc()
