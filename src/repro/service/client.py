"""A tiny urllib client for the repair service HTTP front door.

Backs the ``repro submit`` / ``repro status`` CLI subcommands and the
service tests; stdlib only, like the server.
"""

from __future__ import annotations

import json
import time as _time
from typing import Dict, List, Optional
from urllib import error as _urlerror
from urllib import request as _urlrequest

from ..api.config import RepairConfig


class ClientError(RuntimeError):
    """An HTTP error from the service, with its status and body."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Talk to a ``repro serve`` front door at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing -----------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[Dict] = None,
                 headers: Optional[Dict[str, str]] = None) -> bytes:
        data = (json.dumps(payload, sort_keys=True).encode("utf-8")
                if payload is not None else None)
        request = _urlrequest.Request(self.base_url + path, data=data,
                                      method=method)
        request.add_header("Content-Type", "application/json")
        for key, value in (headers or {}).items():
            request.add_header(key, value)
        try:
            with _urlrequest.urlopen(request, timeout=self.timeout) as resp:
                return resp.read()
        except _urlerror.HTTPError as exc:
            body = exc.read().decode("utf-8", "replace")
            try:
                message = json.loads(body).get("error", body)
            except (json.JSONDecodeError, AttributeError):
                message = body
            raise ClientError(exc.code, message) from exc

    def _json(self, method: str, path: str,
              payload: Optional[Dict] = None,
              headers: Optional[Dict[str, str]] = None) -> Dict:
        return json.loads(self._request(method, path, payload=payload,
                                        headers=headers))

    # -- API ----------------------------------------------------------------

    def submit(self, config, tenant: Optional[str] = None) -> Dict:
        """POST a config (``RepairConfig`` or wire dict); returns the
        ``{"id", "tenant", "state"}`` acknowledgement."""
        if isinstance(config, RepairConfig):
            config = config.to_wire()
        payload: Dict[str, object] = {"config": config}
        if tenant is not None:
            payload["tenant"] = tenant
        return self._json("POST", "/sessions", payload=payload)

    def sessions(self) -> List[Dict]:
        return self._json("GET", "/sessions")["sessions"]

    def session(self, session_id: str) -> Dict:
        return self._json("GET", f"/sessions/{session_id}")

    def events(self, session_id: str) -> List[Dict]:
        raw = self._request("GET", f"/sessions/{session_id}/events")
        return [json.loads(line)
                for line in raw.decode("utf-8").splitlines() if line.strip()]

    def metrics_text(self) -> str:
        return self._request("GET", "/metrics").decode("utf-8")

    def health(self) -> Dict:
        return self._json("GET", "/healthz")

    def wait(self, session_id: str, timeout: float = 300.0,
             poll: float = 0.2) -> Dict:
        """Poll until the session is terminal; returns its full wire."""
        deadline = _time.monotonic() + timeout
        while True:
            wire = self.session(session_id)
            if wire.get("state") in ("done", "failed"):
                return wire
            if _time.monotonic() > deadline:
                raise TimeoutError(
                    f"session {session_id} still {wire.get('state')!r} "
                    f"after {timeout}s")
            _time.sleep(poll)
