"""Repair-as-a-service: whole repair runs on the fabric, many tenants.

The fourth layer of the reproduction's scale-out story.  PR 3 built the
fabric, PR 5 made a repair run one wire object, PR 9 made the fabric
fault-tolerant; this package turns the pieces into a long-lived service:

* :mod:`~repro.service.wire` — the :class:`RepairJob` wire format: a
  whole Diagnose → Generate → Backtest → Rank run as one fabric job;
* :mod:`~repro.service.runtime` — :class:`RepairJobRuntime`, the
  worker-side interpreter (scenario-cached, event-streaming);
* :mod:`~repro.service.daemon` — :class:`RepairServiceDaemon`, the
  multi-tenant coordinator: fair-share scheduling over a supervised
  ``repro-worker`` fleet, per-job retry/quarantine/deadlines, live
  per-session event streams;
* :mod:`~repro.service.http` — the stdlib HTTP/JSON front door
  (``repro serve``);
* :mod:`~repro.service.client` — the urllib client behind
  ``repro submit`` / ``repro status``.
"""

from .client import ClientError, ServiceClient
from .daemon import (RepairServiceDaemon, ServiceError, ServiceUnavailable,
                     SessionRecord, TERMINAL_STATES)
from .http import ServiceHTTPServer
from .runtime import RepairJobRuntime
from .wire import REPAIR_JOB_KIND, RepairJob, RepairJobError, scenario_digest

__all__ = [
    "REPAIR_JOB_KIND", "ClientError", "RepairJob", "RepairJobError",
    "RepairJobRuntime", "RepairServiceDaemon", "ServiceClient",
    "ServiceError", "ServiceHTTPServer", "ServiceUnavailable",
    "SessionRecord", "TERMINAL_STATES", "scenario_digest",
]
