"""HTTP/JSON front door for the repair service (stdlib only).

Thin by design: every route is a JSON view over
:class:`~repro.service.daemon.RepairServiceDaemon`, served by a
:class:`http.server.ThreadingHTTPServer` — no framework, no new
dependencies.  Endpoints:

========================  ==================================================
``POST /sessions``        Submit a run.  Body: a ``RepairConfig`` wire dict,
                          or ``{"tenant": ..., "config": {...}}``.  The
                          tenant may also ride the ``X-Repro-Tenant`` header
                          or a ``?tenant=`` query parameter.  Returns 202
                          with ``{"id", "tenant", "state"}``.
``GET /sessions``         All sessions (submission order), summary rows.
``GET /sessions/<id>``    One session: status plus the ranked report wire.
``GET /sessions/<id>/events``  The session's event stream as JSONL; with
                          ``?follow=1`` the response streams until the
                          session is terminal.
``GET /metrics``          The daemon's registry as Prometheus text.
``GET /healthz``          Liveness/drain state and fleet counters.
========================  ==================================================

Errors: 400 for malformed bodies/configs, 404 for unknown sessions or
paths, 503 while the daemon is draining.
"""

from __future__ import annotations

import json
import time as _time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..api.config import ConfigError
from ..obs.metrics import prometheus_text
from .daemon import RepairServiceDaemon, ServiceUnavailable

#: Poll interval of the ``?follow=1`` event stream.
_FOLLOW_TICK_SECONDS = 0.2


class ServiceHTTPServer(ThreadingHTTPServer):
    """The front door: one of these per daemon."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 service: RepairServiceDaemon, quiet: bool = True):
        super().__init__(address, _ServiceRequestHandler)
        self.service = service
        self.quiet = quiet

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    # HTTP/1.0: connection close delimits the ?follow=1 stream, so no
    # chunked-encoding machinery is needed.
    protocol_version = "HTTP/1.0"

    def log_message(self, fmt, *args):   # noqa: N802 — stdlib naming
        if not getattr(self.server, "quiet", True):
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    # -- plumbing -----------------------------------------------------------

    def _send_json(self, status: int, payload) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; charset=utf-8") -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    # -- routes -------------------------------------------------------------

    def do_GET(self):                    # noqa: N802 — stdlib naming
        service: RepairServiceDaemon = self.server.service
        split = urlsplit(self.path)
        parts = [p for p in split.path.split("/") if p]
        try:
            if parts == ["metrics"]:
                self._send_text(200,
                                prometheus_text(service.metrics.snapshot()))
            elif parts == ["healthz"]:
                self._send_json(200, service.status())
            elif parts == ["sessions"]:
                self._send_json(200, {"sessions": service.sessions()})
            elif len(parts) == 2 and parts[0] == "sessions":
                self._send_json(200, service.session_wire(parts[1]))
            elif (len(parts) == 3 and parts[0] == "sessions"
                  and parts[2] == "events"):
                query = parse_qs(split.query)
                follow = query.get("follow", ["0"])[0] not in ("0", "", None)
                self._stream_events(service, parts[1], follow)
            else:
                self._error(404, f"no such route: {split.path}")
        except KeyError:
            self._error(404, f"no such session: {parts[1]}")
        except (BrokenPipeError, ConnectionResetError):
            pass                         # client went away mid-response

    def do_POST(self):                   # noqa: N802 — stdlib naming
        service: RepairServiceDaemon = self.server.service
        split = urlsplit(self.path)
        parts = [p for p in split.path.split("/") if p]
        if parts != ["sessions"]:
            self._error(404, f"no such route: {split.path}")
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._error(400, f"body is not valid JSON: {exc}")
            return
        if not isinstance(payload, dict):
            self._error(400, "body must be a JSON object "
                             "(a RepairConfig wire, or {tenant, config})")
            return
        # Envelope form wins, then header, then query parameter.
        config_wire = payload
        tenant: Optional[str] = None
        if "config" in payload and isinstance(payload["config"], dict):
            config_wire = payload["config"]
            extra = set(payload) - {"config", "tenant"}
            if extra:
                self._error(400, f"unknown envelope keys: {sorted(extra)}")
                return
            tenant = payload.get("tenant")
        if tenant is None:
            tenant = self.headers.get("X-Repro-Tenant")
        if tenant is None:
            tenant = parse_qs(split.query).get("tenant", [None])[0]
        try:
            session_id = service.submit(config_wire,
                                        tenant=tenant or "default")
        except ServiceUnavailable as exc:
            self._error(503, str(exc))
            return
        except ConfigError as exc:
            self._error(400, f"bad repair config: {exc}")
            return
        self._send_json(202, {"id": session_id,
                              "tenant": tenant or "default",
                              "state": "queued"})

    def _stream_events(self, service: RepairServiceDaemon,
                       session_id: str, follow: bool) -> None:
        # Raises KeyError for unknown ids before any bytes are written.
        events, terminal = service.events_since(session_id, 0)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        offset = 0
        while True:
            for wire in events:
                line = json.dumps(wire, sort_keys=True, default=str) + "\n"
                self.wfile.write(line.encode("utf-8"))
            offset += len(events)
            self.wfile.flush()
            if terminal or not follow:
                return
            _time.sleep(_FOLLOW_TICK_SECONDS)
            events, terminal = service.events_since(session_id, offset)
