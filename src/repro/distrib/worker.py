"""``repro-worker`` — drain a backtest coordinator's candidate queue.

Run one (or many, across machines) against a listening
:class:`~repro.distrib.transport.SocketTransport`::

    python -m repro.distrib.worker --connect HOST:PORT

The worker speaks the length-prefixed frame protocol: it receives a job
*header* (scenario spec + backtester configuration + candidate count — the
candidate wires themselves arrive with each dispatched item, so the worker
only ever holds the candidates it evaluates), rebuilds the scenario and
backtester, then pulls candidate indices one at a time and streams
:class:`ShardOutcome` results back until the coordinator says ``job_done``.
A :class:`RuntimeCache` persists across jobs, so repeated ``evaluate_all``
calls on the same scenario skip the scenario/backtester/trunk rebuild.
It then waits for the next job; ``shutdown`` (or a closed connection) ends
the process.  Only connect to coordinators you trust: frames are pickled.

When the coordinator ships a :class:`~repro.distrib.faults.FaultPlan` with
the job frame, the worker arms a :class:`FaultInjector` against its
assigned ``worker_id`` — this is how chaos tests make a *real* remote
worker crash, hang, delay, or corrupt frames at a deterministic point.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import sys
import time as _time
import traceback
from typing import Optional

from .faults import FaultInjector, FaultPlan
from .jobs import JobRuntime, RuntimeCache
from .transport import _LENGTH, FrameError, recv_frame, send_frame


def _tamper_result_frame(sock: socket.socket, action) -> None:
    """Emit a deliberately broken frame, then die.

    ``corrupt_frame`` sends a well-formed length prefix over an
    undecodable payload; ``truncate_frame`` promises more payload bytes
    than it delivers and closes mid-frame.  Either way the coordinator
    must requeue the in-flight item and count a frame error, and this
    process is beyond saving.
    """
    try:
        if action.kind == "corrupt_frame":
            sock.sendall(_LENGTH.pack(16) + b"\x00" * 16)
        else:                            # truncate_frame
            sock.sendall(_LENGTH.pack(1 << 20) + b"partial")
    except OSError:
        pass
    os._exit(1)


def _serve_job(sock: socket.socket, job_wire,
               cache: Optional[RuntimeCache] = None,
               injector: Optional[FaultInjector] = None) -> None:
    try:
        runtime = JobRuntime(job_wire, cache=cache)
    except BaseException:                # noqa: BLE001 — report and bail out
        send_frame(sock, {"type": "job_error",
                          "message": traceback.format_exc()})
        return
    send_frame(sock, {"type": "next"})
    while True:
        message = recv_frame(sock)
        if message is None:
            raise ConnectionError("coordinator closed mid-job")
        kind = message.get("type")
        if kind == "job_done":
            return
        if kind != "item":
            continue
        index = message["index"]
        try:
            if injector is not None:
                injector.before_item(index)
            outcome = runtime.evaluate(index,
                                       candidate_wire=message.get("candidate"))
        except BaseException:            # noqa: BLE001
            send_frame(sock, {"type": "error", "index": index,
                              "message": traceback.format_exc()})
            continue
        action = (injector.result_action(index)
                  if injector is not None else None)
        if action is not None:
            if action.kind == "delay_result":
                _time.sleep(action.seconds)
            elif action.kind == "drop_result":
                os._exit(1)              # the result dies with the process
            else:                        # corrupt_frame / truncate_frame
                _tamper_result_frame(sock, action)
        send_frame(sock, {"type": "result", "index": index,
                          "outcome": outcome})


def serve(host: str, port: int) -> None:
    """Connect to a coordinator and process jobs until shutdown."""
    cache = RuntimeCache()
    injector: Optional[FaultInjector] = None
    injector_key = None
    with socket.create_connection((host, port)) as sock:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        send_frame(sock, {"type": "hello", "pid": os.getpid()})
        while True:
            message = recv_frame(sock)
            if message is None or message.get("type") == "shutdown":
                return
            if message.get("type") == "job":
                fault_wire = message.get("fault")
                worker_id = int(message.get("worker_id", 0))
                if fault_wire:
                    # One injector per (worker_id, plan): its one-shot
                    # bookkeeping must persist across jobs on the same
                    # connection, not rearm for every job frame.
                    key = (worker_id,
                           json.dumps(fault_wire, sort_keys=True, default=str))
                    if key != injector_key:
                        injector = FaultInjector(
                            FaultPlan.from_wire(fault_wire),
                            worker_id=worker_id)
                        injector_key = key
                else:
                    injector = None
                    injector_key = None
                _serve_job(sock, message["job"], cache=cache,
                           injector=injector)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker", description=__doc__.splitlines()[0])
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator socket to pull candidates from")
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"--connect expects HOST:PORT, got {args.connect!r}")
    try:
        serve(host, int(port))
    except (ConnectionError, OSError, FrameError) as exc:
        print(f"repro-worker: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
