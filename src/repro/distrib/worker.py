"""``repro-worker`` — drain a backtest coordinator's candidate queue.

Run one (or many, across machines) against a listening
:class:`~repro.distrib.transport.SocketTransport`::

    python -m repro.distrib.worker --connect HOST:PORT

The worker speaks the length-prefixed frame protocol: it receives a job
*header* (scenario spec + backtester configuration + candidate count — the
candidate wires themselves arrive with each dispatched item, so the worker
only ever holds the candidates it evaluates), rebuilds the scenario and
backtester, then pulls candidate indices one at a time and streams
:class:`ShardOutcome` results back until the coordinator says ``job_done``.
A :class:`RuntimeCache` persists across jobs, so repeated ``evaluate_all``
calls on the same scenario skip the scenario/backtester/trunk rebuild.
It then waits for the next job; ``shutdown`` (or a closed connection) ends
the process.  Only connect to coordinators you trust: frames are pickled.

When the coordinator ships a :class:`~repro.distrib.faults.FaultPlan` with
the job frame, the worker arms a :class:`FaultInjector` against its
assigned ``worker_id`` — this is how chaos tests make a *real* remote
worker crash, hang, delay, or corrupt frames at a deterministic point.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import sys
import time as _time
import traceback
from typing import Optional

from .faults import FaultInjector, FaultPlan
from .jobs import RuntimeCache, build_runtime
from .transport import _LENGTH, FrameError, recv_frame, send_frame


class GracefulShutdown:
    """SIGTERM/SIGINT policy for a worker process: drain, don't strand.

    An idle worker (blocked in ``recv`` between jobs or items) exits
    immediately; a busy one finishes the item it is evaluating, delivers
    the result frame, and exits before taking more work.  Either way the
    coordinator sees a clean close and requeues nothing that was already
    delivered — a Ctrl-C against a worker fleet therefore loses no
    completed work and never wedges the coordinator.
    """

    def __init__(self):
        self.requested = False
        self.busy = False

    def install(self) -> "GracefulShutdown":
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                signal.signal(signum, self._handle)
            except (ValueError, OSError):  # non-main thread / exotic platform
                pass
        return self

    def _handle(self, signum, frame) -> None:
        self.requested = True
        if not self.busy:
            # Idle: the pending recv would otherwise be retried by PEP 475;
            # raising here unwinds it (socket closed by the context manager).
            raise SystemExit(0)

    def checkpoint(self) -> None:
        """Exit if a drain was requested while we were busy."""
        if self.requested:
            raise SystemExit(0)


def _tamper_result_frame(sock: socket.socket, action) -> None:
    """Emit a deliberately broken frame, then die.

    ``corrupt_frame`` sends a well-formed length prefix over an
    undecodable payload; ``truncate_frame`` promises more payload bytes
    than it delivers and closes mid-frame.  Either way the coordinator
    must requeue the in-flight item and count a frame error, and this
    process is beyond saving.
    """
    try:
        if action.kind == "corrupt_frame":
            sock.sendall(_LENGTH.pack(16) + b"\x00" * 16)
        else:                            # truncate_frame
            sock.sendall(_LENGTH.pack(1 << 20) + b"partial")
    except OSError:
        pass
    os._exit(1)


def _serve_job(sock: socket.socket, job_wire,
               cache: Optional[RuntimeCache] = None,
               injector: Optional[FaultInjector] = None,
               shutdown: Optional[GracefulShutdown] = None) -> None:
    try:
        runtime = build_runtime(job_wire, cache=cache)
    except BaseException:                # noqa: BLE001 — report and bail out
        send_frame(sock, {"type": "job_error",
                          "message": traceback.format_exc()})
        return
    if hasattr(runtime, "set_event_sink"):
        # Repair runtimes stream SessionEvents back between protocol
        # frames: same thread, same socket, so frames never interleave.
        runtime.set_event_sink(
            lambda wire: send_frame(sock, {"type": "event", "event": wire}))
    send_frame(sock, {"type": "next"})
    while True:
        message = recv_frame(sock)
        if message is None:
            raise ConnectionError("coordinator closed mid-job")
        kind = message.get("type")
        if kind == "job_done":
            return
        if kind != "item":
            continue
        index = message["index"]
        if shutdown is not None:
            shutdown.busy = True
        try:
            if injector is not None:
                injector.before_item(index)
            outcome = runtime.evaluate(index,
                                       candidate_wire=message.get("candidate"))
        except SystemExit:
            raise
        except BaseException:            # noqa: BLE001
            send_frame(sock, {"type": "error", "index": index,
                              "message": traceback.format_exc()})
            if shutdown is not None:
                shutdown.busy = False
                shutdown.checkpoint()
            continue
        action = (injector.result_action(index)
                  if injector is not None else None)
        if action is not None:
            if action.kind == "delay_result":
                _time.sleep(action.seconds)
            elif action.kind == "drop_result":
                os._exit(1)              # the result dies with the process
            else:                        # corrupt_frame / truncate_frame
                _tamper_result_frame(sock, action)
        send_frame(sock, {"type": "result", "index": index,
                          "outcome": outcome})
        if shutdown is not None:
            shutdown.busy = False
            # Drain point: the finished item's result is delivered; a
            # pending SIGTERM/SIGINT now exits instead of pulling more.
            shutdown.checkpoint()


def serve(host: str, port: int,
          shutdown: Optional[GracefulShutdown] = None) -> None:
    """Connect to a coordinator and process jobs until shutdown."""
    cache = RuntimeCache()
    injector: Optional[FaultInjector] = None
    injector_key = None
    with socket.create_connection((host, port)) as sock:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        send_frame(sock, {"type": "hello", "pid": os.getpid()})
        while True:
            if shutdown is not None:
                shutdown.checkpoint()
            message = recv_frame(sock)
            if message is None or message.get("type") == "shutdown":
                return
            if message.get("type") == "job":
                fault_wire = message.get("fault")
                worker_id = int(message.get("worker_id", 0))
                if fault_wire:
                    # One injector per (worker_id, plan): its one-shot
                    # bookkeeping must persist across jobs on the same
                    # connection, not rearm for every job frame.
                    key = (worker_id,
                           json.dumps(fault_wire, sort_keys=True, default=str))
                    if key != injector_key:
                        injector = FaultInjector(
                            FaultPlan.from_wire(fault_wire),
                            worker_id=worker_id)
                        injector_key = key
                else:
                    injector = None
                    injector_key = None
                _serve_job(sock, message["job"], cache=cache,
                           injector=injector, shutdown=shutdown)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker", description=__doc__.splitlines()[0])
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator socket to pull candidates from")
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"--connect expects HOST:PORT, got {args.connect!r}")
    shutdown = GracefulShutdown().install()
    try:
        serve(host, int(port), shutdown=shutdown)
    except SystemExit as exc:
        return int(exc.code or 0)
    except (ConnectionError, OSError, FrameError) as exc:
        if shutdown.requested:
            return 0                     # drain raced the socket teardown
        print(f"repro-worker: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
