"""``repro-worker`` — drain a backtest coordinator's candidate queue.

Run one (or many, across machines) against a listening
:class:`~repro.distrib.transport.SocketTransport`::

    python -m repro.distrib.worker --connect HOST:PORT

The worker speaks the length-prefixed frame protocol: it receives a job
*header* (scenario spec + backtester configuration + candidate count — the
candidate wires themselves arrive with each dispatched item, so the worker
only ever holds the candidates it evaluates), rebuilds the scenario and
backtester, then pulls candidate indices one at a time and streams
:class:`ShardOutcome` results back until the coordinator says ``job_done``.
A :class:`RuntimeCache` persists across jobs, so repeated ``evaluate_all``
calls on the same scenario skip the scenario/backtester/trunk rebuild.
It then waits for the next job; ``shutdown`` (or a closed connection) ends
the process.  Only connect to coordinators you trust: frames are pickled.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import traceback
from typing import Optional

from .jobs import JobRuntime, RuntimeCache
from .transport import recv_frame, send_frame


def _serve_job(sock: socket.socket, job_wire,
               cache: Optional[RuntimeCache] = None) -> None:
    try:
        runtime = JobRuntime(job_wire, cache=cache)
    except BaseException:                # noqa: BLE001 — report and bail out
        send_frame(sock, {"type": "job_error",
                          "message": traceback.format_exc()})
        return
    send_frame(sock, {"type": "next"})
    while True:
        message = recv_frame(sock)
        if message is None:
            raise ConnectionError("coordinator closed mid-job")
        kind = message.get("type")
        if kind == "job_done":
            return
        if kind != "item":
            continue
        index = message["index"]
        try:
            outcome = runtime.evaluate(index,
                                       candidate_wire=message.get("candidate"))
        except BaseException:            # noqa: BLE001
            send_frame(sock, {"type": "error", "index": index,
                              "message": traceback.format_exc()})
        else:
            send_frame(sock, {"type": "result", "index": index,
                              "outcome": outcome})


def serve(host: str, port: int) -> None:
    """Connect to a coordinator and process jobs until shutdown."""
    cache = RuntimeCache()
    with socket.create_connection((host, port)) as sock:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        send_frame(sock, {"type": "hello", "pid": os.getpid()})
        while True:
            message = recv_frame(sock)
            if message is None or message.get("type") == "shutdown":
                return
            if message.get("type") == "job":
                _serve_job(sock, message["job"], cache=cache)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker", description=__doc__.splitlines()[0])
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator socket to pull candidates from")
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"--connect expects HOST:PORT, got {args.connect!r}")
    try:
        serve(host, int(port))
    except (ConnectionError, OSError) as exc:
        print(f"repro-worker: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
