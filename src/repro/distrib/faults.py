"""Fault-tolerance primitives for the distributed backtest fabric.

Three declarative objects live here, all JSON-round-trippable like
:class:`~repro.scenarios.spec.ScenarioSpec`:

:class:`FaultToleranceConfig`
    The policy knobs — per-item retry budget, worker restart budget with
    capped exponential backoff, the per-item soft deadline derived from
    the timed baseline replay, and the worker-fleet floor below which the
    transport drains the remaining queue serially in-process.  Every
    transport carries one (``RepairConfig.fault_tolerance`` overrides it),
    so retry/quarantine semantics are identical across in-process, spawn
    and socket execution.

:class:`FaultPlan` / :class:`FaultAction`
    A deterministic fault-injection script: *kill worker 0 before its 2nd
    item*, *poison candidate 3*, *corrupt the result frame for item 1*.
    Plans are seeded (:meth:`FaultPlan.generate`) and injectable into any
    transport, so chaos tests — and the CI chaos step — replay the exact
    same failure sequence every run and assert bit-identical reports.

:class:`FaultInjector` is the worker-side interpreter of a plan, and
:class:`QuarantinedItem` is what a transport delivers in place of a
:class:`~repro.backtest.replay.ShardOutcome` when an item exhausts its
attempts; the coordinator turns it into a deterministic error-shaped
:class:`~repro.backtest.replay.BacktestResult`.
"""

from __future__ import annotations

import json
import os
import random
import time as _time
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Tuple

__all__ = [
    "FAULT_KINDS", "FaultAction", "FaultInjector", "FaultPlan",
    "FaultStats", "FaultToleranceConfig", "InjectedFault", "QuarantinedItem",
]

#: Soft-deadline floor: even tiny scenarios (millisecond baselines) get a
#: generous per-item allowance so slow CI machines never trip it.
DEADLINE_FLOOR_SECONDS = 30.0

#: Every fault kind a plan may script.  ``kill``/``hang``/``raise`` fire
#: before a worker evaluates its Nth item; ``poison`` fires on *every*
#: evaluation of one candidate index (the quarantine path); the ``*_result``
#: and ``*_frame`` kinds manipulate the result delivery after a successful
#: evaluation (frame corruption is socket-specific — the queue transports
#: map it to a worker death, the in-process transport to a raise).
FAULT_KINDS = ("kill", "hang", "raise", "poison", "drop_result",
               "delay_result", "corrupt_frame", "truncate_frame")


class InjectedFault(RuntimeError):
    """Raised inside a worker loop by a ``raise``/``poison`` fault action."""


@dataclass(frozen=True)
class FaultAction:
    """One scripted failure.

    Trigger semantics: with ``index`` set the action targets one candidate
    (``poison`` fires on every attempt by any worker — that is what makes
    a candidate poisonous; other kinds fire once).  Without ``index`` the
    action fires when worker ``worker`` (``None`` = any) is about to
    evaluate its ``after_items + 1``-th item of the job — and only in the
    worker's first incarnation, so a respawned replacement does not
    re-fire the fault that killed its predecessor.
    """

    kind: str
    worker: Optional[int] = None
    after_items: int = 0
    index: Optional[int] = None
    #: Sleep length for ``hang``/``delay_result``.
    seconds: float = 60.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected "
                             f"one of {sorted(FAULT_KINDS)}")

    def to_wire(self) -> Dict[str, object]:
        return {"kind": self.kind, "worker": self.worker,
                "after_items": self.after_items, "index": self.index,
                "seconds": self.seconds}

    @classmethod
    def from_wire(cls, wire: Dict[str, object]) -> "FaultAction":
        known = {f.name for f in fields(cls)}
        unknown = set(wire) - known
        if unknown:
            raise ValueError(f"unknown fault action keys: {sorted(unknown)}")
        return cls(**wire)


@dataclass
class FaultPlan:
    """A seeded, deterministic script of worker failures.

    JSON round-trip like ``ScenarioSpec``: ``to_wire``/``from_wire`` plus
    file helpers for ``repro repair --fault-plan plan.json``.  The plan is
    injected into a transport at construction (``fault_plan=``) and rides
    to workers with the job, so the same plan file reproduces the same
    failure sequence on any machine.
    """

    seed: int = 0
    actions: Tuple[FaultAction, ...] = ()

    def __post_init__(self):
        self.actions = tuple(
            a if isinstance(a, FaultAction) else FaultAction.from_wire(a)
            for a in self.actions)

    def to_wire(self) -> Dict[str, object]:
        return {"seed": self.seed,
                "actions": [action.to_wire() for action in self.actions]}

    @classmethod
    def from_wire(cls, wire: Dict[str, object]) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(wire) - known
        if unknown:
            raise ValueError(f"unknown fault plan keys: {sorted(unknown)}")
        actions = tuple(FaultAction.from_wire(dict(a))
                        for a in wire.get("actions", ()))
        return cls(seed=int(wire.get("seed", 0)), actions=actions)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_wire(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        wire = json.loads(text)
        if not isinstance(wire, dict):
            raise ValueError("fault plan JSON must be an object")
        return cls.from_wire(wire)

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    @classmethod
    def coerce(cls, value) -> Optional["FaultPlan"]:
        """``FaultPlan`` | wire dict | ``None`` → ``Optional[FaultPlan]``."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls.from_wire(value)
        raise ValueError(f"cannot build a FaultPlan from {type(value).__name__}")

    @classmethod
    def generate(cls, seed: int, workers: int = 2, items: int = 4,
                 count: int = 2,
                 kinds: Tuple[str, ...] = ("kill", "raise", "delay_result")
                 ) -> "FaultPlan":
        """A deterministic pseudo-random plan: same seed, same plan."""
        rng = random.Random(seed)
        actions = tuple(
            FaultAction(kind=rng.choice(kinds),
                        worker=rng.randrange(workers),
                        after_items=rng.randrange(items),
                        seconds=round(rng.uniform(0.01, 0.1), 3))
            for _ in range(count))
        return cls(seed=seed, actions=actions)


@dataclass
class FaultToleranceConfig:
    """Retry / restart / degradation policy of the fabric.

    Also serves as the runtime policy object on every transport
    (``transport.fault_policy``); the defaults keep fault-free runs
    bit-identical to a fabric without fault tolerance — retries simply
    never trigger.
    """

    #: An item that fails on a worker is retried until it has been
    #: attempted this many times, then quarantined (a deterministic
    #: rejected result with a ``quarantined(<reason>)`` note).
    max_attempts: int = 3
    #: How many crashed workers a single job may respawn (capped
    #: exponential backoff between restarts).
    restart_budget: int = 2
    #: Per-item soft deadline = ``job_deadline_factor`` × the timed
    #: baseline replay (the PR 7 estimate; every candidate replays the
    #: same trace), floored at ``DEADLINE_FLOOR_SECONDS``.  ``None``
    #: disables deadline enforcement.
    job_deadline_factor: Optional[float] = 50.0
    #: Absolute per-item deadline override in seconds (``None`` = derive
    #: from the factor).  Chaos tests use this for sub-second hang bounds.
    job_deadline: Optional[float] = None
    #: When the live worker fleet drops below this floor and the restart
    #: budget is spent, the transport drains the remaining queue serially
    #: in-process instead of raising.
    min_workers: int = 1
    #: Restart backoff: ``min(backoff_cap, backoff_base * 2**n)`` seconds
    #: before the ``n``-th respawn of a job.
    backoff_base: float = 0.1
    backoff_cap: float = 2.0

    def to_wire(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_wire(cls, wire: Dict[str, object]) -> "FaultToleranceConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(wire) - known
        if unknown:
            raise ValueError(
                f"unknown fault_tolerance keys: {sorted(unknown)}")
        return cls(**wire)

    @classmethod
    def coerce(cls, value) -> "FaultToleranceConfig":
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls.from_wire(value)
        raise ValueError(
            f"cannot build a FaultToleranceConfig from {type(value).__name__}")

    def resolve_deadline(self, per_item_estimate: Optional[float]
                         ) -> Optional[float]:
        """The per-item soft deadline in seconds, or ``None``."""
        if self.job_deadline is not None:
            return self.job_deadline
        if self.job_deadline_factor is None or not per_item_estimate:
            return None
        return max(DEADLINE_FLOOR_SECONDS,
                   self.job_deadline_factor * per_item_estimate)

    def backoff(self, restart_number: int) -> float:
        """Seconds to wait before the ``restart_number``-th respawn."""
        return min(self.backoff_cap,
                   self.backoff_base * (2.0 ** restart_number))

    def with_updates(self, **knobs) -> "FaultToleranceConfig":
        return replace(self, **knobs)


@dataclass
class QuarantinedItem:
    """Delivered by a transport when an item exhausts its attempts.

    Takes the place of a ``ShardOutcome`` in the result stream; the
    coordinator converts it into a deterministic rejected
    ``BacktestResult`` (baseline stats, machine-readable
    ``quarantined(<reason>)`` note) so ``len(results)`` still equals the
    candidate count.  ``reason`` is one of the failure-taxonomy codes:
    ``worker-exception`` | ``worker-crash`` | ``deadline`` | ``disconnect``
    | ``frame-error``.
    """

    index: int
    reason: str
    attempts: int
    detail: str = ""


@dataclass
class FaultStats:
    """Per-``run_job`` recovery counters (``transport.last_fault_stats``).

    The coordinator folds these into telemetry (``fabric_worker_restarts``,
    ``fabric_job_retries{reason=…}``, ``fabric_quarantined``,
    ``fabric_frame_errors``, retry spans) and a ``fabric_fault_stats``
    session event after each job.
    """

    worker_restarts: int = 0
    retries: Dict[str, int] = field(default_factory=dict)
    #: One ``(index, reason, attempt)`` per retry, for retry spans.
    retry_log: List[Tuple[int, str, int]] = field(default_factory=list)
    quarantined: int = 0
    frame_errors: int = 0
    degraded: bool = False

    def record_retry(self, index: int, reason: str, attempt: int) -> None:
        self.retries[reason] = self.retries.get(reason, 0) + 1
        self.retry_log.append((index, reason, attempt))

    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())

    def any(self) -> bool:
        return bool(self.worker_restarts or self.retries or self.quarantined
                    or self.frame_errors or self.degraded)


class FaultInjector:
    """Worker-side interpreter of a :class:`FaultPlan`.

    One injector per (worker, incarnation); :meth:`before_item` runs ahead
    of each evaluation (and may kill, hang or raise), and
    :meth:`result_action` tells the delivery path whether to tamper with
    this item's result.  ``inprocess=True`` maps process-level faults
    (``kill``, ``hang``) to raises, since the calling process must survive
    its own chaos test.
    """

    def __init__(self, plan: Optional[FaultPlan], worker_id: int = 0,
                 incarnation: int = 0, inprocess: bool = False):
        self.plan = FaultPlan.coerce(plan)
        self.worker_id = worker_id
        self.incarnation = incarnation
        self.inprocess = inprocess
        self.items_seen = 0
        self._fired: set = set()

    def _positional_match(self, key: int, action: FaultAction) -> bool:
        return (key not in self._fired
                and self.incarnation == 0
                and (action.worker is None or action.worker == self.worker_id)
                and self.items_seen == action.after_items + 1)

    def before_item(self, index: int) -> None:
        if self.plan is None:
            return
        self.items_seen += 1
        for key, action in enumerate(self.plan.actions):
            if action.kind == "poison":
                if action.index == index:
                    raise InjectedFault(
                        f"poisoned candidate {index} (fault plan)")
                continue
            if action.kind not in ("kill", "hang", "raise"):
                continue
            if action.index is not None:
                if action.index != index or key in self._fired \
                        or self.incarnation != 0:
                    continue
            elif not self._positional_match(key, action):
                continue
            self._fired.add(key)
            if action.kind == "raise" or self.inprocess:
                raise InjectedFault(
                    f"injected {action.kind} before item {index} "
                    f"(worker {self.worker_id}, fault plan)")
            if action.kind == "hang":
                _time.sleep(action.seconds)
            else:                                        # kill
                os._exit(1)

    def result_action(self, index: int) -> Optional[FaultAction]:
        """The frame/result fault to apply to this item's delivery."""
        if self.plan is None or self.inprocess or self.incarnation != 0:
            return None
        for key, action in enumerate(self.plan.actions):
            if action.kind not in ("drop_result", "delay_result",
                                   "corrupt_frame", "truncate_frame"):
                continue
            if key in self._fired:
                continue
            if action.index is not None:
                if action.index != index:
                    continue
            elif not ((action.worker is None
                       or action.worker == self.worker_id)
                      and self.items_seen == action.after_items + 1):
                continue
            self._fired.add(key)
            return action
        return None
