"""Pluggable transports for the distributed backtest fabric.

A transport owns a set of workers and moves one :mod:`~repro.distrib.jobs`
job at a time through them under *pull* scheduling: workers ask for the
next candidate index when they become free, so slow candidates (deep repair
programs, abort-policy survivors) never stall a statically assigned shard.
Three implementations:

``InProcessTransport``
    Evaluates in the calling process through the same
    :class:`~repro.distrib.jobs.JobRuntime` the remote workers use —
    the reference implementation and the zero-dependency fallback.

``SpawnTransport``
    A pool of ``spawn``-start multiprocessing workers.  Unlike the fork
    pool in :mod:`repro.backtest.replay`, nothing is inherited: the job
    wire is the only input, which is what makes this path work on
    macOS/Windows (no ``fork``) and keeps it semantically identical to a
    remote worker.

``SocketTransport``
    A length-prefixed TCP protocol (4-byte big-endian frame length +
    pickled dict) served to ``repro-worker`` processes
    (``python -m repro.distrib.worker --connect HOST:PORT``), which may run
    on other machines and drain one shared candidate queue.  By default it
    also spawns ``workers`` local worker processes so a single-machine run
    needs no manual setup.

Every transport enforces one **fault-tolerance policy**
(:class:`~repro.distrib.faults.FaultToleranceConfig`, the
``fault_policy=`` constructor argument):

* worker death is detected promptly (process liveness / socket EOF, not
  the ``result_timeout`` stall limit) and crashed workers are respawned
  with capped exponential backoff up to the policy's restart budget;
* an item that fails on a worker is requeued with an attempt count and,
  after ``max_attempts``, delivered as a
  :class:`~repro.distrib.faults.QuarantinedItem` instead of poisoning the
  whole job;
* items exceeding the job wire's per-item soft ``deadline`` are treated
  as hangs: the wedged worker is killed and the item retried;
* when the fleet falls below ``min_workers`` (or dies entirely) with no
  restart budget left, the remaining queue drains serially in-process —
  a recorded downgrade, not an error.

Recovery counters for the most recent job are exposed on
``transport.last_fault_stats``; a :class:`~repro.distrib.faults.FaultPlan`
(``fault_plan=``) deterministically injects worker failures for chaos
tests.

Transports are reusable across jobs (workers persist between ``run_job``
calls) and are context managers; ``close()`` shuts the workers down.

Security note: frames are pickled, so the socket transport must only be
used between mutually trusted machines (same codebase, same operator) —
the standard assumption for a compute cluster draining one queue.
"""

from __future__ import annotations

import os
import pickle
import queue as _queue
import socket
import struct
import subprocess
import sys
import threading
import time as _time
import traceback
from collections import deque
from typing import Callable, Dict, List, Optional, Set, Tuple

from .faults import (FaultInjector, FaultPlan, FaultStats,
                     FaultToleranceConfig, QuarantinedItem)
from .jobs import DistribError, JobRuntime, RuntimeCache, strip_candidates

#: Callback invoked by ``run_job`` as results stream in (completion order).
ResultCallback = Callable[[int, object], None]

#: Supervision tick: how often transports re-check worker liveness and
#: per-item deadlines while waiting for results — this, not the stall
#: timeout, bounds crash-detection latency.
_TICK_SECONDS = 0.2


class TransportError(DistribError):
    """A worker or connection failed in a way the transport cannot hide."""


class FrameError(TransportError):
    """A truncated or undecodable length-prefixed frame.

    Distinct from a clean close (``recv_frame`` returning ``None``): the
    peer wrote garbage or died mid-frame.  The serving side treats it as
    a disconnect — requeue the in-flight item, drop the connection — and
    counts it in ``fabric_frame_errors``.
    """


# ---------------------------------------------------------------------------
# Frame protocol (shared by the socket transport and repro-worker)
# ---------------------------------------------------------------------------

_LENGTH = struct.Struct(">I")


def send_frame(sock: socket.socket, message: Dict) -> None:
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> Optional[Dict]:
    """Read one frame; ``None`` on a cleanly closed connection.

    A connection that closes *mid-frame* (short read) or delivers an
    undecodable payload raises :class:`FrameError` instead of
    masquerading as a clean close, so callers can requeue in-flight work
    and count the corruption.
    """
    header = _recv_upto(sock, _LENGTH.size)
    if not header:
        return None
    if len(header) < _LENGTH.size:
        raise FrameError(f"truncated frame header "
                         f"({len(header)}/{_LENGTH.size} bytes)")
    (length,) = _LENGTH.unpack(header)
    payload = _recv_upto(sock, length)
    if len(payload) < length:
        raise FrameError(f"truncated frame payload "
                         f"({len(payload)}/{length} bytes)")
    try:
        return pickle.loads(payload)
    except Exception as exc:             # noqa: BLE001 — any decode failure
        raise FrameError(f"undecodable frame payload: {exc!r}") from exc


def _recv_upto(sock: socket.socket, count: int) -> bytes:
    """Read up to ``count`` bytes; shorter only if the peer closed."""
    chunks = []
    got = 0
    while got < count:
        chunk = sock.recv(count - got)
        if not chunk:
            break
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


class BaseTransport:
    """Interface: run jobs through a (possibly remote) worker set."""

    name = "?"

    def __init__(self, fault_policy=None, fault_plan=None):
        #: Retry/restart/degradation policy; every transport has one (the
        #: defaults make fault-free runs behave exactly as before).
        self.fault_policy = FaultToleranceConfig.coerce(fault_policy)
        #: Optional deterministic fault-injection script for chaos tests.
        self.fault_plan = FaultPlan.coerce(fault_plan)
        #: Recovery counters of the most recent ``run_job``.
        self.last_fault_stats = FaultStats()
        self._fallback_cache: Optional[RuntimeCache] = None

    def run_job(self, job_wire: Dict, on_result: ResultCallback) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- shared fault-tolerance machinery ----------------------------------

    def _begin_fault_stats(self) -> FaultStats:
        self.last_fault_stats = FaultStats()
        return self.last_fault_stats

    def _drain_serially(self, job_wire: Dict,
                        items: List[Tuple[int, int]],
                        on_result: ResultCallback,
                        stats: FaultStats) -> None:
        """Graceful degradation: evaluate ``items`` in this process.

        Called when the worker fleet is gone (or below the policy floor)
        with no restart budget left.  Runs the same retry/quarantine
        policy as the remote paths — results stay bit-identical, and the
        downgrade is recorded on ``stats`` instead of raised.
        """
        stats.degraded = True
        if self._fallback_cache is None:
            self._fallback_cache = RuntimeCache()
        runtime = JobRuntime(job_wire, cache=self._fallback_cache)
        policy = self.fault_policy
        for index, attempts in items:
            while True:
                try:
                    outcome = runtime.evaluate(index)
                except Exception:        # noqa: BLE001 — policy decides
                    attempts += 1
                    detail = traceback.format_exc()
                    if attempts >= policy.max_attempts:
                        stats.quarantined += 1
                        on_result(index, QuarantinedItem(
                            index=index, reason="worker-exception",
                            attempts=attempts, detail=detail))
                        break
                    stats.record_retry(index, "worker-exception", attempts)
                else:
                    on_result(index, outcome)
                    break


# ---------------------------------------------------------------------------
# In-process
# ---------------------------------------------------------------------------


class InProcessTransport(BaseTransport):
    """Evaluate in the calling process via the worker-side runtime.

    This still exercises the whole wire path (spec rebuild, candidate
    decode), so it doubles as the cheapest integration test of a job.
    Repeated jobs on one transport instance share the runtime cache, like
    a persistent remote worker would.  The retry/quarantine policy applies
    here too (process-level fault kinds degrade to raises), so chaos
    semantics are identical across all three transports.
    """

    name = "inprocess"

    def __init__(self, fault_policy=None, fault_plan=None):
        super().__init__(fault_policy=fault_policy, fault_plan=fault_plan)
        self.runtime_cache = RuntimeCache()

    def run_job(self, job_wire: Dict, on_result: ResultCallback) -> None:
        stats = self._begin_fault_stats()
        policy = self.fault_policy
        runtime = JobRuntime(job_wire, cache=self.runtime_cache)
        injector = (FaultInjector(self.fault_plan, worker_id=0,
                                  incarnation=0, inprocess=True)
                    if self.fault_plan is not None else None)
        for index in range(len(runtime)):
            attempts = 0
            while True:
                try:
                    if injector is not None:
                        injector.before_item(index)
                    outcome = runtime.evaluate(index)
                except Exception:        # noqa: BLE001 — policy decides
                    attempts += 1
                    detail = traceback.format_exc()
                    if attempts >= policy.max_attempts:
                        stats.quarantined += 1
                        on_result(index, QuarantinedItem(
                            index=index, reason="worker-exception",
                            attempts=attempts, detail=detail))
                        break
                    stats.record_retry(index, "worker-exception", attempts)
                else:
                    on_result(index, outcome)
                    break


# ---------------------------------------------------------------------------
# Spawn multiprocessing
# ---------------------------------------------------------------------------


def _spawn_worker_main(slot, incarnation, job_queue, task_queue, result_queue,
                       fault_wire):
    """Worker loop: one job at a time, pull indices until the job sentinel.

    Runs in a ``spawn`` child: module-level so it can be located by import,
    and parameterised only by queues and wire dicts.  The runtime cache
    persists across jobs, so repeated ``evaluate_all`` calls on the same
    scenario skip the scenario/backtester/trunk rebuild.  Every message is
    tagged ``(slot, incarnation)`` so the supervisor can attribute it (and
    discard messages from stale incarnations).
    """
    # A terminal Ctrl-C delivers SIGINT to the whole foreground process
    # group; children that die to it strand the parent transport mid-job
    # (it respawns them against a dead queue until the budget runs out).
    # The parent owns pool shutdown (``close()`` / its own drain), so the
    # children ignore the interactive interrupt.
    import signal as _signal
    try:
        _signal.signal(_signal.SIGINT, _signal.SIG_IGN)
    except (ValueError, OSError):
        pass
    cache = RuntimeCache()
    injector = (FaultInjector(FaultPlan.from_wire(fault_wire),
                              worker_id=slot, incarnation=incarnation)
                if fault_wire else None)
    while True:
        job_wire = job_queue.get()
        if job_wire is None:
            break
        runtime = None
        try:
            runtime = JobRuntime(job_wire, cache=cache)
        except BaseException:            # noqa: BLE001 — report, then drain
            result_queue.put((slot, incarnation, "job_error",
                              traceback.format_exc()))
        while True:
            index = task_queue.get()
            if index is None:
                result_queue.put((slot, incarnation, "job_done", None))
                break
            if runtime is None:
                result_queue.put((slot, incarnation, "item_error",
                                  (index, "job setup failed on this worker")))
                continue
            try:
                if injector is not None:
                    injector.before_item(index)
                outcome = runtime.evaluate(index)
            except BaseException:        # noqa: BLE001
                result_queue.put((slot, incarnation, "item_error",
                                  (index, traceback.format_exc())))
                continue
            action = (injector.result_action(index)
                      if injector is not None else None)
            if action is not None:
                if action.kind == "delay_result":
                    _time.sleep(action.seconds)
                elif action.kind == "drop_result":
                    continue             # silently swallow; deadline recovers
                elif action.kind in ("corrupt_frame", "truncate_frame"):
                    os._exit(1)          # queues have no frames; die instead
            result_queue.put((slot, incarnation, "result", (index, outcome)))


class _SpawnWorkerHandle:
    """Parent-side bookkeeping for one spawn worker process."""

    __slots__ = ("process", "job_queue", "task_queue", "slot", "incarnation",
                 "item", "started", "defunct", "kill_reason")

    def __init__(self, process, job_queue, task_queue, slot, incarnation):
        self.process = process
        self.job_queue = job_queue
        self.task_queue = task_queue
        self.slot = slot
        self.incarnation = incarnation
        #: ``(index, attempts)`` currently evaluating, or ``None``.
        self.item: Optional[Tuple[int, int]] = None
        self.started = 0.0
        #: Out of rotation for the current job (died, or its job setup
        #: failed); reset at the next ``run_job``.
        self.defunct = False
        #: Why the supervisor terminated it (``"deadline"``), if it did.
        self.kill_reason: Optional[str] = None


class SpawnTransport(BaseTransport):
    """A persistent pool of ``spawn``-start worker processes.

    The parent is the supervisor: it dispatches one index at a time to
    each worker's private task queue (so it always knows what is in
    flight where), detects dead workers by process liveness on every
    supervision tick (~200 ms, not the stall timeout), respawns them with
    capped exponential backoff within the policy's restart budget, and
    retries or quarantines their in-flight items.
    """

    name = "spawn"

    def __init__(self, workers: int = 2, result_timeout: float = 600.0,
                 fault_policy=None, fault_plan=None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        super().__init__(fault_policy=fault_policy, fault_plan=fault_plan)
        self.workers = workers
        self.result_timeout = result_timeout
        self._context = None
        self._result_queue = None
        self._handles: List[_SpawnWorkerHandle] = []

    def _ensure_started(self) -> None:
        if self._handles:
            return
        import multiprocessing
        self._context = multiprocessing.get_context("spawn")
        self._result_queue = self._context.Queue()
        self._handles = [self._start_worker(slot, 0)
                         for slot in range(self.workers)]

    def _start_worker(self, slot: int, incarnation: int) -> _SpawnWorkerHandle:
        job_queue = self._context.Queue()
        task_queue = self._context.Queue()
        plan_wire = (self.fault_plan.to_wire()
                     if self.fault_plan is not None else None)
        process = self._context.Process(
            target=_spawn_worker_main,
            args=(slot, incarnation, job_queue, task_queue,
                  self._result_queue, plan_wire),
            daemon=True)
        process.start()
        return _SpawnWorkerHandle(process, job_queue, task_queue, slot,
                                  incarnation)

    def _drain_stale_messages(self) -> None:
        """Empty the shared result queue of leftovers from terminated
        workers of a previous job (their producers are gone, so whatever
        is in the queue now is all there will ever be)."""
        while True:
            try:
                self._result_queue.get_nowait()
            except _queue.Empty:
                return

    def run_job(self, job_wire: Dict, on_result: ResultCallback) -> None:
        self._ensure_started()
        self._drain_stale_messages()
        stats = self._begin_fault_stats()
        policy = self.fault_policy
        deadline = job_wire.get("deadline")
        count = len(job_wire["candidates"])
        pending: deque = deque((i, 0) for i in range(count))
        delivered: Set[int] = set()
        restarts_used = 0
        for handle in self._handles:
            handle.item = None
            handle.defunct = False
            handle.kill_reason = None
            if handle.process.is_alive():
                handle.job_queue.put(job_wire)
        last_progress = _time.monotonic()

        def finish(index: int, payload) -> None:
            delivered.add(index)
            on_result(index, payload)

        def fail_item(index: int, attempts: int, reason: str,
                      detail: str) -> None:
            attempts += 1
            if index in delivered:
                return
            if attempts >= policy.max_attempts:
                stats.quarantined += 1
                finish(index, QuarantinedItem(index=index, reason=reason,
                                              attempts=attempts,
                                              detail=detail))
            else:
                stats.record_retry(index, reason, attempts)
                pending.append((index, attempts))

        failure = None
        while len(delivered) < count:
            now = _time.monotonic()
            # 1. Reap dead workers: retry their in-flight item, respawn
            #    within the restart budget (capped exponential backoff).
            for i, handle in enumerate(self._handles):
                if handle.defunct or handle.process.is_alive():
                    continue
                handle.defunct = True
                if handle.item is not None:
                    index, attempts = handle.item
                    handle.item = None
                    fail_item(index, attempts,
                              handle.kill_reason or "worker-crash",
                              "worker process died")
                    last_progress = now
                if restarts_used < policy.restart_budget:
                    _time.sleep(policy.backoff(restarts_used))
                    restarts_used += 1
                    stats.worker_restarts += 1
                    replacement = self._start_worker(
                        handle.slot, handle.incarnation + 1)
                    replacement.job_queue.put(job_wire)
                    self._handles[i] = replacement
                    last_progress = _time.monotonic()
            # 2. Enforce the per-item soft deadline: a wedged worker is
            #    killed (and reaped above on the next tick).
            if deadline:
                for handle in self._handles:
                    if (not handle.defunct and handle.item is not None
                            and handle.kill_reason is None
                            and now - handle.started > deadline):
                        handle.kill_reason = "deadline"
                        handle.process.terminate()
            # 3. Dispatch pending items to idle live workers.
            live = [h for h in self._handles
                    if not h.defunct and h.process.is_alive()]
            for handle in live:
                if not pending:
                    break
                if handle.item is None:
                    handle.item = pending.popleft()
                    handle.started = now
                    handle.task_queue.put(handle.item[0])
            # 4. Graceful degradation: fleet below the floor with no
            #    budget left — drain the queue serially in-process.
            in_flight = any(h.item is not None for h in live)
            if (pending and not in_flight
                    and restarts_used >= policy.restart_budget
                    and len(live) < max(1, policy.min_workers)):
                items = list(pending)
                pending.clear()
                self._drain_serially(job_wire, items, on_result, stats)
                delivered.update(index for index, _ in items)
                last_progress = _time.monotonic()
                continue
            # 5. Collect one message (the tick doubles as the liveness /
            #    deadline poll interval).
            try:
                slot, incarnation, kind, payload = self._result_queue.get(
                    timeout=_TICK_SECONDS)
            except _queue.Empty:
                if _time.monotonic() - last_progress > self.result_timeout:
                    failure = (f"spawn workers produced no result for "
                               f"{self.result_timeout}s "
                               f"({count - len(delivered)} items outstanding)")
                    break
                continue
            handle = next((h for h in self._handles
                           if h.slot == slot and h.incarnation == incarnation),
                          None)
            if kind == "result":
                index, outcome = payload
                last_progress = _time.monotonic()
                if handle is not None and handle.item is not None \
                        and handle.item[0] == index:
                    handle.item = None
                if index in delivered:
                    continue             # duplicate from a raced retry
                # The item may have been requeued (e.g. its worker was
                # deadline-killed right as it finished); drop the copy.
                for entry in list(pending):
                    if entry[0] == index:
                        pending.remove(entry)
                finish(index, outcome)
            elif kind == "item_error":
                index, detail = payload
                last_progress = _time.monotonic()
                if handle is None or handle.defunct or handle.item is None \
                        or handle.item[0] != index:
                    continue             # stale incarnation; already requeued
                attempts = handle.item[1]
                handle.item = None
                fail_item(index, attempts, "worker-exception", detail)
            elif kind == "job_error":
                # This worker cannot build the job runtime; take it out of
                # rotation (its queued item errors arrive as item_error and
                # are retried elsewhere).  If every worker fails, the
                # degradation drain surfaces the real error.
                if handle is not None and not handle.defunct:
                    handle.defunct = True
                    if handle.item is not None:
                        pending.appendleft(handle.item)  # never started
                        handle.item = None
                    last_progress = _time.monotonic()
            # job_done acks are consumed silently (end-of-job protocol).
        if failure is not None:
            self.close(terminate=True)
            raise TransportError(failure)
        self._finish_job()

    def _finish_job(self) -> None:
        """Pop live workers back to the job loop and eat their acks, so
        the shared result queue is clean for the next job."""
        waiting = []
        for handle in self._handles:
            if not handle.defunct and handle.process.is_alive():
                handle.task_queue.put(None)
                waiting.append((handle.slot, handle.incarnation))
        deadline = _time.monotonic() + 10.0
        while waiting:
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                break
            try:
                slot, incarnation, kind, _payload = self._result_queue.get(
                    timeout=remaining)
            except _queue.Empty:
                break
            if kind == "job_done" and (slot, incarnation) in waiting:
                waiting.remove((slot, incarnation))
        for key in waiting:
            # A worker that never acked is wedged; drop it so it cannot
            # pollute the next job's result stream.
            for i, handle in enumerate(self._handles):
                if (handle.slot, handle.incarnation) == key:
                    handle.process.terminate()
                    handle.defunct = True

    def close(self, terminate: bool = False) -> None:
        for handle in self._handles:
            try:
                handle.job_queue.put(None)
            except (ValueError, OSError):
                pass
        for handle in self._handles:
            process = handle.process
            if terminate:
                process.terminate()
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        self._handles = []
        self._context = None
        self._result_queue = None


# ---------------------------------------------------------------------------
# TCP sockets
# ---------------------------------------------------------------------------


class _WorkerConnection(threading.Thread):
    """Server-side handler: speaks the frame protocol with one worker."""

    def __init__(self, transport: "SocketTransport", sock: socket.socket):
        super().__init__(daemon=True)
        self.transport = transport
        self.sock = sock
        #: Worker ordinal for fault-plan targeting, assigned at hello.
        self.worker_id: Optional[int] = None
        #: PID reported in the hello frame (used to terminate wedged
        #: local workers on deadline breaches).
        self.pid: Optional[int] = None
        #: Why the transport is severing this connection (``"deadline"``,
        #: ``"frame-error"``); ``None`` means an ordinary disconnect.
        self.fault_reason: Optional[str] = None
        #: Job id whose setup failed on this worker — it is not offered
        #: that job again.
        self.failed_job_id: Optional[int] = None

    def run(self):
        transport = self.transport
        try:
            hello = recv_frame(self.sock)
            if not hello or hello.get("type") != "hello":
                return
            self.pid = hello.get("pid")
            transport._register_worker(self)
            while True:
                job = transport._await_job(self)
                if job is None:
                    self._send_quietly({"type": "shutdown"})
                    return
                job_id, job_frame = job
                send_frame(self.sock, job_frame)
                self._serve_items(job_id)
        except (OSError, EOFError, FrameError, pickle.PickleError):
            pass
        finally:
            transport._connection_lost(self)
            try:
                self.sock.close()
            except OSError:
                pass

    def _serve_items(self, job_id: int) -> None:
        transport = self.transport
        while True:
            try:
                message = recv_frame(self.sock)
            except FrameError as exc:
                # Truncated/corrupt frame: account it, then treat the
                # connection as disconnected (the in-flight item is
                # requeued by _connection_lost).
                transport._frame_error(job_id, self, exc)
                raise
            except OSError:
                message = None            # reset mid-frame == closed
            if message is None:
                raise EOFError
            kind = message.get("type")
            if kind == "result":
                transport._deliver(job_id, self, message["index"],
                                   message["outcome"])
            elif kind == "error":
                transport._item_failed(job_id, self, message.get("index"),
                                       message.get("message", ""))
            elif kind == "job_error":
                transport._job_setup_failed(job_id, self,
                                            message.get("message", ""))
                send_frame(self.sock, {"type": "job_done"})
                return
            elif kind != "next":
                continue
            index = transport._next_index(job_id, self)
            if index is None:
                send_frame(self.sock, {"type": "job_done"})
                return
            # The candidate wire rides with the item: the job frame
            # carried only a candidate-free header, so each worker
            # receives just the candidates it evaluates.
            candidate = transport._candidate_wire(job_id, index)
            if candidate is None:
                # Job torn down between the index pop and the fetch;
                # nothing left to serve.
                transport._requeue_unstarted(job_id, self)
                send_frame(self.sock, {"type": "job_done"})
                return
            try:
                send_frame(self.sock, {"type": "item", "index": index,
                                       "candidate": candidate})
            except OSError:
                # The worker died between its last frame and our send;
                # the popped item never started — put it back untouched.
                self.transport._requeue_unstarted(job_id, self)
                raise

    def _send_quietly(self, message: Dict) -> None:
        try:
            send_frame(self.sock, message)
        except OSError:
            pass


class SocketTransport(BaseTransport):
    """Serve jobs to ``repro-worker`` processes over TCP.

    ``workers`` local worker subprocesses are spawned automatically unless
    ``spawn_workers=False`` — set that when pointing real remote workers at
    ``host:port`` (use ``port=<fixed>`` and ``host=0.0.0.0`` to listen
    beyond loopback).

    Fault tolerance: worker disconnects (EOF, reset, truncated or corrupt
    frames) requeue the in-flight item with an attempt count; dead local
    workers are respawned within the restart budget; items past the job's
    soft deadline get their connection severed (and local process killed);
    items out of attempts are quarantined; and a fleet below the policy
    floor degrades to an in-process serial drain of the remaining queue.
    """

    name = "socket"

    def __init__(self, workers: int = 2, host: str = "127.0.0.1",
                 port: int = 0, spawn_workers: bool = True,
                 result_timeout: float = 600.0,
                 fault_policy=None, fault_plan=None):
        if spawn_workers and workers < 1:
            raise ValueError("workers must be >= 1 when spawning locally")
        super().__init__(fault_policy=fault_policy, fault_plan=fault_plan)
        self.workers = workers
        self.host = host
        self.port = port
        self.spawn_workers = spawn_workers
        self.result_timeout = result_timeout
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._worker_processes: List[subprocess.Popen] = []
        self._connections: List[_WorkerConnection] = []
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._shutdown = False
        self._next_worker_id = 0
        self._connected_pids: Set[int] = set()
        # Per-job state, guarded by _lock.
        self._job_id = 0
        self._job_wire: Optional[Dict] = None
        #: Candidate-free job header sent to every connection; the candidate
        #: wires themselves ride with the dispatched items, so a worker only
        #: receives the candidates it evaluates.
        self._job_header: Optional[Dict] = None
        self._job_candidates: List[Dict] = []
        self._pending: deque = deque()          # (index, attempts)
        self._outstanding = 0
        self._delivered: Set[int] = set()
        self._in_flight: Dict[_WorkerConnection, Tuple[int, int, float]] = {}
        self._quarantine_ready: List[QuarantinedItem] = []
        self._on_result: Optional[ResultCallback] = None
        self._failure: Optional[str] = None
        self._restarts_used = 0
        self._respawn_at: List[float] = []      # due-times of queued respawns
        self._job_had_connection = False
        self._last_progress = 0.0
        self._job_finished = threading.Condition(self._lock)

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self):
        """(host, port) the transport listens on (starts it if needed)."""
        self._ensure_started()
        return self._listener.getsockname()[:2]

    def _ensure_started(self) -> None:
        if self._listener is not None:
            return
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(16)
        self._listener = listener
        self._accept_thread = threading.Thread(target=self._accept_loop,
                                               daemon=True)
        self._accept_thread.start()
        if self.spawn_workers:
            for _ in range(self.workers):
                self._spawn_one_worker()

    def _spawn_one_worker(self) -> None:
        host, port = self._listener.getsockname()[:2]
        if host == "0.0.0.0":
            host = "127.0.0.1"
        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (src_dir if not existing
                             else src_dir + os.pathsep + existing)
        self._worker_processes.append(subprocess.Popen(
            [sys.executable, "-m", "repro.distrib.worker",
             "--connect", f"{host}:{port}"],
            env=env))

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection = _WorkerConnection(self, sock)
            with self._lock:
                if self._shutdown:
                    sock.close()
                    return
                self._connections.append(connection)
            connection.start()

    def close(self) -> None:
        with self._lock:
            self._shutdown = True
            connections = list(self._connections)
            self._wakeup.notify_all()
            self._job_finished.notify_all()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for process in self._worker_processes:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.terminate()
                try:
                    process.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    process.kill()
        for connection in connections:
            connection.join(timeout=10)
        # Reset to a restartable state: a later run_job rebuilds the
        # listener and spawns fresh workers, like SpawnTransport does.
        with self._lock:
            self._shutdown = False
            self._connections = []
            self._connected_pids = set()
            self._next_worker_id = 0
        self._worker_processes = []
        self._listener = None
        self._accept_thread = None

    # -- job execution ------------------------------------------------------

    def run_job(self, job_wire: Dict, on_result: ResultCallback) -> None:
        self._ensure_started()
        stats = self._begin_fault_stats()
        deadline = job_wire.get("deadline")
        count = len(job_wire["candidates"])
        with self._lock:
            if self._job_wire is not None:
                raise TransportError("transport already has a job in flight")
            self._job_id += 1
            job_id = self._job_id
            self._job_wire = job_wire
            self._job_header = strip_candidates(job_wire)
            self._job_candidates = list(job_wire["candidates"])
            self._pending = deque((i, 0) for i in range(count))
            self._outstanding = count
            self._delivered = set()
            self._in_flight = {}
            self._quarantine_ready = []
            self._on_result = on_result
            self._failure = None
            self._restarts_used = 0
            self._respawn_at = []
            self._job_had_connection = bool(self._connections)
            self._last_progress = _time.monotonic()
            self._wakeup.notify_all()
        failure = None
        try:
            while True:
                with self._lock:
                    fire = self._quarantine_ready
                    self._quarantine_ready = []
                if fire:
                    for item in fire:
                        on_result(item.index, item)
                    with self._lock:
                        self._outstanding -= len(fire)
                        self._last_progress = _time.monotonic()
                        self._job_finished.notify_all()
                    continue
                drain_items = None
                with self._lock:
                    if self._outstanding <= 0:
                        break
                    if self._failure is not None:
                        failure = self._failure
                        break
                    if self._shutdown:
                        failure = "transport closed"
                        break
                    now = _time.monotonic()
                    self._supervise_locked(now, deadline)
                    drain_items = self._claim_degraded_items_locked()
                    if drain_items is None:
                        if now - self._last_progress > self.result_timeout:
                            failure = (f"no worker progress for "
                                       f"{self.result_timeout}s "
                                       f"({self._outstanding} outstanding)")
                            break
                        if not self._quarantine_ready:
                            self._job_finished.wait(timeout=_TICK_SECONDS)
                        continue
                # Degraded: the fleet is gone (or below the floor) with no
                # restart budget left — drain in-process, outside the lock.
                self._drain_serially(job_wire, drain_items, on_result, stats)
                with self._lock:
                    self._delivered.update(i for i, _ in drain_items)
                    self._outstanding -= len(drain_items)
                    self._last_progress = _time.monotonic()
        finally:
            with self._lock:
                self._job_wire = None
                self._job_header = None
                self._job_candidates = []
                self._on_result = None
                self._pending = deque()
                self._in_flight = {}
                self._quarantine_ready = []
        if failure is not None:
            raise TransportError(failure)

    # -- supervision (run_job thread, lock held) ----------------------------

    def _supervise_locked(self, now: float, deadline) -> None:
        policy = self.fault_policy
        # Per-item soft deadlines: sever the wedged worker's connection
        # (its recv unblocks with an error → the item is requeued with
        # reason "deadline") and kill the local process if it is ours.
        if deadline:
            for conn, (_index, _attempts, started) in \
                    list(self._in_flight.items()):
                if now - started > deadline and conn.fault_reason is None:
                    conn.fault_reason = "deadline"
                    try:
                        conn.sock.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
                    try:
                        conn.sock.close()
                    except OSError:
                        pass
                    for process in self._worker_processes:
                        if process.pid == conn.pid and process.poll() is None:
                            process.terminate()
        if not self.spawn_workers:
            return
        # Reap dead local workers and queue respawns with capped
        # exponential backoff (no sleeping under the lock).
        for process in list(self._worker_processes):
            if process.poll() is None:
                continue
            self._worker_processes.remove(process)
            if self._restarts_used < policy.restart_budget:
                delay = policy.backoff(self._restarts_used)
                self._restarts_used += 1
                self._respawn_at.append(now + delay)
        due = [t for t in self._respawn_at if t <= now]
        for t in due:
            self._respawn_at.remove(t)
            self._spawn_one_worker()
            self.last_fault_stats.worker_restarts += 1
            self._last_progress = now

    def _claim_degraded_items_locked(self) -> Optional[List[Tuple[int, int]]]:
        """Claim the pending queue for a serial drain, or ``None``.

        Degradation triggers only when nothing can recover the job: no
        connection can serve it (all gone, or every survivor failed its
        setup), no local worker is still booting, no respawn is queued —
        or the fleet is below ``min_workers`` with the restart budget
        spent.  Items in flight on live workers keep streaming normally.
        """
        if not self._pending or self._in_flight:
            return None
        if not self.spawn_workers and not self._job_had_connection:
            return None                  # remote workers may still connect
        policy = self.fault_policy
        eligible = [c for c in self._connections
                    if c.failed_job_id != self._job_id]
        booting = [p for p in self._worker_processes
                   if p.poll() is None and p.pid not in self._connected_pids]
        if self._respawn_at:
            return None
        fleet = len(eligible) + len(booting)
        budget_left = (self.spawn_workers
                       and self._restarts_used < policy.restart_budget)
        if fleet == 0 and not budget_left:
            pass                         # nothing can serve: degrade
        elif fleet < policy.min_workers and not budget_left and not eligible:
            pass                         # below the floor with no way back
        else:
            return None
        items = list(self._pending)
        self._pending.clear()
        return items

    # -- callbacks from connection handlers (thread-safe) -------------------

    def _register_worker(self, connection) -> None:
        with self._lock:
            connection.worker_id = self._next_worker_id
            self._next_worker_id += 1
            if connection.pid is not None:
                self._connected_pids.add(connection.pid)

    def _await_job(self, connection) -> Optional[tuple]:
        """Block until work is available (or shutdown).

        A connection is handed the current job whenever candidate indices
        are pending — unless its own setup for this job already failed.
        ``job_done`` is only sent once the pending queue is empty, so a
        worker never re-enters a job it just finished — except after a
        peer disconnects mid-candidate and its item is re-queued, in which
        case re-serving the job (trunk rebuild included) is the recovery
        path.
        """
        with self._lock:
            while not self._shutdown:
                if (self._job_wire is not None and self._pending
                        and connection.failed_job_id != self._job_id):
                    self._job_had_connection = True
                    frame = {"type": "job", "job": self._job_header,
                             "worker_id": connection.worker_id or 0}
                    if self.fault_plan is not None:
                        frame["fault"] = self.fault_plan.to_wire()
                    return self._job_id, frame
                self._wakeup.wait(timeout=1.0)
            return None

    def _next_index(self, job_id: int, connection) -> Optional[int]:
        with self._lock:
            if job_id != self._job_id or not self._pending:
                return None
            index, attempts = self._pending.popleft()
            self._in_flight[connection] = (index, attempts, _time.monotonic())
            return index

    def _candidate_wire(self, job_id: int, index: int) -> Optional[Dict]:
        with self._lock:
            # The job can be torn down between a connection's index pop
            # and this fetch; ``None`` tells the caller the job is gone.
            if (job_id != self._job_id or self._job_wire is None
                    or index >= len(self._job_candidates)):
                return None
            return self._job_candidates[index]

    def _requeue_unstarted(self, job_id: int, connection) -> None:
        """Give back an item the worker never began (dispatch failed):
        no attempt is charged."""
        with self._lock:
            entry = self._in_flight.pop(connection, None)
            if entry is None or job_id != self._job_id \
                    or self._job_wire is None:
                return
            index, attempts, _started = entry
            self._pending.appendleft((index, attempts))
            self._wakeup.notify_all()

    def _retry_or_quarantine_locked(self, index: int, attempts: int,
                                    reason: str, detail: str) -> None:
        attempts += 1
        if index in self._delivered:
            return
        if attempts >= self.fault_policy.max_attempts:
            self._delivered.add(index)
            self.last_fault_stats.quarantined += 1
            self._quarantine_ready.append(QuarantinedItem(
                index=index, reason=reason, attempts=attempts, detail=detail))
            self._job_finished.notify_all()
        else:
            self.last_fault_stats.record_retry(index, reason, attempts)
            self._pending.append((index, attempts))
            self._wakeup.notify_all()

    def _deliver(self, job_id: int, connection, index: int, outcome) -> None:
        with self._lock:
            if job_id != self._job_id or self._on_result is None:
                return
            self._in_flight.pop(connection, None)
            if index in self._delivered:
                self._wakeup.notify_all()
                return                   # duplicate from a raced retry
            self._delivered.add(index)
            callback = self._on_result
            self._last_progress = _time.monotonic()
        # Run the callback outside the lock: a slow (or transport-touching)
        # progress callback must not serialize worker dispatch or deadlock.
        callback(index, outcome)
        with self._lock:
            if job_id != self._job_id:
                return
            self._outstanding -= 1
            # Notify on *every* delivery so run_job's stall timeout re-arms
            # per result instead of bounding total job duration.
            self._job_finished.notify_all()

    def _item_failed(self, job_id: int, connection, index: Optional[int],
                     message: str) -> None:
        """A worker reported an exception evaluating an item: requeue it
        with an attempt charged, or quarantine it out of the job."""
        with self._lock:
            if job_id != self._job_id:
                return
            entry = self._in_flight.pop(connection, None)
            attempts = entry[1] if entry is not None else 0
            if index is None and entry is not None:
                index = entry[0]
            if index is None:
                return
            self._retry_or_quarantine_locked(index, attempts,
                                             "worker-exception", message)
            self._last_progress = _time.monotonic()
            self._job_finished.notify_all()

    def _job_setup_failed(self, job_id: int, connection,
                          message: str) -> None:
        """This worker cannot build the job runtime; stop offering it the
        job.  If no worker can, the degradation drain surfaces the error."""
        with self._lock:
            if job_id != self._job_id:
                return
            connection.failed_job_id = job_id
            entry = self._in_flight.pop(connection, None)
            if entry is not None:
                index, attempts, _started = entry
                self._pending.appendleft((index, attempts))
                self._wakeup.notify_all()
            self._job_finished.notify_all()

    def _frame_error(self, job_id: int, connection, exc: Exception) -> None:
        with self._lock:
            if job_id == self._job_id:
                self.last_fault_stats.frame_errors += 1
            if connection.fault_reason is None:
                connection.fault_reason = "frame-error"

    def _connection_lost(self, connection) -> None:
        with self._lock:
            if connection in self._connections:
                self._connections.remove(connection)
            if self._job_wire is None:
                return
            entry = self._in_flight.pop(connection, None)
            if entry is not None:
                index, attempts, _started = entry
                self._retry_or_quarantine_locked(
                    index, attempts, connection.fault_reason or "disconnect",
                    "worker connection lost")
            # Wake the supervisor: it decides between respawn, waiting for
            # the survivors, and the degradation drain.
            self._job_finished.notify_all()


# ---------------------------------------------------------------------------
# Factory
# ---------------------------------------------------------------------------

TRANSPORTS = {
    "inprocess": InProcessTransport,
    "serial": InProcessTransport,
    "spawn": SpawnTransport,
    "socket": SocketTransport,
    "tcp": SocketTransport,
}


def make_transport(name: str, **options) -> BaseTransport:
    """Build a transport by name: inprocess | spawn | socket."""
    try:
        cls = TRANSPORTS[name.lower()]
    except KeyError as exc:
        raise DistribError(f"unknown transport {name!r}; expected one of "
                           f"{sorted(set(TRANSPORTS))}") from exc
    if cls is InProcessTransport:
        options.pop("workers", None)     # meaningless in-process
        options.pop("result_timeout", None)
    return cls(**options)
