"""Pluggable transports for the distributed backtest fabric.

A transport owns a set of workers and moves one :mod:`~repro.distrib.jobs`
job at a time through them under *pull* scheduling: workers ask for the
next candidate index when they become free, so slow candidates (deep repair
programs, abort-policy survivors) never stall a statically assigned shard.
Three implementations:

``InProcessTransport``
    Evaluates in the calling process through the same
    :class:`~repro.distrib.jobs.JobRuntime` the remote workers use —
    the reference implementation and the zero-dependency fallback.

``SpawnTransport``
    A pool of ``spawn``-start multiprocessing workers.  Unlike the fork
    pool in :mod:`repro.backtest.replay`, nothing is inherited: the job
    wire is the only input, which is what makes this path work on
    macOS/Windows (no ``fork``) and keeps it semantically identical to a
    remote worker.

``SocketTransport``
    A length-prefixed TCP protocol (4-byte big-endian frame length +
    pickled dict) served to ``repro-worker`` processes
    (``python -m repro.distrib.worker --connect HOST:PORT``), which may run
    on other machines and drain one shared candidate queue.  By default it
    also spawns ``workers`` local worker processes so a single-machine run
    needs no manual setup.  Workers that disconnect mid-candidate have
    their item re-queued for the surviving workers.

Transports are reusable across jobs (workers persist between ``run_job``
calls) and are context managers; ``close()`` shuts the workers down.

Security note: frames are pickled, so the socket transport must only be
used between mutually trusted machines (same codebase, same operator) —
the standard assumption for a compute cluster draining one queue.
"""

from __future__ import annotations

import os
import pickle
import queue as _queue
import socket
import struct
import subprocess
import sys
import threading
import traceback
from collections import deque
from typing import Callable, Dict, List, Optional

from .jobs import DistribError, JobRuntime, RuntimeCache, strip_candidates

#: Callback invoked by ``run_job`` as results stream in (completion order).
ResultCallback = Callable[[int, object], None]


class TransportError(DistribError):
    """A worker or connection failed in a way the transport cannot hide."""


# ---------------------------------------------------------------------------
# Frame protocol (shared by the socket transport and repro-worker)
# ---------------------------------------------------------------------------

_LENGTH = struct.Struct(">I")


def send_frame(sock: socket.socket, message: Dict) -> None:
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> Optional[Dict]:
    """Read one frame; ``None`` on a cleanly closed connection."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    payload = _recv_exact(sock, length)
    if payload is None:
        return None
    return pickle.loads(payload)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks = []
    while count:
        chunk = sock.recv(count)
        if not chunk:
            return None
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


class BaseTransport:
    """Interface: run jobs through a (possibly remote) worker set."""

    name = "?"

    def run_job(self, job_wire: Dict, on_result: ResultCallback) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


# ---------------------------------------------------------------------------
# In-process
# ---------------------------------------------------------------------------


class InProcessTransport(BaseTransport):
    """Evaluate in the calling process via the worker-side runtime.

    This still exercises the whole wire path (spec rebuild, candidate
    decode), so it doubles as the cheapest integration test of a job.
    Repeated jobs on one transport instance share the runtime cache, like
    a persistent remote worker would.
    """

    name = "inprocess"

    def __init__(self):
        self.runtime_cache = RuntimeCache()

    def run_job(self, job_wire: Dict, on_result: ResultCallback) -> None:
        runtime = JobRuntime(job_wire, cache=self.runtime_cache)
        for index in range(len(runtime)):
            on_result(index, runtime.evaluate(index))


# ---------------------------------------------------------------------------
# Spawn multiprocessing
# ---------------------------------------------------------------------------


def _spawn_worker_main(job_queue, task_queue, result_queue):
    """Worker loop: one job at a time, pull indices until the job sentinel.

    Runs in a ``spawn`` child: module-level so it can be located by import,
    and parameterised only by queues and wire dicts.  The runtime cache
    persists across jobs, so repeated ``evaluate_all`` calls on the same
    scenario skip the scenario/backtester/trunk rebuild.
    """
    cache = RuntimeCache()
    while True:
        job_wire = job_queue.get()
        if job_wire is None:
            break
        runtime = None
        error = None
        try:
            runtime = JobRuntime(job_wire, cache=cache)
        except BaseException:            # noqa: BLE001 — report, then drain
            error = traceback.format_exc()
            result_queue.put(("job_error", error))
        while True:
            index = task_queue.get()
            if index is None:
                result_queue.put(("worker_done", None))
                break
            if runtime is None:
                continue                 # job never started; drain the queue
            try:
                outcome = runtime.evaluate(index)
            except BaseException:        # noqa: BLE001
                result_queue.put(("item_error",
                                  (index, traceback.format_exc())))
            else:
                result_queue.put(("result", (index, outcome)))


class SpawnTransport(BaseTransport):
    """A persistent pool of ``spawn``-start worker processes."""

    name = "spawn"

    def __init__(self, workers: int = 2, result_timeout: float = 600.0):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.result_timeout = result_timeout
        self._processes: List = []
        self._job_queues: List = []
        self._task_queue = None
        self._result_queue = None

    def _ensure_started(self) -> None:
        if self._processes:
            return
        import multiprocessing
        context = multiprocessing.get_context("spawn")
        self._task_queue = context.Queue()
        self._result_queue = context.Queue()
        for _ in range(self.workers):
            job_queue = context.Queue()
            process = context.Process(
                target=_spawn_worker_main,
                args=(job_queue, self._task_queue, self._result_queue),
                daemon=True)
            process.start()
            self._job_queues.append(job_queue)
            self._processes.append(process)

    def run_job(self, job_wire: Dict, on_result: ResultCallback) -> None:
        self._ensure_started()
        for job_queue in self._job_queues:
            job_queue.put(job_wire)
        count = len(job_wire["candidates"])
        for index in range(count):
            self._task_queue.put(index)
        for _ in range(self.workers):
            self._task_queue.put(None)
        remaining = count
        workers_done = 0
        failure = None
        while remaining > 0 or workers_done < self.workers:
            if workers_done >= self.workers and remaining > 0:
                # Every worker signed off yet items are missing — a failing
                # worker drained them (its job never started).
                if failure is None:
                    failure = f"{remaining} items were never evaluated"
                break
            try:
                kind, payload = self._result_queue.get(
                    timeout=self.result_timeout)
            except _queue.Empty:
                self.close(terminate=True)
                raise TransportError(
                    f"spawn workers produced no result for "
                    f"{self.result_timeout}s ({remaining} items outstanding)")
            if kind == "result":
                remaining -= 1
                index, outcome = payload
                on_result(index, outcome)
            elif kind == "item_error":
                remaining -= 1
                if failure is None:
                    failure = f"candidate {payload[0]} failed:\n{payload[1]}"
            elif kind == "job_error":
                # The failing worker keeps draining the queue so its peers
                # and the sentinel protocol stay coherent; items it swallows
                # surface through ``failure`` when the workers sign off.
                if failure is None:
                    failure = f"job setup failed:\n{payload}"
            elif kind == "worker_done":
                workers_done += 1
        if failure is not None:
            self.close(terminate=True)
            raise TransportError(failure)

    def close(self, terminate: bool = False) -> None:
        for job_queue in self._job_queues:
            try:
                job_queue.put(None)
            except (ValueError, OSError):
                pass
        for process in self._processes:
            if terminate:
                process.terminate()
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        self._processes = []
        self._job_queues = []
        self._task_queue = None
        self._result_queue = None


# ---------------------------------------------------------------------------
# TCP sockets
# ---------------------------------------------------------------------------


class _WorkerConnection(threading.Thread):
    """Server-side handler: speaks the frame protocol with one worker."""

    def __init__(self, transport: "SocketTransport", sock: socket.socket):
        super().__init__(daemon=True)
        self.transport = transport
        self.sock = sock

    def run(self):
        transport = self.transport
        try:
            hello = recv_frame(self.sock)
            if not hello or hello.get("type") != "hello":
                return
            while True:
                job = transport._await_job(self)
                if job is None:
                    self._send_quietly({"type": "shutdown"})
                    return
                job_id, job_wire = job
                send_frame(self.sock, {"type": "job", "job": job_wire})
                self._serve_items(job_id)
        except (OSError, EOFError, pickle.PickleError):
            pass
        finally:
            transport._connection_lost(self)
            try:
                self.sock.close()
            except OSError:
                pass

    def _serve_items(self, job_id: int) -> None:
        current: Optional[int] = None
        while True:
            try:
                message = recv_frame(self.sock)
            except OSError:
                message = None           # reset mid-frame == closed
            if message is None:
                # Connection died; put an in-flight item back on the queue.
                if current is not None:
                    self.transport._requeue(job_id, current)
                raise EOFError
            kind = message.get("type")
            if kind == "result":
                self.transport._deliver(job_id, message["index"],
                                        message["outcome"])
                current = None
            elif kind == "error":
                self.transport._item_failed(job_id, message.get("index"),
                                            message.get("message", ""))
                current = None
            elif kind == "job_error":
                self.transport._item_failed(job_id, None,
                                            message.get("message", ""))
                send_frame(self.sock, {"type": "job_done"})
                return
            elif kind != "next":
                continue
            if kind in ("next", "result", "error"):
                index = self.transport._next_index(job_id)
                if index is None:
                    send_frame(self.sock, {"type": "job_done"})
                    return
                current = index
                # The candidate wire rides with the item: the job frame
                # carried only a candidate-free header, so each worker
                # receives just the candidates it evaluates.
                candidate = self.transport._candidate_wire(job_id, index)
                if candidate is None:
                    # Job torn down between the index pop and the fetch
                    # (a peer's failure ended it); nothing left to serve.
                    send_frame(self.sock, {"type": "job_done"})
                    return
                try:
                    send_frame(self.sock, {"type": "item", "index": index,
                                           "candidate": candidate})
                except OSError:
                    # The worker died between its last frame and our send;
                    # the popped item must go back for the survivors.
                    self.transport._requeue(job_id, index)
                    raise

    def _send_quietly(self, message: Dict) -> None:
        try:
            send_frame(self.sock, message)
        except OSError:
            pass


class SocketTransport(BaseTransport):
    """Serve jobs to ``repro-worker`` processes over TCP.

    ``workers`` local worker subprocesses are spawned automatically unless
    ``spawn_workers=False`` — set that when pointing real remote workers at
    ``host:port`` (use ``port=<fixed>`` and ``host=0.0.0.0`` to listen
    beyond loopback).
    """

    name = "socket"

    def __init__(self, workers: int = 2, host: str = "127.0.0.1",
                 port: int = 0, spawn_workers: bool = True,
                 result_timeout: float = 600.0):
        if spawn_workers and workers < 1:
            raise ValueError("workers must be >= 1 when spawning locally")
        self.workers = workers
        self.host = host
        self.port = port
        self.spawn_workers = spawn_workers
        self.result_timeout = result_timeout
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._worker_processes: List[subprocess.Popen] = []
        self._connections: List[_WorkerConnection] = []
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._shutdown = False
        # Per-job state, guarded by _lock.
        self._job_id = 0
        self._job_wire: Optional[Dict] = None
        #: Candidate-free job header sent to every connection; the candidate
        #: wires themselves ride with the dispatched items, so a worker only
        #: receives the candidates it evaluates.
        self._job_header: Optional[Dict] = None
        self._job_candidates: List[Dict] = []
        self._pending: deque = deque()
        self._outstanding = 0
        self._on_result: Optional[ResultCallback] = None
        self._failure: Optional[str] = None
        self._job_finished = threading.Condition(self._lock)

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self):
        """(host, port) the transport listens on (starts it if needed)."""
        self._ensure_started()
        return self._listener.getsockname()[:2]

    def _ensure_started(self) -> None:
        if self._listener is not None:
            return
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(16)
        self._listener = listener
        self._accept_thread = threading.Thread(target=self._accept_loop,
                                               daemon=True)
        self._accept_thread.start()
        if self.spawn_workers:
            self._spawn_local_workers()

    def _spawn_local_workers(self) -> None:
        host, port = self._listener.getsockname()[:2]
        if host == "0.0.0.0":
            host = "127.0.0.1"
        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (src_dir if not existing
                             else src_dir + os.pathsep + existing)
        for _ in range(self.workers):
            self._worker_processes.append(subprocess.Popen(
                [sys.executable, "-m", "repro.distrib.worker",
                 "--connect", f"{host}:{port}"],
                env=env))

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection = _WorkerConnection(self, sock)
            with self._lock:
                if self._shutdown:
                    sock.close()
                    return
                self._connections.append(connection)
            connection.start()

    def close(self) -> None:
        with self._lock:
            self._shutdown = True
            connections = list(self._connections)
            self._wakeup.notify_all()
            self._job_finished.notify_all()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for process in self._worker_processes:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.terminate()
                try:
                    process.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    process.kill()
        for connection in connections:
            connection.join(timeout=10)
        # Reset to a restartable state: a later run_job rebuilds the
        # listener and spawns fresh workers, like SpawnTransport does.
        with self._lock:
            self._shutdown = False
            self._connections = []
        self._worker_processes = []
        self._listener = None
        self._accept_thread = None

    # -- job execution ------------------------------------------------------

    def run_job(self, job_wire: Dict, on_result: ResultCallback) -> None:
        self._ensure_started()
        count = len(job_wire["candidates"])
        with self._lock:
            if self._job_wire is not None:
                raise TransportError("transport already has a job in flight")
            self._job_id += 1
            self._job_wire = job_wire
            self._job_header = strip_candidates(job_wire)
            self._job_candidates = list(job_wire["candidates"])
            self._pending = deque(range(count))
            self._outstanding = count
            self._on_result = on_result
            self._failure = None
            self._wakeup.notify_all()
            while self._outstanding > 0 and self._failure is None:
                if not self._job_finished.wait(timeout=self.result_timeout):
                    self._failure = (f"no worker progress for "
                                     f"{self.result_timeout}s "
                                     f"({self._outstanding} outstanding)")
                if self._shutdown:
                    self._failure = self._failure or "transport closed"
            failure = self._failure
            self._job_wire = None
            self._job_header = None
            self._job_candidates = []
            self._on_result = None
            self._pending = deque()
        if failure is not None:
            raise TransportError(failure)

    # -- callbacks from connection handlers (thread-safe) -------------------

    def _await_job(self, connection) -> Optional[tuple]:
        """Block until work is available (or shutdown).

        A connection is handed the current job whenever candidate indices
        are pending.  ``job_done`` is only sent once the pending queue is
        empty, so a worker never re-enters a job it just finished — except
        after a peer disconnects mid-candidate and its item is re-queued,
        in which case re-serving the job (trunk rebuild included) is the
        recovery path.
        """
        with self._lock:
            while not self._shutdown:
                if self._job_wire is not None and self._pending:
                    return self._job_id, self._job_header
                self._wakeup.wait(timeout=1.0)
            return None

    def _next_index(self, job_id: int) -> Optional[int]:
        with self._lock:
            if job_id != self._job_id or not self._pending:
                return None
            return self._pending.popleft()

    def _candidate_wire(self, job_id: int, index: int) -> Optional[Dict]:
        with self._lock:
            # The job can be torn down (failure path clears the candidate
            # list before _job_id advances) between a connection's index pop
            # and this fetch; ``None`` tells the caller the job is gone.
            if (job_id != self._job_id or self._job_wire is None
                    or index >= len(self._job_candidates)):
                return None
            return self._job_candidates[index]

    def _requeue(self, job_id: int, index: int) -> None:
        with self._lock:
            if job_id == self._job_id and self._job_wire is not None:
                self._pending.appendleft(index)
                self._wakeup.notify_all()

    def _deliver(self, job_id: int, index: int, outcome) -> None:
        with self._lock:
            if job_id != self._job_id or self._on_result is None:
                return
            callback = self._on_result
        # Run the callback outside the lock: a slow (or transport-touching)
        # progress callback must not serialize worker dispatch or deadlock.
        callback(index, outcome)
        with self._lock:
            if job_id != self._job_id:
                return
            self._outstanding -= 1
            # Notify on *every* delivery so run_job's stall timeout re-arms
            # per result (matching SpawnTransport's per-result semantics)
            # instead of bounding total job duration.
            self._job_finished.notify_all()

    def _item_failed(self, job_id: int, index: Optional[int],
                     message: str) -> None:
        with self._lock:
            if job_id != self._job_id:
                return
            if self._failure is None:
                what = "job setup" if index is None else f"candidate {index}"
                self._failure = f"{what} failed on a worker:\n{message}"
            self._job_finished.notify_all()

    def _connection_lost(self, connection) -> None:
        with self._lock:
            if connection in self._connections:
                self._connections.remove(connection)
            if (self._job_wire is not None and not self._connections
                    and self._failure is None and self._outstanding > 0
                    and all(p.poll() is not None
                            for p in self._worker_processes)):
                self._failure = ("all workers disconnected with "
                                 f"{self._outstanding} items outstanding")
                self._job_finished.notify_all()


# ---------------------------------------------------------------------------
# Factory
# ---------------------------------------------------------------------------

TRANSPORTS = {
    "inprocess": InProcessTransport,
    "serial": InProcessTransport,
    "spawn": SpawnTransport,
    "socket": SocketTransport,
    "tcp": SocketTransport,
}


def make_transport(name: str, **options) -> BaseTransport:
    """Build a transport by name: inprocess | spawn | socket."""
    try:
        cls = TRANSPORTS[name.lower()]
    except KeyError as exc:
        raise DistribError(f"unknown transport {name!r}; expected one of "
                           f"{sorted(set(TRANSPORTS))}") from exc
    if cls is InProcessTransport:
        options.pop("workers", None)     # meaningless in-process
    return cls(**options)
