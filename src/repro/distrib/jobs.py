"""Backtest jobs: what crosses the wire, and how workers execute it.

A *job* describes one ``evaluate_all`` call declaratively so that a process
with no shared memory — a ``spawn`` child or a worker on another machine —
can reconstruct everything it needs:

* the scenario, as a :class:`~repro.scenarios.spec.ScenarioSpec` (name +
  builder parameters + seed; see the registry in :mod:`repro.scenarios`),
* the backtester (registered class name + constructor configuration,
  including the optional early-abort policy),
* the candidate list, in the structural wire format of
  :mod:`repro.repair.candidates`.

Everything in the job wire dict is JSON-able, so any transport that can
move dicts can move jobs.  Results flow the other way as
:class:`~repro.backtest.replay.ShardOutcome` objects with the candidate
stripped (the coordinator re-attaches its own copy, meta provenance tree
included), exactly like the fork pool does.

The :class:`JobRuntime` is the worker half: it rebuilds the scenario and
backtester once per job, computes the shared trunk lazily on the first
evaluation, and then serves per-candidate work items by index.  Because the
runtime calls the same ``_build_trunk`` / ``_evaluate_for_shard`` methods
as the serial and fork paths, its results are bit-identical to both.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from ..backtest.abort import EarlyAbortPolicy
from ..backtest.multiquery import MultiQueryBacktester
from ..backtest.replay import Backtester, ShardOutcome
from ..repair.candidates import (RepairCandidate, candidate_from_wire,
                                 candidate_to_wire)
from ..scenarios.spec import ScenarioSpec


class DistribError(RuntimeError):
    """Raised for fabric-level failures (bad jobs, unusable scenarios)."""


#: Backtester classes a job may name.  Subclasses must register themselves
#: (:func:`register_backtester`) to be evaluable on spawn/remote workers.
BACKTESTER_CLASSES: Dict[str, Type[Backtester]] = {}


def register_backtester(cls: Type[Backtester],
                        name: Optional[str] = None) -> Type[Backtester]:
    """Register a backtester class for wire-format jobs (usable as a
    decorator)."""
    BACKTESTER_CLASSES[name or cls.__name__] = cls
    return cls


register_backtester(Backtester)
register_backtester(MultiQueryBacktester)

#: Constructor keywords that travel with a job.  ``workers`` intentionally
#: stays local: parallelism is the transport's business, and a worker that
#: forked its own pool would double-shard.
_CONFIG_FIELDS = ("ks_threshold", "alpha", "use_significance", "trace_limit",
                  "max_packet_in_growth", "replay_batch_size")


def build_job_wire(backtester: Backtester,
                   candidates: Sequence[RepairCandidate],
                   abort_policy: Optional[EarlyAbortPolicy] = None) -> Dict:
    """Describe one ``evaluate_all`` call as a JSON-able job dict."""
    spec = getattr(backtester.scenario, "spec", None)
    if spec is None:
        raise DistribError(
            "scenario has no ScenarioSpec; build it via "
            "repro.scenarios.build_scenario (or set scenario.spec) so "
            "spawn/remote workers can reconstruct it")
    class_name = type(backtester).__name__
    if BACKTESTER_CLASSES.get(class_name) is not type(backtester):
        raise DistribError(
            f"backtester class {class_name!r} is not registered for "
            f"distributed evaluation; call repro.distrib.register_backtester")
    if abort_policy is None:
        abort_policy = backtester.abort_policy
    return {
        "spec": spec.to_wire(),
        "backtester": class_name,
        "config": {key: getattr(backtester, key) for key in _CONFIG_FIELDS},
        "abort": abort_policy.to_wire() if abort_policy is not None else None,
        "candidates": [candidate_to_wire(c) for c in candidates],
    }


class JobRuntime:
    """Worker-side execution state for one job."""

    def __init__(self, job_wire: Dict):
        try:
            spec = ScenarioSpec.from_wire(job_wire["spec"])
            cls = BACKTESTER_CLASSES[job_wire["backtester"]]
            config = dict(job_wire["config"])
            abort_wire = job_wire.get("abort")
            self.candidates: List[RepairCandidate] = [
                candidate_from_wire(w) for w in job_wire["candidates"]]
        except (KeyError, TypeError) as exc:
            raise DistribError(f"malformed job wire: {exc!r}") from exc
        self.scenario = spec.build()
        abort_policy = (EarlyAbortPolicy.from_wire(abort_wire)
                        if abort_wire is not None else None)
        self.backtester = cls(self.scenario, workers=1,
                              abort_policy=abort_policy, **config)
        self._trunk = None
        self._trunk_built = False

    def __len__(self) -> int:
        return len(self.candidates)

    def evaluate(self, index: int) -> ShardOutcome:
        """Evaluate candidate ``index``; the result ships candidate-free."""
        if not self._trunk_built:
            self._trunk = self.backtester._build_trunk()
            self._trunk_built = True
        outcome = self.backtester._evaluate_for_shard(
            self.candidates[index], self._trunk)
        outcome.result.candidate = None
        return outcome
