"""Backtest jobs: what crosses the wire, and how workers execute it.

A *job* describes one ``evaluate_all`` call declaratively so that a process
with no shared memory — a ``spawn`` child or a worker on another machine —
can reconstruct everything it needs:

* the scenario, as a :class:`~repro.scenarios.spec.ScenarioSpec` (name +
  builder parameters + seed; see the registry in :mod:`repro.scenarios`),
* the backtester (registered class name + constructor configuration,
  including the optional early-abort policy),
* the candidate list, in the structural wire format of
  :mod:`repro.repair.candidates`.

Everything in the job wire dict is JSON-able, so any transport that can
move dicts can move jobs.  Results flow the other way as
:class:`~repro.backtest.replay.ShardOutcome` objects with the candidate
stripped (the coordinator re-attaches its own copy, meta provenance tree
included), exactly like the fork pool does.

The :class:`JobRuntime` is the worker half: it rebuilds the scenario and
backtester once per job, computes the shared trunk lazily on the first
evaluation, and then serves per-candidate work items by index.  Because the
runtime calls the same ``_build_trunk`` / ``_evaluate_for_shard`` methods
as the serial and fork paths, its results are bit-identical to both.

Two refinements keep repeated jobs cheap:

* **Runtime cache.**  Workers persist across jobs, so they keep a
  :class:`RuntimeCache` keyed by the job's :func:`job_digest` — the
  scenario spec, backtester class and configuration.  A repeated
  ``evaluate_all`` on the same scenario reuses the worker's scenario,
  backtester (warm engine included) and already-built shared trunk instead
  of rebuilding them from the wire.
* **Candidate streaming.**  A job may ship *without* its candidate list
  (:func:`strip_candidates` replaces it with a count + content digest);
  candidate wires then arrive individually with each dispatched item, so a
  worker only ever receives the candidates it actually evaluates — this is
  what the socket transport uses instead of re-sending the whole list to
  every connection.
"""

from __future__ import annotations

import hashlib
import json
import os
import time as _time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Type

from ..backtest.abort import EarlyAbortPolicy
from ..backtest.multiquery import MultiQueryBacktester
from ..backtest.replay import Backtester, ShardOutcome
from ..repair.candidates import (RepairCandidate, candidate_from_wire,
                                 candidate_to_wire)
from ..scenarios.spec import ScenarioSpec


class DistribError(RuntimeError):
    """Raised for fabric-level failures (bad jobs, unusable scenarios)."""


#: Backtester classes a job may name.  Subclasses must register themselves
#: (:func:`register_backtester`) to be evaluable on spawn/remote workers.
BACKTESTER_CLASSES: Dict[str, Type[Backtester]] = {}


def register_backtester(cls: Type[Backtester],
                        name: Optional[str] = None) -> Type[Backtester]:
    """Register a backtester class for wire-format jobs (usable as a
    decorator)."""
    BACKTESTER_CLASSES[name or cls.__name__] = cls
    return cls


register_backtester(Backtester)
register_backtester(MultiQueryBacktester)

#: Constructor keywords that travel with a job.  ``workers`` intentionally
#: stays local: parallelism is the transport's business, and a worker that
#: forked its own pool would double-shard.
_CONFIG_FIELDS = ("ks_threshold", "alpha", "use_significance", "trace_limit",
                  "max_packet_in_growth", "replay_batch_size", "warm_engine")


def build_job_wire(backtester: Backtester,
                   candidates: Sequence[RepairCandidate],
                   abort_policy: Optional[EarlyAbortPolicy] = None,
                   telemetry=None, deadline: Optional[float] = None) -> Dict:
    """Describe one ``evaluate_all`` call as a JSON-able job dict.

    ``telemetry`` (a :class:`repro.obs.Telemetry`) adds a ``"telemetry"``
    key carrying the coordinator's span context, so worker-side spans
    stitch under the coordinator's trace.  Like the abort policy, the key
    is excluded from :func:`job_digest` — a telemetry toggle must not
    defeat the worker runtime cache.

    ``deadline`` (seconds) is the per-item soft deadline transports use to
    catch hung workers — typically
    :meth:`~repro.distrib.faults.FaultToleranceConfig.resolve_deadline`
    applied to the backtester's timed-baseline estimate.  Also
    digest-excluded: a deadline tweak must not invalidate worker caches.
    """
    spec = getattr(backtester.scenario, "spec", None)
    if spec is None:
        raise DistribError(
            "scenario has no ScenarioSpec; build it via "
            "repro.scenarios.build_scenario (or set scenario.spec) so "
            "spawn/remote workers can reconstruct it")
    class_name = type(backtester).__name__
    if BACKTESTER_CLASSES.get(class_name) is not type(backtester):
        raise DistribError(
            f"backtester class {class_name!r} is not registered for "
            f"distributed evaluation; call repro.distrib.register_backtester")
    if abort_policy is None:
        abort_policy = backtester.abort_policy
    job_wire = {
        "spec": spec.to_wire(),
        "backtester": class_name,
        "config": {key: getattr(backtester, key) for key in _CONFIG_FIELDS},
        "abort": abort_policy.to_wire() if abort_policy is not None else None,
        "candidates": [candidate_to_wire(c) for c in candidates],
    }
    if telemetry is not None:
        job_wire["telemetry"] = telemetry.context_wire()
    if deadline is not None:
        job_wire["deadline"] = float(deadline)
    return job_wire


def job_digest(job_wire: Dict) -> str:
    """Content digest of everything that defines a job's *runtime*.

    Candidates and the abort policy are excluded on purpose: the runtime
    cache serves any candidate list against the same scenario + backtester
    configuration, and the abort policy is a plain attribute the runtime
    re-points per job.
    """
    basis = json.dumps({"spec": job_wire["spec"],
                        "backtester": job_wire["backtester"],
                        "config": job_wire["config"]},
                       sort_keys=True, default=str)
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()


def strip_candidates(job_wire: Dict) -> Dict:
    """A job header without the candidate wires (streamed per item instead).

    The header keeps everything that defines the runtime plus the
    candidate count (for queue bookkeeping); the candidate wires
    themselves ride with the dispatched items.
    """
    header = {key: value for key, value in job_wire.items()
              if key != "candidates"}
    header["candidate_count"] = len(job_wire["candidates"])
    return header


class _RuntimeEntry:
    """One cached (scenario, backtester, trunk) trio."""

    __slots__ = ("scenario", "backtester", "trunk", "trunk_built")

    def __init__(self, scenario, backtester):
        self.scenario = scenario
        self.backtester = backtester
        self.trunk = None
        self.trunk_built = False


class RuntimeCache:
    """Worker-side LRU cache of job runtimes, keyed by :func:`job_digest`.

    Closes the "remote workers rebuild the shared trunk once per job"
    cost: a repeated ``evaluate_all`` on the same scenario reuses the
    scenario object, the backtester (with its warm engine and cached
    baseline) and the shared multiquery trunk.  ``hits``/``misses`` are
    exposed for tests and benchmarks.
    """

    def __init__(self, capacity: int = 8):
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[str, _RuntimeEntry]" = OrderedDict()

    def get(self, digest: str) -> Optional[_RuntimeEntry]:
        entry = self._entries.get(digest)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(digest)
        self.hits += 1
        return entry

    def put(self, digest: str, entry: _RuntimeEntry) -> None:
        self._entries[digest] = entry
        self._entries.move_to_end(digest)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def plan_cache_stats(self) -> Dict[str, int]:
        """Counters of this worker's process-global rule-plan cache
        (:data:`repro.ndlog.plan.PLAN_CACHE`).  Cached runtimes keep their
        engines alive across jobs, so near-identical candidate programs
        re-index against mostly cached plans; the hit rate quantifies it."""
        from ..ndlog.plan import PLAN_CACHE
        return PLAN_CACHE.stats()


def build_runtime(job_wire: Dict, cache: Optional[RuntimeCache] = None):
    """Build the worker-side runtime for a job wire of any kind.

    Job wires are discriminated by their ``"kind"`` key: absent or
    ``"backtest"`` builds the classic :class:`JobRuntime`; ``"repair"``
    builds a :class:`repro.service.runtime.RepairJobRuntime`, which runs
    a whole Diagnose → Generate → Backtest → Rank pipeline as one item.
    The service module is imported lazily — the api package imports this
    one, so a top-level import would cycle.

    Every runtime exposes ``__len__`` and ``evaluate(index,
    candidate_wire=None)``; runtimes that stream events additionally
    expose ``set_event_sink``.
    """
    kind = job_wire.get("kind", "backtest") if isinstance(job_wire, dict) \
        else "backtest"
    if kind == "backtest":
        return JobRuntime(job_wire, cache=cache)
    if kind == "repair":
        from ..service.runtime import RepairJobRuntime
        return RepairJobRuntime(job_wire, cache=cache)
    raise DistribError(f"unknown job kind {kind!r}; expected 'backtest' "
                       f"or 'repair'")


class JobRuntime:
    """Worker-side execution state for one job.

    Accepts a full job wire (embedded candidate list — the spawn and
    in-process transports) or a stripped header from
    :func:`strip_candidates`, in which case candidate wires arrive with
    each :meth:`evaluate` call.  With a :class:`RuntimeCache`, the
    scenario/backtester/trunk trio is shared across same-digest jobs.
    """

    def __init__(self, job_wire: Dict, cache: Optional[RuntimeCache] = None):
        try:
            spec_wire = job_wire["spec"]
            cls = BACKTESTER_CLASSES[job_wire["backtester"]]
            config = dict(job_wire["config"])
            abort_wire = job_wire.get("abort")
            if "candidates" in job_wire:
                self.candidates: List[Optional[RepairCandidate]] = [
                    candidate_from_wire(w) for w in job_wire["candidates"]]
            else:
                count = int(job_wire["candidate_count"])
                self.candidates = [None] * count
        except (KeyError, TypeError, ValueError) as exc:
            raise DistribError(f"malformed job wire: {exc!r}") from exc
        abort_policy = (EarlyAbortPolicy.from_wire(abort_wire)
                        if abort_wire is not None else None)
        digest = job_digest(job_wire) if cache is not None else None
        entry = cache.get(digest) if cache is not None else None
        if entry is None:
            scenario = ScenarioSpec.from_wire(spec_wire).build()
            backtester = cls(scenario, workers=1, **config)
            entry = _RuntimeEntry(scenario, backtester)
            if cache is not None:
                cache.put(digest, entry)
        self._entry = entry
        self.scenario = entry.scenario
        self.backtester = entry.backtester
        #: The policy is per-job even when the runtime is cached.
        self.backtester.abort_policy = abort_policy
        #: Worker-side telemetry, seeded from the coordinator's span
        #: context on the wire.  Per-job like the abort policy — and reset
        #: unconditionally so a cached runtime from a telemetry-enabled
        #: job never leaks spans into a disabled one.
        telemetry_wire = job_wire.get("telemetry")
        if telemetry_wire is not None:
            from ..obs import Telemetry
            self.telemetry = Telemetry.from_job_wire(telemetry_wire)
        else:
            self.telemetry = None
        self.backtester.telemetry = self.telemetry

    def __len__(self) -> int:
        return len(self.candidates)

    def evaluate(self, index: int,
                 candidate_wire: Optional[Dict] = None) -> ShardOutcome:
        """Evaluate candidate ``index``; the result ships candidate-free."""
        candidate = self.candidates[index]
        if candidate is None:
            if candidate_wire is None:
                raise DistribError(
                    f"candidate {index} was not shipped with the job and no "
                    f"wire came with the item")
            candidate = candidate_from_wire(candidate_wire)
            self.candidates[index] = candidate
        entry = self._entry
        telemetry = self.telemetry
        if telemetry is None:
            if not entry.trunk_built:
                entry.trunk = self.backtester._build_trunk()
                entry.trunk_built = True
            outcome = self.backtester._evaluate_for_shard(candidate,
                                                          entry.trunk)
            outcome.result.candidate = None
            return outcome
        # Deterministic cross-process span id: the coordinator's job span
        # (the wire context) is the parent, the item index disambiguates —
        # workers never need to coordinate id allocation.
        parent_id = telemetry.tracer.parent.span_id
        worker = str(os.getpid())
        started = _time.perf_counter()
        with telemetry.span("candidate", span_id=f"{parent_id}.c{index}",
                            index=index, worker_pid=os.getpid(),
                            description=(candidate.description or "")):
            if not entry.trunk_built:
                with telemetry.span("trunk.build"):
                    entry.trunk = self.backtester._build_trunk()
                entry.trunk_built = True
            outcome = self.backtester._evaluate_for_shard(candidate,
                                                          entry.trunk)
        elapsed = _time.perf_counter() - started
        telemetry.metrics.counter("worker_items", worker=worker).inc()
        telemetry.metrics.histogram("worker_item_seconds",
                                    worker=worker).observe(elapsed)
        outcome.spans, outcome.metrics = telemetry.drain_remote()
        outcome.result.candidate = None
        return outcome
