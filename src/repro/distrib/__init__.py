"""Distributed backtest fabric (scale-out candidate evaluation).

Backtesting dominates the repair loop's turnaround (Figure 9b): every
candidate replays the whole historical trace.  This package turns that
embarrassingly parallel workload into a schedulable fabric:

* :mod:`~repro.distrib.jobs` — declarative job wire format built on
  spawn-safe :class:`~repro.scenarios.spec.ScenarioSpec` handles and the
  structural candidate encoding of :mod:`repro.repair.candidates`;
* :mod:`~repro.distrib.coordinator` — pull-based work-queue dispatch with
  input-order result streaming, progress callbacks and optional
  early-abort of hopeless replays;
* :mod:`~repro.distrib.transport` — in-process, ``spawn``
  multiprocessing, and length-prefixed TCP transports (the latter served
  by ``python -m repro.distrib.worker`` processes, which may live on
  other machines);
* :mod:`~repro.distrib.worker` — the ``repro-worker`` entry point.

Every transport is an optimisation, not an approximation: with the abort
policy off, reports are bit-identical to serial evaluation (asserted
across Q1-Q5 by ``tests/distrib/test_transport_parity.py``).  The same
holds under faults: :mod:`~repro.distrib.faults` gives every transport a
retry/restart/quarantine policy (:class:`FaultToleranceConfig`) and a
deterministic chaos harness (:class:`FaultPlan`), and
``tests/distrib/test_chaos.py`` asserts reports stay bit-identical under
injected worker crashes, hangs, disconnects and frame corruption —
modulo the deterministic quarantine rows of genuinely poisonous
candidates.
"""

from ..backtest.abort import EarlyAbortPolicy
from .coordinator import Coordinator, Scheduler
from .faults import (FAULT_KINDS, FaultAction, FaultInjector, FaultPlan,
                     FaultStats, FaultToleranceConfig, InjectedFault,
                     QuarantinedItem)
from .jobs import (BACKTESTER_CLASSES, DistribError, JobRuntime,
                   RuntimeCache, build_job_wire, job_digest,
                   register_backtester, strip_candidates)
from .transport import (BaseTransport, FrameError, InProcessTransport,
                        SocketTransport, SpawnTransport, TransportError,
                        make_transport)

__all__ = [
    "BACKTESTER_CLASSES", "BaseTransport", "Coordinator", "DistribError",
    "EarlyAbortPolicy", "FAULT_KINDS", "FaultAction", "FaultInjector",
    "FaultPlan", "FaultStats", "FaultToleranceConfig", "FrameError",
    "InProcessTransport", "InjectedFault", "JobRuntime", "QuarantinedItem",
    "RuntimeCache", "Scheduler", "SocketTransport", "SpawnTransport",
    "TransportError", "build_job_wire", "job_digest", "make_transport",
    "register_backtester", "strip_candidates",
]
