"""The work-queue coordinator: one candidate queue, many workers.

The coordinator replaces PR 2's static fork sharding with dynamic
pull-based dispatch: per-candidate work items sit in one queue, workers
take the next item when they finish the last, and results stream back as
they complete.  The coordinator

* reorders streamed results into **input order** (the order callers and
  reports rely on),
* re-attaches the caller's candidate objects (workers evaluate stripped
  copies; the meta provenance tree never crosses the wire),
* invokes an optional **progress callback** per completed candidate, and
* forwards an optional :class:`~repro.backtest.abort.EarlyAbortPolicy` so
  workers can kill a hopeless candidate's replay mid-trace.

:class:`Scheduler` is the user-facing bundle (transport choice + worker
count + callbacks) that plugs into ``Backtester.evaluate_all(...,
scheduler=...)``::

    from repro.distrib import Scheduler
    with Scheduler(transport="spawn", workers=4) as scheduler:
        report = Backtester(scenario).evaluate_all(candidates,
                                                   scheduler=scheduler)
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence, Union

from ..backtest.abort import EarlyAbortPolicy
from ..backtest.replay import Backtester, BacktestResult, ShardOutcome
from ..events import EventBus, progress_to_events
from ..repair.candidates import RepairCandidate
from .jobs import DistribError, build_job_wire
from .transport import BaseTransport, make_transport

#: ``progress(done, total, result)`` — called in completion order, with the
#: candidate already re-attached to the result.  The callback form predates
#: the unified event stream; new code should pass ``events=`` (an
#: :class:`repro.events.EventBus`) and consume typed
#: :class:`~repro.events.BacktestProgress` events instead.
ProgressCallback = Callable[[int, int, BacktestResult], None]


class Coordinator:
    """Runs one backtest job through a transport, preserving input order."""

    def __init__(self, transport: BaseTransport,
                 progress: Optional[ProgressCallback] = None,
                 events: Optional[EventBus] = None,
                 telemetry=None):
        self.transport = transport
        self.progress = progress
        self.events = events
        #: Coordinator-side :class:`repro.obs.Telemetry`; when ``None``
        #: the backtester's own bundle (if any) is used, so a scheduler
        #: built without explicit telemetry still propagates context.
        self.telemetry = telemetry
        self._event_progress = (progress_to_events(events)
                                if events is not None else None)

    def run(self, backtester: Backtester,
            candidates: Sequence[RepairCandidate],
            abort_policy: Optional[EarlyAbortPolicy] = None,
            progress: Optional[ProgressCallback] = None
            ) -> List[ShardOutcome]:
        candidates = list(candidates)
        if not candidates:
            return []
        telemetry = self.telemetry or getattr(backtester, "telemetry", None)
        job_span = None
        if telemetry is not None:
            # Open the job span *before* building the wire: the wire's
            # span context is then this span, and every worker-side item
            # span stitches under it.
            job_span = telemetry.span("fabric.job",
                                      transport=self.transport.name,
                                      candidates=len(candidates))
        job_wire = build_job_wire(backtester, candidates,
                                  abort_policy=abort_policy,
                                  telemetry=telemetry)
        outcomes: List[Optional[ShardOutcome]] = [None] * len(candidates)
        callbacks = [cb for cb in (self.progress, progress,
                                   self._event_progress) if cb is not None]
        done = 0
        lock = threading.Lock()   # socket transports deliver from threads

        def on_result(index: int, outcome: ShardOutcome) -> None:
            nonlocal done
            with lock:
                outcome.result.candidate = candidates[index]
                outcomes[index] = outcome
                done += 1
                if telemetry is not None:
                    telemetry.metrics.counter("fabric_items").inc()
                    telemetry.metrics.gauge("fabric_queue_depth").set(
                        len(candidates) - done)
                for callback in callbacks:
                    callback(done, len(candidates), outcome.result)

        try:
            self.transport.run_job(job_wire, on_result)
        finally:
            if job_span is not None:
                job_span.finish()
        missing = [i for i, outcome in enumerate(outcomes) if outcome is None]
        if missing:
            raise DistribError(f"transport {self.transport.name!r} returned "
                               f"no result for candidates {missing}")
        return outcomes


class Scheduler:
    """Transport + worker count + callbacks, pluggable into ``evaluate_all``.

    ``transport`` is a name (``"inprocess"``, ``"spawn"``, ``"socket"``)
    or an already-configured :class:`BaseTransport` instance.  Name-built
    transports are owned by the scheduler and shut down by :meth:`close`
    (or the context manager); instances are borrowed and left running.
    """

    def __init__(self, transport: Union[str, BaseTransport] = "spawn",
                 workers: int = 2,
                 progress: Optional[ProgressCallback] = None,
                 early_abort: Optional[EarlyAbortPolicy] = None,
                 events: Optional[EventBus] = None,
                 telemetry=None,
                 **transport_options):
        if isinstance(transport, BaseTransport):
            if transport_options:
                raise DistribError("transport_options only apply when the "
                                   "scheduler builds the transport itself")
            self.transport = transport
            self._owns_transport = False
        else:
            self.transport = make_transport(transport, workers=workers,
                                            **transport_options)
            self._owns_transport = True
        self.workers = workers
        self.early_abort = early_abort
        self._coordinator = Coordinator(self.transport, progress=progress,
                                        events=events, telemetry=telemetry)

    @classmethod
    def from_config(cls, config, progress: Optional[ProgressCallback] = None,
                    events: Optional[EventBus] = None,
                    telemetry=None) -> "Scheduler":
        """Build a scheduler from a :class:`repro.api.RepairConfig`.

        The single construction path from declarative knobs (transport
        name, worker count, abort policy, transport options) to a live
        scheduler — call sites hand over the config instead of wiring
        arguments.  ``config.transport`` of ``None`` maps to ``"spawn"``,
        the portable default.
        """
        return cls(transport=config.transport or "spawn",
                   workers=config.workers,
                   progress=progress,
                   early_abort=config.abort,
                   events=events,
                   telemetry=telemetry,
                   **dict(config.transport_options))

    def run(self, backtester: Backtester,
            candidates: Sequence[RepairCandidate],
            progress: Optional[ProgressCallback] = None
            ) -> List[ShardOutcome]:
        """Evaluate ``candidates`` for ``backtester`` through the fabric."""
        return self._coordinator.run(backtester, candidates,
                                     abort_policy=self.early_abort,
                                     progress=progress)

    def close(self) -> None:
        if self._owns_transport:
            self.transport.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
