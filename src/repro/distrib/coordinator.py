"""The work-queue coordinator: one candidate queue, many workers.

The coordinator replaces PR 2's static fork sharding with dynamic
pull-based dispatch: per-candidate work items sit in one queue, workers
take the next item when they finish the last, and results stream back as
they complete.  The coordinator

* reorders streamed results into **input order** (the order callers and
  reports rely on),
* re-attaches the caller's candidate objects (workers evaluate stripped
  copies; the meta provenance tree never crosses the wire),
* invokes an optional **progress callback** per completed candidate,
* forwards an optional :class:`~repro.backtest.abort.EarlyAbortPolicy` so
  workers can kill a hopeless candidate's replay mid-trace, and
* converts transport-level :class:`~repro.distrib.faults.QuarantinedItem`
  deliveries (items that exhausted their retry budget) into deterministic
  rejected results — so ``len(results) == len(candidates)`` holds even
  when a candidate is poisonous — emitting ``candidate_quarantined``
  events and folding the transport's recovery counters into telemetry
  (``fabric_worker_restarts``, ``fabric_job_retries{reason=…}``,
  ``fabric_quarantined``, ``fabric_frame_errors``, retry spans) after
  each job.

:class:`Scheduler` is the user-facing bundle (transport choice + worker
count + callbacks) that plugs into ``Backtester.evaluate_all(...,
scheduler=...)``::

    from repro.distrib import Scheduler
    with Scheduler(transport="spawn", workers=4) as scheduler:
        report = Backtester(scenario).evaluate_all(candidates,
                                                   scheduler=scheduler)
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Sequence, Union

from ..backtest.abort import EarlyAbortPolicy
from ..backtest.metrics import compare_traffic
from ..backtest.replay import Backtester, BacktestResult, ShardOutcome
from ..events import (CandidateQuarantined, EventBus, FabricFaultStats,
                      progress_to_events)
from ..repair.candidates import RepairCandidate
from .faults import FaultPlan, FaultStats, FaultToleranceConfig, QuarantinedItem
from .jobs import DistribError, build_job_wire
from .transport import BaseTransport, make_transport

#: ``progress(done, total, result)`` — called in completion order, with the
#: candidate already re-attached to the result.  The callback form predates
#: the unified event stream; new code should pass ``events=`` (an
#: :class:`repro.events.EventBus`) and consume typed
#: :class:`~repro.events.BacktestProgress` events instead.
ProgressCallback = Callable[[int, int, BacktestResult], None]


class Coordinator:
    """Runs one backtest job through a transport, preserving input order."""

    def __init__(self, transport: BaseTransport,
                 progress: Optional[ProgressCallback] = None,
                 events: Optional[EventBus] = None,
                 telemetry=None):
        self.transport = transport
        self.progress = progress
        self.events = events
        #: Coordinator-side :class:`repro.obs.Telemetry`; when ``None``
        #: the backtester's own bundle (if any) is used, so a scheduler
        #: built without explicit telemetry still propagates context.
        self.telemetry = telemetry
        self._event_progress = (progress_to_events(events)
                                if events is not None else None)

    def run(self, backtester: Backtester,
            candidates: Sequence[RepairCandidate],
            abort_policy: Optional[EarlyAbortPolicy] = None,
            progress: Optional[ProgressCallback] = None
            ) -> List[ShardOutcome]:
        candidates = list(candidates)
        if not candidates:
            return []
        telemetry = self.telemetry or getattr(backtester, "telemetry", None)
        job_span = None
        if telemetry is not None:
            # Open the job span *before* building the wire: the wire's
            # span context is then this span, and every worker-side item
            # span stitches under it.
            job_span = telemetry.span("fabric.job",
                                      transport=self.transport.name,
                                      candidates=len(candidates))
        # Per-item soft deadline: the timed baseline replay (set by
        # ``evaluate_all`` before the scheduler runs) estimates one
        # candidate's cost; the transport's policy scales and floors it.
        deadline = self.transport.fault_policy.resolve_deadline(
            getattr(backtester, "_baseline_seconds", None))
        job_wire = build_job_wire(backtester, candidates,
                                  abort_policy=abort_policy,
                                  telemetry=telemetry,
                                  deadline=deadline)
        outcomes: List[Optional[ShardOutcome]] = [None] * len(candidates)
        callbacks = [cb for cb in (self.progress, progress,
                                   self._event_progress) if cb is not None]
        done = 0
        lock = threading.Lock()   # socket transports deliver from threads

        def on_result(index: int, outcome) -> None:
            nonlocal done
            with lock:
                if isinstance(outcome, QuarantinedItem):
                    outcome = self._quarantine(backtester, candidates[index],
                                               outcome, telemetry)
                else:
                    outcome.result.candidate = candidates[index]
                outcomes[index] = outcome
                done += 1
                if telemetry is not None:
                    telemetry.metrics.counter("fabric_items").inc()
                    telemetry.metrics.gauge("fabric_queue_depth").set(
                        len(candidates) - done)
                for callback in callbacks:
                    callback(done, len(candidates), outcome.result)

        try:
            self.transport.run_job(job_wire, on_result)
        finally:
            self._record_fault_stats(telemetry)
            if job_span is not None:
                job_span.finish()
        missing = [i for i, outcome in enumerate(outcomes) if outcome is None]
        if missing:
            raise DistribError(f"transport {self.transport.name!r} returned "
                               f"no result for candidates {missing}")
        return outcomes

    def _quarantine(self, backtester: Backtester,
                    candidate: RepairCandidate, item: QuarantinedItem,
                    telemetry) -> ShardOutcome:
        """A deterministic error-shaped outcome for a given-up item.

        Mirrors ``Backtester._vetoed_result``: baseline statistics, a
        self-comparison KS, a flat rejection, and a machine-readable
        ``quarantined(<reason>) after N attempts`` note — identical on
        every run of the same fault plan, which is what lets chaos tests
        assert bit-identical reports modulo quarantine rows.
        """
        baseline = backtester.baseline()
        note = f"quarantined({item.reason}) after {item.attempts} attempts"
        result = BacktestResult(candidate=candidate, stats=baseline,
                                ks=compare_traffic(baseline, baseline),
                                effective=False, accepted=False,
                                elapsed_seconds=0.0,
                                notes=candidate.notes + (note,))
        if self.events is not None:
            self.events.emit(CandidateQuarantined(
                index=item.index, description=candidate.description or "",
                reason=item.reason, attempts=item.attempts))
        if telemetry is not None:
            telemetry.metrics.counter("fabric_quarantined",
                                      reason=item.reason).inc()
        return ShardOutcome(result=result)

    def _record_fault_stats(self, telemetry) -> None:
        """Fold the transport's recovery counters into telemetry + events.

        Strictly nonzero-only: a fault-free job emits no counters, no
        spans and no event, so its telemetry snapshot and event stream
        are bit-identical to a run without fault tolerance — which is
        also how chaos tests *prove* a run needed zero retries.
        """
        stats: FaultStats = getattr(self.transport, "last_fault_stats", None)
        if stats is None or not stats.any():
            return
        if telemetry is not None:
            metrics = telemetry.metrics
            if stats.worker_restarts:
                metrics.counter("fabric_worker_restarts").inc(
                    stats.worker_restarts)
            for reason, count in sorted(stats.retries.items()):
                metrics.counter("fabric_job_retries", reason=reason).inc(count)
            if stats.frame_errors:
                metrics.counter("fabric_frame_errors").inc(stats.frame_errors)
            if stats.degraded:
                metrics.counter("fabric_degraded").inc()
            for index, reason, attempt in stats.retry_log:
                with telemetry.span("fabric.retry", index=index,
                                    reason=reason, attempt=attempt):
                    pass
        if self.events is not None:
            reasons = ",".join(f"{reason}={count}" for reason, count
                               in sorted(stats.retries.items()))
            self.events.emit(FabricFaultStats(
                worker_restarts=stats.worker_restarts,
                job_retries=stats.total_retries,
                retry_reasons=reasons,
                quarantined=stats.quarantined,
                frame_errors=stats.frame_errors,
                degraded=stats.degraded))


class Scheduler:
    """Transport + worker count + callbacks, pluggable into ``evaluate_all``.

    ``transport`` is a name (``"inprocess"``, ``"spawn"``, ``"socket"``)
    or an already-configured :class:`BaseTransport` instance.  Name-built
    transports are owned by the scheduler and shut down by :meth:`close`
    (or the context manager); instances are borrowed and left running.

    ``fault`` (a :class:`~repro.distrib.faults.FaultToleranceConfig` or
    wire dict) sets the transport's retry/restart/degradation policy;
    ``fault_plan`` arms deterministic fault injection for chaos testing.
    """

    def __init__(self, transport: Union[str, BaseTransport] = "spawn",
                 workers: int = 2,
                 progress: Optional[ProgressCallback] = None,
                 early_abort: Optional[EarlyAbortPolicy] = None,
                 events: Optional[EventBus] = None,
                 telemetry=None,
                 fault=None,
                 fault_plan=None,
                 **transport_options):
        if isinstance(transport, BaseTransport):
            if transport_options:
                raise DistribError("transport_options only apply when the "
                                   "scheduler builds the transport itself")
            self.transport = transport
            self._owns_transport = False
            if fault is not None:
                self.transport.fault_policy = \
                    FaultToleranceConfig.coerce(fault)
            if fault_plan is not None:
                self.transport.fault_plan = FaultPlan.coerce(fault_plan)
        else:
            if fault is not None:
                transport_options.setdefault("fault_policy", fault)
            if fault_plan is not None:
                transport_options.setdefault("fault_plan", fault_plan)
            self.transport = make_transport(transport, workers=workers,
                                            **transport_options)
            self._owns_transport = True
        self.workers = workers
        self.early_abort = early_abort
        self._coordinator = Coordinator(self.transport, progress=progress,
                                        events=events, telemetry=telemetry)

    @classmethod
    def from_config(cls, config, progress: Optional[ProgressCallback] = None,
                    events: Optional[EventBus] = None,
                    telemetry=None) -> "Scheduler":
        """Build a scheduler from a :class:`repro.api.RepairConfig`.

        The single construction path from declarative knobs (transport
        name, worker count, abort policy, fault-tolerance block, transport
        options) to a live scheduler — call sites hand over the config
        instead of wiring arguments.  ``config.transport`` of ``None``
        maps to ``"spawn"``, the portable default.
        """
        return cls(transport=config.transport or "spawn",
                   workers=config.workers,
                   progress=progress,
                   early_abort=config.abort,
                   events=events,
                   telemetry=telemetry,
                   fault=getattr(config, "fault_tolerance", None),
                   **dict(config.transport_options))

    def run(self, backtester: Backtester,
            candidates: Sequence[RepairCandidate],
            progress: Optional[ProgressCallback] = None
            ) -> List[ShardOutcome]:
        """Evaluate ``candidates`` for ``backtester`` through the fabric."""
        return self._coordinator.run(backtester, candidates,
                                     abort_policy=self.early_abort,
                                     progress=progress)

    def close(self) -> None:
        if self._owns_transport:
            self.transport.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
