"""Scenario Q4: forgotten packets (Section 5.3, Table 6c).

The controller app on switch S8 installs the right flow entries in response
to new flows, but it only sends ``PacketOut`` messages for DNS traffic — the
programmer forgot the packet-out for HTTP.  Because an OpenFlow switch
buffers the packet that caused the table miss, the *first* packet of every
HTTP flow is lost even though all subsequent packets match the new entry.

The repairs the paper finds for this scenario re-target or copy existing
rules so that their head becomes a ``PacketOut``; this is what the
retargeting tasks of the meta provenance explorer produce.
"""

from __future__ import annotations

from typing import List, Tuple

from ..controllers.ndlog_controller import FieldMapping
from ..sdn.packets import DNS_PORT, HTTP_PORT, Packet, PROTO_TCP, PROTO_UDP
from ..sdn.topology import Topology
from .base import NDlogScenario, Symptom


Q4_MAPPING = FieldMapping(
    packet_in_fields=("src_ip", "dst_port"),
    flow_entry_layout=("src_ip", "dst_port", "out_port"))

WEB_SERVER = 28        # "H20"
DNS_SERVER = 29
FIRST_CLIENT = 30      # "H2": the client whose first packet the query names

Q4_PROGRAM = """
// Reactive forwarding on switch S8: per-client flow entries for HTTP and DNS.
q4http FlowTable(@Swi,Sip,Hdr,Prt) :- PacketIn(@C,Swi,Sip,Hdr), Swi == 8, Hdr == 80, Prt := 1.
q4dns FlowTable(@Swi,Sip,Hdr,Prt) :- PacketIn(@C,Swi,Sip,Hdr), Swi == 8, Hdr == 53, Prt := 2.
// Packet-out for the buffered first packet: present for DNS, forgotten for HTTP.
q4po PacketOut(@Swi,Prt) :- PacketIn(@C,Swi,Sip,Hdr), Swi == 8, Hdr == 53, Prt := 2.
"""


def q4_topology(clients: int = 8) -> Topology:
    topo = Topology(name="q4")
    topo.add_switch(8, "S8")
    topo.add_host(8, 1, role="web", name="H20", host_id=WEB_SERVER)
    topo.add_host(8, 2, role="dns", name="DNS", host_id=DNS_SERVER)
    topo.add_host(8, 10, role="client", name="H2", host_id=FIRST_CLIENT)
    for index in range(1, clients):
        topo.add_host(8, 10 + index, role="client", host_id=FIRST_CLIENT + index)
    return topo


def q4_trace(topology: Topology, packets_per_flow: int = 6,
             repetitions: int = 2) -> List[Tuple[int, Packet]]:
    trace: List[Tuple[int, Packet]] = []
    clients = sorted((h for h in topology.hosts.values() if h.role == "client"),
                     key=lambda h: h.host_id)
    for _ in range(repetitions):
        for client in clients:
            for sequence in range(packets_per_flow):
                trace.append((8, Packet(src_ip=client.ip, dst_ip=WEB_SERVER,
                                        src_port=41000 + sequence,
                                        dst_port=HTTP_PORT, proto=PROTO_TCP)))
            for sequence in range(2):
                trace.append((8, Packet(src_ip=client.ip, dst_ip=DNS_SERVER,
                                        src_port=52000 + sequence,
                                        dst_port=DNS_PORT, proto=PROTO_UDP)))
    return trace


def _no_http_packet_lost(stats) -> bool:
    """Effective iff no HTTP packet (in particular the first one) is dropped."""
    return not any(record.packet.dst_port == HTTP_PORT and not record.delivered
                   for record in stats.delivery_records)


def build_q4(clients: int = 8, repetitions: int = 2) -> NDlogScenario:
    """Build the Q4 scenario ("First HTTP packet from H2 to H20 is not received")."""
    symptom = Symptom(
        description="The first HTTP packet from H2 to H20 is not received",
        table="PacketOut",
        constraints={0: 8},
        node=8)
    return NDlogScenario(
        name="Q4",
        description="Controller forgets PacketOut for the buffered first packet",
        program_source=Q4_PROGRAM,
        mapping=Q4_MAPPING,
        topology_factory=lambda: q4_topology(clients),
        trace_factory=lambda topo: q4_trace(topo, repetitions=repetitions),
        symptom=symptom,
        effective_predicate=_no_http_packet_lost,
        target_host=WEB_SERVER,
        auto_packet_out=False,
        require_packet_out=True,
        reference_repair="copy rule q4http with a PacketOut head",
        ks_threshold=0.12)
