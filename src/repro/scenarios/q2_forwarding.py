"""Scenario Q2: forwarding error (Section 5.3, Table 6a).

A DNS server (H17) cannot receive queries from one of the clients (H1,
source IP 6) because the forwarding rule on the aggregation switch S5 was
written with a too-restrictive source-IP selection (``Sip < 6``).  Other
clients work, and a port scanner (source IP 50) is *supposed* to remain
blocked, which is what makes the overly general repairs (``Sip < 50``,
deleting the predicate, ...) fail backtesting.
"""

from __future__ import annotations

from typing import List, Tuple

from ..controllers.ndlog_controller import FieldMapping
from ..sdn.packets import DNS_PORT, HTTP_PORT, Packet, PROTO_TCP, PROTO_UDP
from ..sdn.topology import Topology
from .base import NDlogScenario, Symptom


Q2_MAPPING = FieldMapping(
    packet_in_fields=("src_ip", "dst_port"),
    flow_entry_layout=("src_ip", "dst_port", "out_port"))

DNS_SERVER = 17      # "H17" of the paper's query
WEB_SERVER = 16
AFFECTED_CLIENT = 6  # "H1": its DNS queries are dropped
SCANNER = 50         # must remain blocked

Q2_PROGRAM = """
// Access switch S6 forwards everything to the aggregation switch S5.
q2a FlowTable(@Swi,Sip,Hdr,Prt) :- PacketIn(@C,Swi,Sip,Hdr), Swi == 6, Hdr == 53, Prt := 1.
q2b FlowTable(@Swi,Sip,Hdr,Prt) :- PacketIn(@C,Swi,Sip,Hdr), Swi == 6, Hdr == 80, Prt := 1.
// Aggregation switch S5: deliver DNS to H17 and web traffic to H16, but only
// for known clients.  The bug: the operator wrote Sip < 6 instead of Sip < 7,
// cutting off the client with source IP 6.
q2c FlowTable(@Swi,Sip,Hdr,Prt) :- PacketIn(@C,Swi,Sip,Hdr), Swi == 5, Hdr == 53, Sip < 6, Prt := 17.
q2d FlowTable(@Swi,Sip,Hdr,Prt) :- PacketIn(@C,Swi,Sip,Hdr), Swi == 5, Hdr == 80, Sip < 6, Prt := 16.
"""


def q2_topology() -> Topology:
    topo = Topology(name="q2")
    topo.add_switch(5, "S5")
    topo.add_switch(6, "S6")
    topo.add_link(6, 1, 5, 3)          # S6 port 1 -> S5
    topo.add_host(5, 17, role="dns", name="H17", host_id=DNS_SERVER)
    topo.add_host(5, 16, role="web", name="H16", host_id=WEB_SERVER)
    # Legitimate clients (IPs 1-6) plus two not-yet-whitelisted ones (7, 8)
    # and the scanner that must stay blocked.
    for ip in range(1, 9):
        topo.add_host(6, 10 + ip, role="client", host_id=ip)
    topo.add_host(6, 30, role="client", name="scanner", host_id=SCANNER)
    return topo


def q2_trace(topology: Topology, repetitions: int = 2) -> List[Tuple[int, Packet]]:
    trace: List[Tuple[int, Packet]] = []
    for _ in range(repetitions):
        for ip in range(1, 6):          # healthy clients: heavy traffic
            for sequence in range(6):
                trace.append((6, Packet(src_ip=ip, dst_ip=WEB_SERVER,
                                        src_port=41000 + sequence,
                                        dst_port=HTTP_PORT, proto=PROTO_TCP)))
            for sequence in range(4):
                trace.append((6, Packet(src_ip=ip, dst_ip=DNS_SERVER,
                                        src_port=52000 + sequence,
                                        dst_port=DNS_PORT, proto=PROTO_UDP)))
        for sequence in range(3):       # the affected client: a small share
            trace.append((6, Packet(src_ip=AFFECTED_CLIENT, dst_ip=DNS_SERVER,
                                    src_port=52100 + sequence,
                                    dst_port=DNS_PORT, proto=PROTO_UDP)))
        for ip in (7, 8):               # not-yet-whitelisted clients
            for sequence in range(5):
                trace.append((6, Packet(src_ip=ip, dst_ip=DNS_SERVER,
                                        src_port=52200 + sequence,
                                        dst_port=DNS_PORT, proto=PROTO_UDP)))
        for sequence in range(20):      # the scanner: must stay blocked
            trace.append((6, Packet(src_ip=SCANNER, dst_ip=DNS_SERVER,
                                    src_port=53000 + sequence,
                                    dst_port=DNS_PORT, proto=PROTO_UDP)))
    return trace


def _dns_from_affected_client_delivered(stats) -> bool:
    return any(record.delivered_to == DNS_SERVER
               and record.packet.src_ip == AFFECTED_CLIENT
               for record in stats.delivery_records)


def build_q2(repetitions: int = 2) -> NDlogScenario:
    """Build the Q2 scenario ("H17 is not receiving DNS queries from H1")."""
    symptom = Symptom(
        description="H17 is not receiving DNS queries from H1 (source IP 6)",
        table="FlowTable",
        constraints={0: 5, 1: AFFECTED_CLIENT, 2: DNS_PORT, 3: 17},
        node=5)
    return NDlogScenario(
        name="Q2",
        description="Forwarding rule with a too-restrictive source-IP selection",
        program_source=Q2_PROGRAM,
        mapping=Q2_MAPPING,
        topology_factory=q2_topology,
        trace_factory=lambda topo: q2_trace(topo, repetitions),
        symptom=symptom,
        effective_predicate=_dns_from_affected_client_delivered,
        target_host=DNS_SERVER,
        reference_repair="change Sip < 6 to Sip < 7 in rule q2c",
        ks_threshold=0.06)
