"""Q1-style scenarios for the other two controller languages (Section 5.8).

The paper re-creates the Q1-Q5 scenarios for Trema (Ruby) and Pyretic to show
that meta provenance is not tied to NDlog.  This module provides the same
kind of re-creation for the reproduction's two non-declarative front ends:

* the policy DSL (:mod:`repro.controllers.policy`, the Pyretic substitute),
* RubyFlow (:mod:`repro.controllers.imperative`, the Trema substitute).

Each language scenario exposes ``generate_candidates()`` and
``backtest(candidates)`` so the Table 3 benchmark can report, per language,
how many candidates were generated and how many survived backtesting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..backtest.metrics import compare_traffic
from ..controllers.imperative import (
    BinExpr,
    FieldRef,
    Handler,
    If,
    ImperativeController,
    ImperativeDeliveryGoal,
    ImperativeRepair,
    ImperativeRepairer,
    InstallFlow,
    Lit,
    SendPacketOut,
)
from ..controllers.policy import (
    Fwd,
    Match,
    Parallel,
    Policy,
    PolicyController,
    PolicyDeliveryGoal,
    PolicyRepair,
    PolicyRepairer,
)
from ..sdn.network import NetworkSimulator, TrafficStats
from ..sdn.packets import HTTP_PORT, Packet
from ..sdn.topology import Topology
from .q1_copy_paste import WEB_VIP, H2, q1_topology, q1_trace


@dataclass
class LanguageBacktestResult:
    """Backtest outcome for one repaired policy/handler."""

    description: str
    cost: float
    effective: bool
    accepted: bool
    ks_statistic: float


@dataclass
class LanguageScenarioReport:
    """Counts reported in Table 3: generated vs surviving candidates."""

    language: str
    scenario: str
    generated: int
    accepted: int
    results: List[LanguageBacktestResult]


class _LanguageScenario:
    """Shared machinery for the non-NDlog Q1 re-creations."""

    language = "generic"
    scenario = "Q1"
    ks_threshold = 0.12
    target_host = H2

    def __init__(self):
        self.topology_factory = q1_topology
        self.trace = q1_trace(q1_topology())

    def build_controller(self, program):
        raise NotImplementedError

    def baseline_program(self):
        raise NotImplementedError

    def generate_candidates(self):
        raise NotImplementedError

    def run(self, program) -> TrafficStats:
        simulator = NetworkSimulator(self.topology_factory(),
                                     self.build_controller(program),
                                     record_ingress=False)
        simulator.run_trace(self.trace)
        return simulator.stats

    def backtest(self, candidates) -> LanguageScenarioReport:
        baseline = self.run(self.baseline_program())
        results: List[LanguageBacktestResult] = []
        for candidate in candidates:
            stats = self.run(self._candidate_program(candidate))
            ks = compare_traffic(baseline, stats)
            effective = stats.delivered_to(self.target_host) > 0
            accepted = effective and ks.statistic <= self.ks_threshold
            results.append(LanguageBacktestResult(
                description=candidate.description, cost=candidate.cost,
                effective=effective, accepted=accepted,
                ks_statistic=ks.statistic))
        return LanguageScenarioReport(
            language=self.language, scenario=self.scenario,
            generated=len(candidates),
            accepted=sum(1 for r in results if r.accepted),
            results=results)

    def diagnose(self) -> LanguageScenarioReport:
        return self.backtest(self.generate_candidates())

    def _candidate_program(self, candidate):
        raise NotImplementedError


class PolicyQ1Scenario(_LanguageScenario):
    """Q1 re-created in the policy DSL (the Pyretic column of Table 3).

    The buggy policy forwards the offloaded web traffic at switch 2 instead of
    switch 3 — the same copy-and-paste mistake expressed as a ``match``
    restriction with the wrong switch id.  The match syntax offers fewer
    degrees of freedom than NDlog (no operator changes), so fewer candidates
    are generated, matching the paper's observation.
    """

    language = "pyretic"

    def __init__(self, offloaded_clients: Tuple[int, ...] = (101, 102)):
        super().__init__()
        self.offloaded_clients = offloaded_clients

    def baseline_program(self) -> Policy:
        # The offloaded-client branches come first so that their forwarding
        # decision takes precedence over the general web branch at S1 (the
        # policy equivalent of rule priorities).
        policy: Optional[Policy] = None
        for client in self.offloaded_clients:
            branch = Match(switch=1, src_ip=client, dst_port=HTTP_PORT)[Fwd(2)]
            policy = branch if policy is None else Parallel(policy, branch)
        policy = Parallel(policy, Match(switch=1, dst_port=HTTP_PORT)[Fwd(1)])
        policy = Parallel(policy, Match(switch=2, dst_port=HTTP_PORT)[Fwd(1)])
        policy = Parallel(policy, Match(switch=4, dst_port=HTTP_PORT)[Fwd(1)])
        policy = Parallel(policy, Match(switch=1, dst_port=53)[Fwd(2)])
        policy = Parallel(policy, Match(switch=3, dst_port=53)[Fwd(1)])
        policy = Parallel(policy, Match(switch=4, dst_port=53)[Fwd(3)])
        # BUG: the branch for the backup server was copied from the switch-2
        # branch and the switch id was never updated to 3.
        policy = Parallel(policy, Match(switch=2, dst_port=HTTP_PORT)[Fwd(2)])
        return policy

    def build_controller(self, program: Policy):
        return PolicyController(program)

    def generate_candidates(self) -> List[PolicyRepair]:
        sample = Packet(src_ip=self.offloaded_clients[0], dst_ip=WEB_VIP,
                        dst_port=HTTP_PORT)
        goal = PolicyDeliveryGoal(packet=sample, switch=3, expected_port=2)
        repairer = PolicyRepairer(self.baseline_program())
        return repairer.repair_missing_delivery(goal)

    def _candidate_program(self, candidate: PolicyRepair) -> Policy:
        return candidate.policy


class ImperativeQ1Scenario(_LanguageScenario):
    """Q1 re-created in RubyFlow (the Trema column of Table 3)."""

    language = "trema"

    def __init__(self, offloaded_clients: Tuple[int, ...] = (101, 102)):
        super().__init__()
        self.offloaded_clients = offloaded_clients

    def baseline_program(self) -> Handler:
        body = [
            # Ingress switch S1: DNS towards S3, web towards S2, offloaded
            # clients towards S3.
            If(BinExpr("==", FieldRef("switch"), Lit(1)), [
                If(BinExpr("==", FieldRef("dst_port"), Lit(53)),
                   [self._install(1, 2), SendPacketOut(FieldRef("switch"), Lit(2))]),
                If(BinExpr("==", FieldRef("dst_port"), Lit(80)), [
                    If(BinExpr("<=", FieldRef("src_ip"),
                               Lit(max(self.offloaded_clients))),
                       [self._install(1, 2), SendPacketOut(FieldRef("switch"), Lit(2))],
                       [self._install(1, 1), SendPacketOut(FieldRef("switch"), Lit(1))]),
                ]),
            ]),
            # S2: web traffic to the primary server H1.
            If(BinExpr("==", FieldRef("switch"), Lit(2)), [
                If(BinExpr("==", FieldRef("dst_port"), Lit(80)),
                   [self._install(2, 1), SendPacketOut(FieldRef("switch"), Lit(1))]),
            ]),
            # The copied branch for the backup server: the switch id was never
            # updated from 2 to 3, so switch 3 never gets an entry (the bug).
            If(BinExpr("==", FieldRef("switch"), Lit(2)), [
                If(BinExpr("==", FieldRef("dst_port"), Lit(80)),
                   [self._install(2, 2), SendPacketOut(FieldRef("switch"), Lit(2))]),
            ]),
            # S3: DNS server.
            If(BinExpr("==", FieldRef("switch"), Lit(3)), [
                If(BinExpr("==", FieldRef("dst_port"), Lit(53)),
                   [self._install(3, 1), SendPacketOut(FieldRef("switch"), Lit(1))]),
            ]),
            # S4: local web server and DNS uplink.
            If(BinExpr("==", FieldRef("switch"), Lit(4)), [
                If(BinExpr("==", FieldRef("dst_port"), Lit(80)),
                   [self._install(4, 1), SendPacketOut(FieldRef("switch"), Lit(1))]),
                If(BinExpr("==", FieldRef("dst_port"), Lit(53)),
                   [self._install(4, 3), SendPacketOut(FieldRef("switch"), Lit(3))]),
            ]),
        ]
        return Handler("packet_in", body)

    @staticmethod
    def _install(switch: int, port: int) -> InstallFlow:
        # The flow entry is installed on whatever switch raised the PacketIn
        # (the Trema idiom ``send_flow_mod_add datapath_id``); the literal
        # switch id only appears in the surrounding condition.
        return InstallFlow(FieldRef("switch"),
                           {"src_ip": FieldRef("src_ip"),
                            "dst_port": FieldRef("dst_port")},
                           Lit(port))

    def build_controller(self, program: Handler):
        return ImperativeController(program)

    def generate_candidates(self) -> List[ImperativeRepair]:
        sample = Packet(src_ip=self.offloaded_clients[0], dst_ip=WEB_VIP,
                        dst_port=HTTP_PORT)
        goal = ImperativeDeliveryGoal(packet=sample, switch=3, expected_port=2)
        repairer = ImperativeRepairer(self.baseline_program())
        return repairer.repair_missing_delivery(goal)

    def _candidate_program(self, candidate: ImperativeRepair) -> Handler:
        return candidate.handler


def language_reports() -> List[LanguageScenarioReport]:
    """Run the Q1 re-creation for both non-NDlog languages (Table 3 input)."""
    return [PolicyQ1Scenario().diagnose(), ImperativeQ1Scenario().diagnose()]
