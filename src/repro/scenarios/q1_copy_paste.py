"""Scenario Q1: copy-and-paste error (Section 5.3, Table 2).

The operator added a backup web server H2 behind switch S3 and copied the
forwarding rule r5 (which serves S2) into a new rule r7, changing the output
port but forgetting to change the switch-id predicate ``Swi == 2``.  As a
result no flow entry for HTTP traffic is ever installed on S3 and H2 receives
no requests, while the rest of the network keeps working.

The topology extends the paper's Figure 1 with a fourth switch S4 that has
its own local web server.  S4 is what makes the overly general repair
candidates (``Swi != 2``, ``Swi >= 2``, ``Swi > 2``, deleting the predicate)
fail backtesting: they also install the wrong entry on S4 and misroute its
local HTTP traffic, exactly like the rejected candidates C-F of Table 2.
"""

from __future__ import annotations

from typing import List, Tuple

from ..controllers.ndlog_controller import FieldMapping
from ..ndlog.tuples import NDTuple
from ..sdn.packets import DNS_PORT, HTTP_PORT, Packet, PROTO_TCP, PROTO_UDP
from ..sdn.topology import Topology
from .base import NDlogScenario, Symptom


#: Field mapping: packets expose (source IP, destination port); flow entries
#: match on both and carry an output port.
Q1_MAPPING = FieldMapping(
    packet_in_fields=("src_ip", "dst_port"),
    flow_entry_layout=("src_ip", "dst_port", "out_port"))

#: The virtual IP clients send web requests to (the load-balanced service).
WEB_VIP = 99
H1, H2, DNS_SERVER, H3, H4 = 11, 12, 13, 14, 15

Q1_PROGRAM = """
// Ingress switch S1: load-balance web traffic, forward DNS towards S3.
r1 FlowTable(@Swi,Sip,Hdr,Prt) :- PacketIn(@C,Swi,Sip,Hdr), WebLoadBalancer(@C,Sip,Prt), Swi == 1, Hdr == 80.
r2 FlowTable(@Swi,Sip,Hdr,Prt) :- PacketIn(@C,Swi,Sip,Hdr), Swi == 1, Hdr == 53, Prt := 2.
// S2 hosts the primary web server H1 and relays DNS towards S3.
r5 FlowTable(@Swi,Sip,Hdr,Prt) :- PacketIn(@C,Swi,Sip,Hdr), Swi == 2, Hdr == 80, Prt := 1.
r6 FlowTable(@Swi,Sip,Hdr,Prt) :- PacketIn(@C,Swi,Sip,Hdr), Swi == 2, Hdr == 53, Prt := 2.
// r7 was copied from r5 for the new backup server on S3, but the switch-id
// predicate was not updated: the bug of Figure 2.
r7 FlowTable(@Swi,Sip,Hdr,Prt) :- PacketIn(@C,Swi,Sip,Hdr), Swi == 2, Hdr == 80, Prt := 2.
// S3 hosts the DNS server.
r8 FlowTable(@Swi,Sip,Hdr,Prt) :- PacketIn(@C,Swi,Sip,Hdr), Swi == 3, Hdr == 53, Prt := 1.
// S4 is an unrelated edge switch with its own local web server and uplink.
r9 FlowTable(@Swi,Sip,Hdr,Prt) :- PacketIn(@C,Swi,Sip,Hdr), Swi == 4, Hdr == 80, Prt := 1.
r10 FlowTable(@Swi,Sip,Hdr,Prt) :- PacketIn(@C,Swi,Sip,Hdr), Swi == 4, Hdr == 53, Prt := 3.
"""


def q1_topology(s1_clients: int = 12, s4_clients: int = 4) -> Topology:
    """Figure 1 extended with an unrelated edge switch S4."""
    topo = Topology(name="q1")
    for switch_id, name in ((1, "S1"), (2, "S2"), (3, "S3"), (4, "S4")):
        topo.add_switch(switch_id, name)
    topo.add_link(1, 1, 2, 3)      # S1 port 1 -> S2
    topo.add_link(1, 2, 3, 3)      # S1 port 2 -> S3
    topo.add_link(2, 2, 3, 4)      # S2 port 2 -> S3
    topo.add_link(4, 3, 1, 5)      # S4 port 3 -> S1 (uplink for DNS)
    topo.add_host(2, 1, role="web", name="H1", host_id=H1)
    topo.add_host(3, 2, role="web", name="H2", host_id=H2)
    topo.add_host(3, 1, role="dns", name="DNS", host_id=DNS_SERVER)
    topo.add_host(4, 1, role="web", name="H3", host_id=H3)
    topo.add_host(4, 2, role="client", name="H4", host_id=H4)
    for index in range(s1_clients):
        topo.add_host(1, 10 + index, role="client", host_id=101 + index)
    for index in range(s4_clients):
        topo.add_host(4, 10 + index, role="client", host_id=201 + index)
    return topo


def q1_static_tuples(s1_clients: int = 12, offloaded_clients: int = 2) -> List[NDTuple]:
    """Load-balancer configuration.

    The first ``offloaded_clients`` client IPs are offloaded to the new backup
    server H2 (port 2 towards S3); everyone else keeps using the primary H1
    (port 1 towards S2).  Keeping the offloaded share small mirrors the
    paper's observation that the repaired problem affects only a small
    fraction of the traffic.
    """
    tuples = []
    for index in range(s1_clients):
        ip = 101 + index
        port = 2 if index < offloaded_clients else 1
        tuples.append(NDTuple("WebLoadBalancer", ("C", ip, port)))
    return tuples


def q1_trace(topology: Topology, repetitions: int = 3) -> List[Tuple[int, Packet]]:
    """Deterministic campus-style trace: web plus DNS from both edges."""
    trace: List[Tuple[int, Packet]] = []
    s1_clients = [h for h in topology.hosts.values()
                  if h.switch_id == 1 and h.role == "client"]
    s4_clients = [h for h in topology.hosts.values()
                  if h.switch_id == 4 and h.role == "client"]
    for _ in range(repetitions):
        for client in sorted(s1_clients, key=lambda h: h.host_id):
            for sequence in range(3):
                trace.append((1, Packet(src_ip=client.ip, dst_ip=WEB_VIP,
                                        src_port=40000 + sequence,
                                        dst_port=HTTP_PORT, proto=PROTO_TCP)))
            trace.append((1, Packet(src_ip=client.ip, dst_ip=DNS_SERVER,
                                    src_port=52000, dst_port=DNS_PORT,
                                    proto=PROTO_UDP)))
        for client in sorted(s4_clients, key=lambda h: h.host_id):
            for sequence in range(5):
                trace.append((4, Packet(src_ip=client.ip, dst_ip=H3,
                                        src_port=41000 + sequence,
                                        dst_port=HTTP_PORT, proto=PROTO_TCP)))
            trace.append((4, Packet(src_ip=client.ip, dst_ip=DNS_SERVER,
                                    src_port=53000, dst_port=DNS_PORT,
                                    proto=PROTO_UDP)))
    return trace


def build_q1(s1_clients: int = 12, s4_clients: int = 4,
             repetitions: int = 3) -> NDlogScenario:
    """Build the Q1 scenario ("H2 is not receiving HTTP requests")."""
    symptom = Symptom(
        description="H2 (backup web server on S3) is not receiving HTTP requests",
        table="FlowTable",
        constraints={0: 3, 2: HTTP_PORT, 3: 2},
        node=3)
    return NDlogScenario(
        name="Q1",
        description="Copy-and-paste error in the load-balancer program",
        program_source=Q1_PROGRAM,
        mapping=Q1_MAPPING,
        topology_factory=lambda: q1_topology(s1_clients, s4_clients),
        trace_factory=lambda topo: q1_trace(topo, repetitions),
        symptom=symptom,
        static_tuples=q1_static_tuples(s1_clients),
        target_host=H2,
        reference_repair="change Swi == 2 to Swi == 3 in rule r7",
        ks_threshold=0.12)
