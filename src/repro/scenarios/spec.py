"""Spawn-safe scenario specifications.

Scenarios themselves are not picklable: they close over topology and trace
factories, hold a parsed program and cache a materialised trace.  The fork
start method sidesteps this (workers inherit the parent's objects), but
``spawn`` workers and remote machines get a fresh interpreter and need a
*description* they can rebuild the scenario from.

A :class:`ScenarioSpec` is that description: the registered scenario name,
the keyword parameters its builder was called with, and a seed (reserved for
randomised traces; the Q1-Q5 traces are deterministic).  Specs are frozen,
hashable, JSON-serialisable and reconstruct bit-identical scenarios — same
program, same trace, same baseline statistics — in any process that can
import :mod:`repro`, which is what the distributed backtest fabric
(:mod:`repro.distrib`) ships over the wire.
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


class SpecError(ValueError):
    """Raised when a spec cannot be built or decoded."""


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative (name, params, seed) handle for a registered scenario."""

    name: str
    params: Tuple[Tuple[str, object], ...] = ()
    seed: int = 0

    @classmethod
    def create(cls, name: str, params: Optional[Dict[str, object]] = None,
               seed: int = 0) -> "ScenarioSpec":
        items = tuple(sorted((params or {}).items()))
        return cls(name=name.upper(), params=items, seed=seed)

    def kwargs(self) -> Dict[str, object]:
        return dict(self.params)

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------

    def build(self):
        """Rebuild the scenario from the registry; stamps ``scenario.spec``.

        The builder receives exactly the recorded parameters; ``seed`` is
        forwarded only to builders that accept it, so deterministic scenarios
        need not grow an unused argument.
        """
        from . import SCENARIO_BUILDERS
        try:
            builder = SCENARIO_BUILDERS[self.name]
        except KeyError as exc:
            raise SpecError(
                f"unknown scenario {self.name!r}; registered: "
                f"{sorted(SCENARIO_BUILDERS)}") from exc
        kwargs = self.kwargs()
        if self.seed and "seed" not in kwargs:
            if "seed" in inspect.signature(builder).parameters:
                kwargs["seed"] = self.seed
        scenario = builder(**kwargs)
        scenario.spec = self
        return scenario

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    def to_wire(self) -> Dict[str, object]:
        return {"name": self.name, "params": self.kwargs(), "seed": self.seed}

    @classmethod
    def from_wire(cls, wire: Dict[str, object]) -> "ScenarioSpec":
        try:
            return cls.create(wire["name"], params=dict(wire.get("params") or {}),
                              seed=int(wire.get("seed", 0)))
        except (KeyError, TypeError, AttributeError) as exc:
            raise SpecError(f"malformed scenario spec: {wire!r}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_wire(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_wire(json.loads(text))
