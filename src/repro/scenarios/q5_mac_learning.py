"""Scenario Q5: incorrect MAC learning (Section 5.3, Table 6d).

The learning app on switch S9 is supposed to record, for every packet, that
the packet's *source* host is reachable through its ingress port; a second
rule then installs flow entries towards hosts whose location has been
learned.  The bug: the learning rule stores a wildcard instead of the source
address, so the controller never learns where any host — in particular H2 —
actually lives, and traffic towards it is dropped.

The repair the paper highlights (Table 6d, candidates A/G) changes the
wildcard assignment back to the source field; the "manual" alternative (I)
inserts the missing learning-table entry directly.

Note on backtesting: unlike Q1-Q4, this bug affects most of the recorded
traffic (nothing is learned at all), so the KS gate is necessarily loose for
this scenario; the discriminating signal is the effectiveness predicate
(H2 actually receives traffic) plus the KS ranking.
"""

from __future__ import annotations

from typing import List, Tuple

from ..controllers.ndlog_controller import FieldMapping
from ..ndlog.tuples import TableSchema
from ..sdn.packets import HTTP_PORT, Packet, PROTO_TCP
from ..sdn.topology import Topology
from .base import NDlogScenario, Symptom


Q5_MAPPING = FieldMapping(
    packet_in_fields=("src_ip", "dst_ip", "in_port"),
    flow_entry_layout=("src_ip", "dst_ip", "out_port"))

H2 = 21              # the host whose address is never learned
H2_PORT = 5          # the switch port H2 is attached to
SWITCH = 9

Q5_PROGRAM = """
// f1 learns host locations: it should record the packet's source address at
// the ingress port, but the buggy version stores a wildcard instead.
f1 Learned(@C,Swi,Hip,Prt) :- PacketIn(@C,Swi,Sip,Dip,Ipt), Hip := *, Prt := Ipt.
// f2 installs a flow entry towards any destination whose location is known.
f2 FlowTable(@Swi,SipP,Dip,Prt) :- PacketIn(@C,Swi,Sip,Dip,Ipt), Learned(@C,Swi,Dip,Prt), SipP := *.
"""

Q5_EXTRA_SCHEMAS = (TableSchema("Learned", ("C", "Swi", "Hip", "Prt"),
                                primary_key=("C", "Swi", "Hip")),)


def q5_topology(extra_hosts: int = 3) -> Topology:
    topo = Topology(name="q5")
    topo.add_switch(SWITCH, "S9")
    topo.add_host(SWITCH, H2_PORT, role="web", name="H2", host_id=H2)
    for index in range(extra_hosts):
        topo.add_host(SWITCH, 6 + index, role="client", host_id=22 + index)
    return topo


def q5_trace(topology: Topology, repetitions: int = 3) -> List[Tuple[int, Packet]]:
    """Every host talks to every other host; H2 both sends and receives."""
    trace: List[Tuple[int, Packet]] = []
    hosts = sorted(topology.hosts.values(), key=lambda h: h.host_id)
    for _ in range(repetitions):
        for src in hosts:
            for dst in hosts:
                if src.host_id == dst.host_id:
                    continue
                trace.append((SWITCH, Packet(
                    src_ip=src.ip, dst_ip=dst.ip, src_port=40000,
                    dst_port=HTTP_PORT, proto=PROTO_TCP,
                    src_mac=src.mac, dst_mac=dst.mac)))
    return trace


def _h2_receives_traffic(stats) -> bool:
    return stats.delivered_to(H2) > 0


def build_q5(extra_hosts: int = 3, repetitions: int = 3) -> NDlogScenario:
    """Build the Q5 scenario ("H2's address is not learned by the controller")."""
    symptom = Symptom(
        description="H2's address is never learned by the controller",
        table="Learned",
        constraints={1: SWITCH, 2: H2, 3: H2_PORT},
        node="C")
    return NDlogScenario(
        name="Q5",
        description="MAC-learning app learns a wildcard instead of the source host",
        program_source=Q5_PROGRAM,
        mapping=Q5_MAPPING,
        topology_factory=lambda: q5_topology(extra_hosts),
        trace_factory=lambda topo: q5_trace(topo, repetitions),
        symptom=symptom,
        static_tuples=(),
        extra_schemas=Q5_EXTRA_SCHEMAS,
        effective_predicate=_h2_receives_traffic,
        target_host=H2,
        reference_repair="change Hip := * to Hip := Sip in rule f1",
        ks_threshold=0.95)
