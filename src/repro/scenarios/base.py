"""Scenario infrastructure for the five case studies of Section 5.3.

A :class:`NDlogScenario` bundles everything one diagnostic case needs:

* the (buggy) controller program and its packet/tuple field mapping,
* static configuration tuples (e.g. the load-balancer table),
* a topology factory and a deterministic traffic trace,
* the symptom, expressed as a missing-tuple goal for the meta provenance
  explorer, and an effectiveness predicate for backtesting,
* bookkeeping used by the experiment harness (reference repair, name, ...).

Scenarios are pure descriptions: they build fresh topologies and controllers
on demand, so backtesting runs never contaminate each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..controllers.ndlog_controller import FieldMapping, NDlogController
from ..meta.explorer import MissingTupleGoal
from ..meta.history import HistoryIndex
from ..ndlog.ast import Program
from ..ndlog.parser import parse_program
from ..ndlog.tuples import NDTuple, TableSchema
from ..sdn.controller import RecordingController
from ..sdn.log import HistoricalLog
from ..sdn.network import NetworkSimulator, TrafficStats
from ..sdn.packets import Packet
from ..sdn.topology import Topology


@dataclass
class Symptom:
    """The operator's description of the problem (one row of Table 1)."""

    description: str
    table: str
    constraints: Dict[int, object]
    node: object = None

    def goal(self) -> MissingTupleGoal:
        return MissingTupleGoal.create(self.table, self.constraints,
                                       node=self.node,
                                       description=self.description)


class NDlogScenario:
    """A reproducible diagnostic scenario for the NDlog controller."""

    def __init__(self, name: str, description: str, program_source: str,
                 mapping: FieldMapping,
                 topology_factory: Callable[[], Topology],
                 trace_factory: Callable[[Topology], List[Tuple[int, Packet]]],
                 symptom: Symptom,
                 static_tuples: Sequence[NDTuple] = (),
                 extra_schemas: Sequence[TableSchema] = (),
                 effective_predicate: Optional[Callable[[TrafficStats], bool]] = None,
                 target_host: Optional[int] = None,
                 auto_packet_out: bool = True,
                 require_packet_out: bool = True,
                 reference_repair: str = "",
                 ks_threshold: float = 0.05):
        self.name = name
        self.description = description
        self.program_source = program_source
        self.program = parse_program(program_source, name=name)
        self.mapping = mapping
        self.topology_factory = topology_factory
        self.trace_factory = trace_factory
        self.symptom = symptom
        self.static_tuples = list(static_tuples)
        self.extra_schemas = list(extra_schemas)
        self.effective_predicate = effective_predicate
        self.target_host = target_host
        self.auto_packet_out = auto_packet_out
        self.require_packet_out = require_packet_out
        self.reference_repair = reference_repair
        self.ks_threshold = ks_threshold
        #: Spawn-safe handle (set by ``build_scenario`` / ``ScenarioSpec``):
        #: names this scenario in the builder registry so worker processes
        #: can reconstruct it without pickling closures.  ``None`` for
        #: hand-assembled scenarios, which then only support in-process and
        #: fork evaluation.
        self.spec = None
        self._trace: Optional[List[Tuple[int, Packet]]] = None

    # ------------------------------------------------------------------
    # Environment construction
    # ------------------------------------------------------------------

    def build_topology(self) -> Topology:
        return self.topology_factory()

    def build_controller(self, program: Optional[Program] = None,
                         extra_tuples: Sequence[NDTuple] = (),
                         removed_tuples: Sequence[NDTuple] = (),
                         tags: Tuple[str, ...] = (),
                         record_events: bool = False) -> NDlogController:
        removed = set(removed_tuples)
        static = [t for t in self.static_tuples if t not in removed]
        static += [t for t in extra_tuples if t not in removed]
        return NDlogController(
            program=program if program is not None else self.program,
            mapping=self.mapping,
            static_tuples=static,
            extra_schemas=self.extra_schemas,
            auto_packet_out=self.auto_packet_out,
            tags=tags,
            record_events=record_events)

    def schemas(self) -> List[TableSchema]:
        return list(self.mapping.schemas()) + list(self.extra_schemas)

    def packet_in_tuple(self, switch_id: int, packet: Packet,
                        in_port: Optional[int] = None) -> NDTuple:
        return self.mapping.packet_in_tuple_from(switch_id, packet, in_port)

    def trace(self) -> List[Tuple[int, Packet]]:
        if self._trace is None:
            self._trace = list(self.trace_factory(self.build_topology()))
        return list(self._trace)

    # ------------------------------------------------------------------
    # Diagnosis inputs
    # ------------------------------------------------------------------

    def goal(self) -> MissingTupleGoal:
        return self.symptom.goal()

    def record_history(self, trace_limit: Optional[int] = None):
        """Run the buggy program over the trace, recording everything.

        Returns ``(controller, log, stats)``: the controller's engine holds
        the derivation history; the log holds the packet history.  This is
        the "diagnostic information we already record for the provenance"
        that meta provenance and backtesting consume.
        """
        topology = self.build_topology()
        log = HistoricalLog()
        controller = self.build_controller(record_events=True)
        recording = RecordingController(controller, log=log)
        simulator = NetworkSimulator(topology, recording, log=log,
                                     require_packet_out=self.require_packet_out)
        trace = self.trace()
        if trace_limit is not None:
            trace = trace[:trace_limit]
        simulator.run_trace(trace)
        return controller, log, simulator.stats

    def history_index(self, trace_limit: Optional[int] = None) -> HistoryIndex:
        """Historical base tuples for the meta provenance explorer."""
        controller, _, _ = self.record_history(trace_limit=trace_limit)
        index = HistoryIndex.from_engine(controller.engine)
        for tup in self.static_tuples:
            index.add(tup)
        return index

    # ------------------------------------------------------------------
    # Backtesting hooks
    # ------------------------------------------------------------------

    def is_effective(self, stats: TrafficStats) -> bool:
        """Did a repaired run fix the symptom?"""
        if self.effective_predicate is not None:
            return self.effective_predicate(stats)
        if self.target_host is not None:
            return stats.delivered_to(self.target_host) > 0
        return stats.delivery_ratio() > 0

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------

    def program_line_count(self) -> int:
        return len(self.program.rules)

    def __str__(self):
        return f"Scenario {self.name}: {self.description}"
