"""Scenario Q3: uncoordinated policy update (Section 5.3, Table 6b).

A load-balancing app started offloading some clients (among them H1, source
IP 3) onto a route protected by a firewall whose white-list was never
updated: the firewall rule on switch S7 only admits web traffic with
``Sip > 3``, so the offloaded requests are silently dropped.  A known-bad
source (IP 1) must remain blocked, which is what rejects the overly
permissive repairs (``Sip > 0``, deleting the predicate).
"""

from __future__ import annotations

from typing import List, Tuple

from ..controllers.ndlog_controller import FieldMapping
from ..sdn.packets import DNS_PORT, HTTP_PORT, Packet, PROTO_TCP, PROTO_UDP
from ..sdn.topology import Topology
from .base import NDlogScenario, Symptom


Q3_MAPPING = FieldMapping(
    packet_in_fields=("src_ip", "dst_port"),
    flow_entry_layout=("src_ip", "dst_port", "out_port"))

WEB_SERVER = 20        # "H20"
DNS_SERVER = 21
OFFLOADED_CLIENT = 3   # "H1": recently offloaded onto this route
BLOCKED_SOURCE = 1     # must remain blocked by the firewall

Q3_PROGRAM = """
// Firewall + forwarding on switch S7: web traffic is admitted only from
// white-listed sources (the stale policy: Sip > 3), DNS is unrestricted.
q3fw FlowTable(@Swi,Sip,Hdr,Prt) :- PacketIn(@C,Swi,Sip,Hdr), Swi == 7, Hdr == 80, Sip > 3, Prt := 1.
q3dns FlowTable(@Swi,Sip,Hdr,Prt) :- PacketIn(@C,Swi,Sip,Hdr), Swi == 7, Hdr == 53, Prt := 2.
"""


def q3_topology() -> Topology:
    topo = Topology(name="q3")
    topo.add_switch(7, "S7")
    topo.add_host(7, 1, role="web", name="H20", host_id=WEB_SERVER)
    topo.add_host(7, 2, role="dns", name="DNS", host_id=DNS_SERVER)
    # Established clients (IPs 4-9), the offloaded client (IP 3) and the
    # blocked source (IP 1).
    for ip in range(3, 10):
        topo.add_host(7, 10 + ip, role="client", host_id=ip)
    topo.add_host(7, 25, role="client", name="blocked", host_id=BLOCKED_SOURCE)
    return topo


def q3_trace(topology: Topology, repetitions: int = 2) -> List[Tuple[int, Packet]]:
    trace: List[Tuple[int, Packet]] = []
    for _ in range(repetitions):
        for ip in range(4, 10):        # white-listed clients: heavy traffic
            for sequence in range(6):
                trace.append((7, Packet(src_ip=ip, dst_ip=WEB_SERVER,
                                        src_port=41000 + sequence,
                                        dst_port=HTTP_PORT, proto=PROTO_TCP)))
            trace.append((7, Packet(src_ip=ip, dst_ip=DNS_SERVER,
                                    src_port=52000, dst_port=DNS_PORT,
                                    proto=PROTO_UDP)))
        for sequence in range(4):      # the offloaded client: small share
            trace.append((7, Packet(src_ip=OFFLOADED_CLIENT, dst_ip=WEB_SERVER,
                                    src_port=42000 + sequence,
                                    dst_port=HTTP_PORT, proto=PROTO_TCP)))
        for sequence in range(25):     # the blocked source: must stay blocked
            trace.append((7, Packet(src_ip=BLOCKED_SOURCE, dst_ip=WEB_SERVER,
                                    src_port=43000 + sequence,
                                    dst_port=HTTP_PORT, proto=PROTO_TCP)))
    return trace


def _offloaded_client_reaches_server(stats) -> bool:
    return any(record.delivered_to == WEB_SERVER
               and record.packet.src_ip == OFFLOADED_CLIENT
               for record in stats.delivery_records)


def build_q3(repetitions: int = 2) -> NDlogScenario:
    """Build the Q3 scenario ("H20 is not receiving HTTP requests from H1")."""
    symptom = Symptom(
        description="H20 is not receiving HTTP requests from H1 (source IP 3)",
        table="FlowTable",
        constraints={0: 7, 1: OFFLOADED_CLIENT, 2: HTTP_PORT, 3: 1},
        node=7)
    return NDlogScenario(
        name="Q3",
        description="Stale firewall white-list after an uncoordinated policy update",
        program_source=Q3_PROGRAM,
        mapping=Q3_MAPPING,
        topology_factory=q3_topology,
        trace_factory=lambda topo: q3_trace(topo, repetitions),
        symptom=symptom,
        effective_predicate=_offloaded_client_reaches_server,
        target_host=WEB_SERVER,
        reference_repair="change Sip > 3 to Sip > 2 in rule q3fw",
        ks_threshold=0.06)
