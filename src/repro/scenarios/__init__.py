"""The five diagnostic case studies of Section 5.3 (Q1-Q5)."""

from typing import Callable, Dict, List

from .base import NDlogScenario, Symptom
from .q1_copy_paste import build_q1
from .q2_forwarding import build_q2
from .q3_policy_update import build_q3
from .q4_forgotten_packets import build_q4
from .q5_mac_learning import build_q5

#: Registry of scenario builders by name.
SCENARIO_BUILDERS: Dict[str, Callable[[], NDlogScenario]] = {
    "Q1": build_q1,
    "Q2": build_q2,
    "Q3": build_q3,
    "Q4": build_q4,
    "Q5": build_q5,
}


def build_scenario(name: str, **kwargs) -> NDlogScenario:
    """Build a scenario by name ("Q1" ... "Q5")."""
    try:
        builder = SCENARIO_BUILDERS[name.upper()]
    except KeyError as exc:
        raise KeyError(f"unknown scenario {name!r}; expected one of "
                       f"{sorted(SCENARIO_BUILDERS)}") from exc
    return builder(**kwargs)


def all_scenarios() -> List[NDlogScenario]:
    """Build all five scenarios (Q1-Q5) with their default parameters."""
    return [builder() for _, builder in sorted(SCENARIO_BUILDERS.items())]


__all__ = [
    "NDlogScenario", "Symptom", "SCENARIO_BUILDERS",
    "build_q1", "build_q2", "build_q3", "build_q4", "build_q5",
    "build_scenario", "all_scenarios",
]
