"""The five diagnostic case studies of Section 5.3 (Q1-Q5)."""

from typing import Callable, Dict, List

from .base import NDlogScenario, Symptom
from .q1_copy_paste import build_q1
from .q2_forwarding import build_q2
from .q3_policy_update import build_q3
from .q4_forgotten_packets import build_q4
from .q5_mac_learning import build_q5
from .spec import ScenarioSpec, SpecError

#: Registry of scenario builders by name.  Entries are what makes a scenario
#: spawn-safe: a :class:`ScenarioSpec` naming a registered scenario can be
#: rebuilt in any worker process (see :mod:`repro.scenarios.spec`).
SCENARIO_BUILDERS: Dict[str, Callable[[], NDlogScenario]] = {}


def register_scenario(name: str,
                      builder: Callable[..., NDlogScenario]) -> None:
    """Register a scenario builder under ``name`` (upper-cased).

    Registered scenarios can be named by :class:`ScenarioSpec` and therefore
    evaluated on ``spawn`` and remote workers of the distributed backtest
    fabric.  Re-registering a name replaces the previous builder.
    """
    SCENARIO_BUILDERS[name.upper()] = builder


for _name, _builder in (("Q1", build_q1), ("Q2", build_q2), ("Q3", build_q3),
                        ("Q4", build_q4), ("Q5", build_q5)):
    register_scenario(_name, _builder)
del _name, _builder


def build_scenario(name: str, **kwargs) -> NDlogScenario:
    """Build a scenario by name ("Q1" ... "Q5"), stamping its spec."""
    try:
        builder = SCENARIO_BUILDERS[name.upper()]
    except KeyError as exc:
        raise KeyError(f"unknown scenario {name!r}; expected one of "
                       f"{sorted(SCENARIO_BUILDERS)}") from exc
    scenario = builder(**kwargs)
    scenario.spec = ScenarioSpec.create(name, params=kwargs)
    return scenario


def all_scenarios() -> List[NDlogScenario]:
    """Build all five scenarios (Q1-Q5) with their default parameters."""
    return [build_scenario(name) for name in sorted(SCENARIO_BUILDERS)]


__all__ = [
    "NDlogScenario", "ScenarioSpec", "SpecError", "Symptom",
    "SCENARIO_BUILDERS", "register_scenario",
    "build_q1", "build_q2", "build_q3", "build_q4", "build_q5",
    "build_scenario", "all_scenarios",
]
