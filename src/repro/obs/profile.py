"""Opt-in per-stage cProfile capture.

Profiling is orthogonal to tracing: a :class:`StageProfiler` wraps one
pipeline stage in a ``cProfile.Profile`` and renders the hot functions as
a pstats text table.  The session stores the tables per stage name; the
CLI can additionally dump raw ``.pstats`` files for ``snakeviz``-style
tools.
"""

import cProfile
import io
import pstats
from typing import Optional

__all__ = ["StageProfiler"]


class StageProfiler:
    """Context manager capturing a cProfile for one stage."""

    def __init__(self, top: int = 25):
        self.top = top
        self.profile: Optional[cProfile.Profile] = None
        self.text: str = ""

    def __enter__(self) -> "StageProfiler":
        self.profile = cProfile.Profile()
        self.profile.enable()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self.profile is not None
        self.profile.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(self.profile, stream=buffer)
        stats.sort_stats("cumulative").print_stats(self.top)
        self.text = buffer.getvalue()

    def dump(self, path: str) -> None:
        """Write the raw profile data (``pstats`` binary format)."""
        assert self.profile is not None
        self.profile.dump_stats(path)
