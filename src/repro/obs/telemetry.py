"""The per-run telemetry bundle: one tracer + one metrics registry.

A :class:`Telemetry` object is created by the session (or a worker, seeded
from the job wire) when telemetry is enabled; everywhere else the absence
of telemetry is spelled ``None``, so disabled runs pay no construction and
no bookkeeping.

Worker flow: the coordinator puts ``telemetry.context_wire()`` on the job
wire; the worker rebuilds a telemetry bundle with
:meth:`Telemetry.from_job_wire` (same trace id, remote parent span), runs
its items, and ships ``drain_remote()`` — finished span wire dicts plus a
metrics *delta* — back on each item outcome.  The coordinator calls
:meth:`absorb` to stitch those into the session trace.
"""

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

from .export import (spans_to_chrome, spans_to_jsonl, write_chrome_trace)
from .metrics import MetricsRegistry, prometheus_text
from .trace import SpanContext, Tracer

__all__ = ["Telemetry"]


class Telemetry:
    def __init__(self, trace_id: Optional[str] = None,
                 parent: Optional[SpanContext] = None,
                 slice_packets: Optional[int] = None,
                 profile: bool = False,
                 trace_fixpoints: bool = False):
        self.tracer = Tracer(trace_id=trace_id, parent=parent)
        self.metrics = MetricsRegistry()
        self.slice_packets = slice_packets
        self.profile = profile
        self.trace_fixpoints = trace_fixpoints
        self.profiles: Dict[str, str] = {}
        self._shipped = self.metrics.snapshot()

    # -- tracing passthrough ----------------------------------------------

    @property
    def trace_id(self) -> str:
        return self.tracer.trace_id

    def span(self, name: str, span_id: Optional[str] = None, **attrs: Any):
        return self.tracer.span(name, span_id=span_id, **attrs)

    def spans(self) -> List[Dict[str, Any]]:
        return list(self.tracer.finished)

    # -- cross-process propagation ----------------------------------------

    def context_wire(self) -> Dict[str, Any]:
        """Span context + knobs for the distrib job wire."""
        context = self.tracer.context()
        wire = context.to_wire()
        if self.slice_packets is not None:
            wire["slice_packets"] = self.slice_packets
        if self.trace_fixpoints:
            wire["trace_fixpoints"] = True
        return wire

    @classmethod
    def from_job_wire(cls, wire: Dict[str, Any]) -> "Telemetry":
        return cls(parent=SpanContext.from_wire(wire),
                   slice_packets=wire.get("slice_packets"),
                   trace_fixpoints=bool(wire.get("trace_fixpoints")))

    def drain_remote(self) -> Tuple[List[Dict[str, Any]], Dict[str, list]]:
        """Spans finished + metrics accrued since the last drain (worker
        side; the pair rides the item outcome back to the coordinator)."""
        spans = self.tracer.drain()
        delta = self.metrics.delta_since(self._shipped)
        self._shipped = self.metrics.snapshot()
        return spans, delta

    def absorb(self, spans: Optional[List[Dict[str, Any]]],
               metrics_delta: Optional[Dict[str, list]]) -> None:
        """Stitch a worker's drained spans/metrics into this bundle."""
        if spans:
            self.tracer.ingest(spans)
        if metrics_delta:
            self.metrics.merge(metrics_delta)

    def fork_capture(self) -> Tuple[int, Dict[str, list]]:
        """Mark the current state in a forked child (which inherited the
        parent's already-finished spans and metrics by copy-on-write)."""
        return len(self.tracer.finished), self.metrics.snapshot()

    def fork_collect(self, mark: Tuple[int, Dict[str, list]]
                     ) -> Tuple[List[Dict[str, Any]], Dict[str, list]]:
        """Spans/metrics accrued since :meth:`fork_capture` — the only part
        of the child's telemetry that ships back to the parent."""
        spans = self.tracer.finished[mark[0]:]
        return spans, self.metrics.delta_since(mark[1])

    # -- event stamping ----------------------------------------------------

    def stamp_event(self, event):
        """Attach trace/span ids to a frozen SessionEvent (or any frozen
        dataclass with ``trace_id``/``span_id`` fields)."""
        if getattr(event, "trace_id", None):
            return event
        span_id = self.tracer.current_span_id() or ""
        try:
            return dataclasses.replace(event, trace_id=self.trace_id,
                                       span_id=span_id)
        except TypeError:
            return event

    # -- export -------------------------------------------------------------

    def chrome_trace(self) -> Dict[str, Any]:
        return spans_to_chrome(self.tracer.finished,
                               trace_id=self.trace_id)

    def write_chrome(self, path: str) -> Dict[str, Any]:
        return write_chrome_trace(self.tracer.finished, path,
                                  trace_id=self.trace_id)

    def write_jsonl(self, stream) -> int:
        return spans_to_jsonl(self.tracer.finished, stream)

    def prometheus(self) -> str:
        return prometheus_text(self.metrics.snapshot())
