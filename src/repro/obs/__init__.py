"""Observability for the repair pipeline: tracing, metrics, profiling.

The package is deliberately dependency-free (stdlib only, no imports from
the rest of ``repro``) so every layer — ndlog engine, backtesters, distrib
fabric, API session, CLI — can hook into it without import cycles.

Three pillars:

``trace``
    Span-based tracer with deterministic hierarchical span ids
    (``1``, ``1.2``, ``1.2.c3`` …) and wire-format span context so worker
    processes stitch their spans under the coordinator's trace.

``metrics``
    A registry of counters / gauges / histograms that snapshots to plain
    JSON-able dicts and merges across workers (sum counters, sum histogram
    buckets, last-write gauges).

``export``
    JSONL span logs, Chrome ``trace_event`` JSON (loadable in Perfetto /
    ``chrome://tracing``), and a Prometheus-style text dump — plus a
    strict validator for the Chrome format used by tests and CI.

``Telemetry`` bundles the three behind one object. The disabled state is
represented by ``None`` everywhere (``session.telemetry is None``,
``engine.tracer is None``), so the cost when off is a single attribute
load + ``is None`` test on coarse-grained paths and literally nothing on
per-tuple paths.
"""

from .metrics import MetricsRegistry, merge_snapshots, prometheus_text
from .profile import StageProfiler
from .export import (spans_to_chrome, spans_to_jsonl, validate_chrome_trace,
                     write_chrome_trace)
from .trace import Span, SpanContext, Tracer
from .telemetry import Telemetry

__all__ = [
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "StageProfiler",
    "Telemetry",
    "Tracer",
    "merge_snapshots",
    "prometheus_text",
    "spans_to_chrome",
    "spans_to_jsonl",
    "validate_chrome_trace",
    "write_chrome_trace",
]
