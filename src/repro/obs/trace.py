"""Span-based tracer with deterministic ids and cross-process context.

Span ids are *structural*, not random: the root span of a trace is ``"1"``,
its children are ``"1.1"``, ``"1.2"`` …, grandchildren ``"1.2.1"`` and so
on — the id of a span is fully determined by where it sits in the tree.
Two runs of the same workload therefore produce the same span ids, which
makes traces diffable and lets tests assert on structure instead of
regexes.

Cross-process propagation works the same way: the coordinator puts the
current :class:`SpanContext` on the job wire; a worker seeds its
:class:`Tracer` from that context and opens its per-item root span with an
explicit id derived from the item index (``"<parent>.c<index>"``).  Item
indexes are unique per job, so span ids never collide across workers and
every worker-side span carries the coordinator's trace id — the traces
stitch into one tree with no id allocation protocol between processes.

Timing: wall-clock epoch is sampled once per span start (``time.time``)
for cross-process alignment; durations use ``time.perf_counter``.
"""

import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Span", "SpanContext", "Tracer"]

_TRACE_SEQ = [0]
_TRACE_SEQ_LOCK = threading.Lock()


def _new_trace_id() -> str:
    """Process-unique trace id: pid + per-process sequence number."""
    with _TRACE_SEQ_LOCK:
        _TRACE_SEQ[0] += 1
        return f"{os.getpid():x}-{_TRACE_SEQ[0]:x}"


class SpanContext:
    """The propagatable part of a span: (trace id, span id)."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id

    def to_wire(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, data: Dict[str, str]) -> "SpanContext":
        return cls(trace_id=data["trace_id"], span_id=data["span_id"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanContext({self.trace_id!r}, {self.span_id!r})"


class Span:
    """One timed operation.  Created via :meth:`Tracer.span`; usable as a
    context manager.  ``attrs`` may be extended while the span is open
    (``span.set(key, value)``)."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start_wall",
                 "duration", "pid", "tid", "attrs", "_tracer", "_t0",
                 "_child_seq")

    def __init__(self, tracer: "Tracer", name: str, span_id: str,
                 parent_id: Optional[str], attrs: Dict[str, Any]):
        self.trace_id = tracer.trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_wall = time.time()
        self.duration = 0.0
        self.pid = tracer.pid
        self.tid = tracer.tid
        self.attrs = attrs
        self._tracer = tracer
        self._t0 = time.perf_counter()
        self._child_seq = 0

    def set(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def finish(self) -> None:
        self.duration = time.perf_counter() - self._t0
        self._tracer._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", repr(exc))
        self.finish()

    def to_wire(self) -> Dict[str, Any]:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id, "name": self.name,
                "start": self.start_wall, "duration": self.duration,
                "pid": self.pid, "tid": self.tid, "attrs": dict(self.attrs)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id!r}, "
                f"dur={self.duration * 1e3:.2f}ms)")


class Tracer:
    """Produces spans for one process's share of a trace.

    ``parent`` seeds the tracer from a remote :class:`SpanContext`; spans
    opened with no enclosing local span become children of that remote
    span.  ``sink`` receives each finished span wire dict (in addition to
    it being appended to :attr:`finished`).
    """

    def __init__(self, trace_id: Optional[str] = None,
                 parent: Optional[SpanContext] = None,
                 sink: Optional[Callable[[Dict[str, Any]], None]] = None):
        if parent is not None:
            trace_id = parent.trace_id
        self.trace_id = trace_id or _new_trace_id()
        self.parent = parent
        self.pid = os.getpid()
        self.tid = threading.get_ident() % 100_000
        self.sink = sink
        self.finished: List[Dict[str, Any]] = []
        self._stack: List[Span] = []
        self._root_seq = 0
        self._lock = threading.Lock()

    # -- span lifecycle ----------------------------------------------------

    def span(self, name: str, span_id: Optional[str] = None,
             **attrs: Any) -> Span:
        """Open a span as a child of the innermost open span (or of the
        remote parent context, or as a root).  Deterministic id unless an
        explicit ``span_id`` is given (used for cross-process item spans)."""
        with self._lock:
            if self._stack:
                parent_span = self._stack[-1]
                parent_id: Optional[str] = parent_span.span_id
                if span_id is None:
                    parent_span._child_seq += 1
                    span_id = f"{parent_id}.{parent_span._child_seq}"
            elif self.parent is not None:
                parent_id = self.parent.span_id
                if span_id is None:
                    self._root_seq += 1
                    span_id = f"{parent_id}.{self._root_seq}"
            else:
                parent_id = None
                if span_id is None:
                    self._root_seq += 1
                    span_id = str(self._root_seq)
            span = Span(self, name, span_id, parent_id, dict(attrs))
            self._stack.append(span)
            return span

    def _finish(self, span: Span) -> None:
        with self._lock:
            # Close any abandoned inner spans first (exception unwinding
            # without the context-manager protocol).
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            if self._stack:
                self._stack.pop()
            wire = span.to_wire()
            self.finished.append(wire)
        if self.sink is not None:
            self.sink(wire)

    # -- context & collection ---------------------------------------------

    def context(self) -> SpanContext:
        """Context of the innermost open span (for propagation)."""
        with self._lock:
            if self._stack:
                return self._stack[-1].context()
        if self.parent is not None:
            return self.parent
        return SpanContext(self.trace_id, "0")

    def current_span_id(self) -> Optional[str]:
        with self._lock:
            return self._stack[-1].span_id if self._stack else None

    def drain(self) -> List[Dict[str, Any]]:
        """Pop and return all finished span wire dicts (worker shipping)."""
        with self._lock:
            out, self.finished = self.finished, []
        return out

    def ingest(self, span_wires: List[Dict[str, Any]]) -> None:
        """Adopt spans finished elsewhere (another process) into this
        tracer's collection."""
        with self._lock:
            self.finished.extend(span_wires)


def sort_key(span_wire: Dict[str, Any]) -> Tuple:
    """Stable ordering for exported spans: by start time, then id."""
    return (span_wire.get("start", 0.0), span_wire.get("span_id", ""))
