"""Metrics registry: counters, gauges, histograms — snapshot & merge.

Instruments are looked up by ``(name, sorted label items)`` and cached, so
hot paths hold a reference to the instrument and pay one attribute-level
``+=`` per update.  Snapshots are plain JSON-able dicts; ``merge_snapshots``
folds worker snapshots into a session-level view (counters and histogram
buckets sum, gauges are last-write — distinguish workers with labels).

Prometheus-style text output is provided for the ``repro stats`` CLI and
the exporters; it is a *style* match (``name{labels} value`` lines with
``# TYPE`` headers), not a wire-exact scrape endpoint.
"""

import threading
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "merge_snapshots", "prometheus_text"]

LabelItems = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (seconds-flavoured, log-spaced).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
                   30.0, 60.0)


class Counter:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    __slots__ = ("bounds", "bucket_counts", "total", "count")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS):
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +1: +Inf bucket
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.bucket_counts[index] += 1
        self.total += value
        self.count += 1

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


def _label_items(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Registry of named, labelled instruments."""

    def __init__(self):
        self._counters: Dict[Tuple[str, LabelItems], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelItems], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelItems], Histogram] = {}
        self._lock = threading.Lock()

    # -- instrument lookup (cached) ---------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_items(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(key, Counter())
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_items(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(key, Gauge())
        return instrument

    def histogram(self, name: str,
                  buckets: Optional[Tuple[float, ...]] = None,
                  **labels: object) -> Histogram:
        key = (name, _label_items(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    key, Histogram(buckets or DEFAULT_BUCKETS))
        return instrument

    # -- snapshot / merge --------------------------------------------------

    def snapshot(self) -> Dict[str, list]:
        """JSON-able snapshot: lists of [name, labels, payload] rows."""
        with self._lock:
            counters = [[name, [list(kv) for kv in labels], c.value]
                        for (name, labels), c in sorted(self._counters.items())]
            gauges = [[name, [list(kv) for kv in labels], g.value]
                      for (name, labels), g in sorted(self._gauges.items())]
            histograms = [[name, [list(kv) for kv in labels],
                           {"bounds": list(h.bounds),
                            "bucket_counts": list(h.bucket_counts),
                            "sum": h.total, "count": h.count}]
                          for (name, labels), h
                          in sorted(self._histograms.items())]
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def merge(self, snapshot: Dict[str, list]) -> None:
        """Fold another registry's snapshot (or delta) into this one."""
        for name, labels, value in snapshot.get("counters", ()):
            if value:
                self.counter(name, **dict(labels)).inc(value)
        for name, labels, value in snapshot.get("gauges", ()):
            self.gauge(name, **dict(labels)).set(value)
        for name, labels, payload in snapshot.get("histograms", ()):
            hist = self.histogram(name, buckets=tuple(payload["bounds"]),
                                  **dict(labels))
            if list(hist.bounds) != list(payload["bounds"]):
                raise ValueError(
                    f"histogram {name!r} bucket bounds mismatch on merge")
            for i, count in enumerate(payload["bucket_counts"]):
                hist.bucket_counts[i] += count
            hist.total += payload["sum"]
            hist.count += payload["count"]

    def delta_since(self, previous: Dict[str, list]) -> Dict[str, list]:
        """Snapshot minus a previous snapshot (for incremental shipping).

        Counters and histograms subtract; gauges report current values.
        """
        current = self.snapshot()
        prev_counters = {(name, tuple(map(tuple, labels))): value
                         for name, labels, value
                         in previous.get("counters", ())}
        counters = []
        for name, labels, value in current["counters"]:
            base = prev_counters.get((name, tuple(map(tuple, labels))), 0.0)
            if value - base:
                counters.append([name, labels, value - base])
        prev_hists = {(name, tuple(map(tuple, labels))): payload
                      for name, labels, payload
                      in previous.get("histograms", ())}
        histograms = []
        for name, labels, payload in current["histograms"]:
            base = prev_hists.get((name, tuple(map(tuple, labels))))
            if base is None:
                if payload["count"]:
                    histograms.append([name, labels, payload])
                continue
            delta_counts = [c - b for c, b in zip(payload["bucket_counts"],
                                                  base["bucket_counts"])]
            if any(delta_counts):
                histograms.append([name, labels, {
                    "bounds": payload["bounds"],
                    "bucket_counts": delta_counts,
                    "sum": payload["sum"] - base["sum"],
                    "count": payload["count"] - base["count"]}])
        return {"counters": counters, "gauges": current["gauges"],
                "histograms": histograms}


def merge_snapshots(snapshots: Iterable[Dict[str, list]]) -> Dict[str, list]:
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge(snapshot)
    return registry.snapshot()


def _format_labels(labels: List[list]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


def prometheus_text(snapshot: Dict[str, list]) -> str:
    """Prometheus exposition-style text for a registry snapshot."""
    lines: List[str] = []
    seen_types: Dict[str, str] = {}

    def type_header(name: str, kind: str) -> None:
        if seen_types.get(name) != kind:
            lines.append(f"# TYPE {name} {kind}")
            seen_types[name] = kind

    for name, labels, value in snapshot.get("counters", ()):
        type_header(name, "counter")
        lines.append(f"{name}{_format_labels(labels)} {value:g}")
    for name, labels, value in snapshot.get("gauges", ()):
        type_header(name, "gauge")
        lines.append(f"{name}{_format_labels(labels)} {value:g}")
    for name, labels, payload in snapshot.get("histograms", ()):
        type_header(name, "histogram")
        cumulative = 0
        for bound, count in zip(payload["bounds"],
                                payload["bucket_counts"]):
            cumulative += count
            bucket_labels = labels + [["le", f"{bound:g}"]]
            lines.append(
                f"{name}_bucket{_format_labels(bucket_labels)} {cumulative}")
        cumulative += payload["bucket_counts"][-1]
        lines.append(
            f"{name}_bucket{_format_labels(labels + [['le', '+Inf']])} "
            f"{cumulative}")
        lines.append(f"{name}_sum{_format_labels(labels)} "
                     f"{payload['sum']:g}")
        lines.append(f"{name}_count{_format_labels(labels)} "
                     f"{payload['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
