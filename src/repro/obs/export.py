"""Exporters: JSONL span logs and Chrome ``trace_event`` JSON.

The Chrome exporter emits *duration events* — nested ``ph: "B"`` /
``ph: "E"`` pairs — grouped per ``(pid, tid)`` track, which is what
Perfetto and ``chrome://tracing`` load directly.  Nesting is guaranteed by
construction: spans are arranged into a tree by ``parent_id`` and each
track is emitted by pre-order walk (``B`` on entry, ``E`` on exit), so a
track's event stream is always a well-formed bracket sequence regardless
of clock skew between processes.

``validate_chrome_trace`` is the strict schema check used by tests and the
CI smoke step: required keys on every event, matching well-nested B/E
pairs per track, and process-name metadata for every pid.
"""

import json
from typing import Any, Dict, IO, Iterable, List, Tuple

from .trace import sort_key

__all__ = ["spans_to_chrome", "spans_to_jsonl", "validate_chrome_trace",
           "write_chrome_trace"]


def spans_to_jsonl(spans: Iterable[Dict[str, Any]], stream: IO[str]) -> int:
    """Write one JSON line per span wire dict; returns the line count."""
    count = 0
    for span in sorted(spans, key=sort_key):
        stream.write(json.dumps(span, sort_keys=True) + "\n")
        count += 1
    return count


def _span_tree(spans: List[Dict[str, Any]]):
    """Group spans into per-(pid, tid) tracks and parent->children maps.

    A span whose parent lives on a *different* track (another process, or
    a remote context with no exported span) becomes a root of its own
    track — that is exactly the cross-process stitch point.
    """
    by_id = {span["span_id"]: span for span in spans}
    tracks: Dict[Tuple[int, int], Dict[str, Any]] = {}
    for span in spans:
        track_key = (span.get("pid", 0), span.get("tid", 0))
        track = tracks.setdefault(track_key, {"roots": [], "children": {}})
        parent = by_id.get(span.get("parent_id"))
        if parent is not None and (parent.get("pid", 0),
                                   parent.get("tid", 0)) == track_key:
            track["children"].setdefault(parent["span_id"], []).append(span)
        else:
            track["roots"].append(span)
    return tracks


def spans_to_chrome(spans: Iterable[Dict[str, Any]],
                    trace_id: str = "") -> Dict[str, Any]:
    """Render span wire dicts as a Chrome ``trace_event`` payload."""
    span_list = sorted(spans, key=sort_key)
    events: List[Dict[str, Any]] = []
    pids = sorted({span.get("pid", 0) for span in span_list})
    for pid in pids:
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "args": {"name": f"repro pid {pid}"}})
    tracks = _span_tree(span_list)

    def emit(span: Dict[str, Any], children: Dict[str, list],
             pid: int, tid: int) -> None:
        start_us = span["start"] * 1e6
        end_us = start_us + span["duration"] * 1e6
        args = dict(span.get("attrs") or {})
        args["trace_id"] = span["trace_id"]
        args["span_id"] = span["span_id"]
        if span.get("parent_id"):
            args["parent_span_id"] = span["parent_id"]
        events.append({"ph": "B", "name": span["name"], "cat": "repro",
                       "ts": start_us, "pid": pid, "tid": tid,
                       "args": args})
        kids = sorted(children.get(span["span_id"], ()), key=sort_key)
        for child in kids:
            # Clamp children into the parent window so the B/E brackets
            # stay consistent with the timestamps viewers draw.
            emit(child, children, pid, tid)
        events.append({"ph": "E", "name": span["name"], "cat": "repro",
                       "ts": max(end_us, start_us), "pid": pid, "tid": tid})

    for (pid, tid), track in sorted(tracks.items()):
        for root in sorted(track["roots"], key=sort_key):
            emit(root, track["children"], pid, tid)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    if trace_id:
        payload["otherData"] = {"trace_id": trace_id}
    return payload


def write_chrome_trace(spans: Iterable[Dict[str, Any]], path: str,
                       trace_id: str = "") -> Dict[str, Any]:
    payload = spans_to_chrome(spans, trace_id=trace_id)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return payload


def validate_chrome_trace(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Strict schema check for a Chrome trace_event payload.

    Raises ``ValueError`` on any malformation; returns a summary dict
    (``pids``, ``tids``, ``span_count``, ``names``) on success.
    """
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("not a Chrome trace: missing 'traceEvents'")
    events = payload["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty list")
    stacks: Dict[Tuple[Any, Any], List[str]] = {}
    named_pids = set()
    pids, tids, names = set(), set(), set()
    span_count = 0
    for event in events:
        for key in ("ph", "name", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event missing required key {key!r}: "
                                 f"{event!r}")
        ph = event["ph"]
        if ph == "M":
            if event["name"] == "process_name":
                named_pids.add(event["pid"])
            continue
        if "ts" not in event:
            raise ValueError(f"non-metadata event missing 'ts': {event!r}")
        pids.add(event["pid"])
        tids.add((event["pid"], event["tid"]))
        track = (event["pid"], event["tid"])
        stack = stacks.setdefault(track, [])
        if ph == "B":
            names.add(event["name"])
            stack.append(event["name"])
            span_count += 1
        elif ph == "E":
            if not stack:
                raise ValueError(f"unmatched 'E' event on track {track}: "
                                 f"{event['name']!r}")
            opened = stack.pop()
            if event.get("name") and event["name"] != opened:
                raise ValueError(
                    f"mis-nested B/E pair on track {track}: opened "
                    f"{opened!r}, closed {event['name']!r}")
        else:
            raise ValueError(f"unsupported event phase {ph!r}")
    for track, stack in stacks.items():
        if stack:
            raise ValueError(f"unclosed 'B' events on track {track}: "
                             f"{stack!r}")
    missing = pids - named_pids
    if missing:
        raise ValueError(f"pids without process_name metadata: "
                         f"{sorted(missing)}")
    if span_count == 0:
        raise ValueError("trace contains no duration events")
    return {"pids": sorted(pids), "tids": sorted(tids),
            "span_count": span_count, "names": sorted(names)}
