"""``python -m repro`` — the command-line face of the repair pipeline.

Subcommands (all built on :mod:`repro.api`):

* ``repro repair Q1`` — run the full Diagnose → Generate → Backtest →
  Rank pipeline and print the surviving repair suggestions.
* ``repro backtest Q1`` — same pipeline, but print the full candidate
  verdict table (every backtested candidate with its KS statistic).
* ``repro bench`` — time the pipeline stages for one scenario a few
  times over (a CLI-sized slice of the Figure 9a breakdown).
* ``repro worker --connect HOST:PORT`` — join a socket coordinator as a
  remote backtest worker (alias of the ``repro-worker`` entry point).
* ``repro scenarios list`` — the registered scenario catalogue.
* ``repro trace Q1 --out trace.json`` — run the pipeline with telemetry
  on and write a Chrome ``trace_event`` file (Perfetto-loadable).
* ``repro stats Q1`` — run the pipeline and print the consolidated
  metrics registry as Prometheus-style text.
* ``repro events summarize run.jsonl`` — per-stage and per-candidate
  timing plus veto/abort tables from a ``--events`` JSONL log.

Every run-shaped command accepts ``--config FILE`` (a JSON
:class:`~repro.api.RepairConfig`) plus per-knob overrides, streams live
progress from the session event bus to stderr (``--quiet`` silences it),
writes machine-readable event logs with ``--events FILE``, and with
``--json`` prints the final report as JSON on stdout.  Telemetry flags
(``--trace FILE``, ``--stats FILE``, ``--profile``, ``--trace-slices``,
``--trace-fixpoints``) switch the observability layer on for any
run-shaped command.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import Counter
from dataclasses import replace as _dc_replace
from typing import List, Optional

from .api import (EventBus, JsonlEventWriter, RepairConfig, RepairSession,
                  SessionEvent, TelemetryConfig)
from .backtest.abort import EarlyAbortPolicy
from .backtest.ranking import format_table
from .scenarios import SCENARIO_BUILDERS, build_scenario


def _add_config_options(parser: argparse.ArgumentParser) -> None:
    """Options mirroring RepairConfig knobs (None = keep config default)."""
    run = parser.add_argument_group("pipeline configuration")
    run.add_argument("--config", metavar="FILE",
                     help="JSON RepairConfig to start from "
                          "(CLI flags override it)")
    run.add_argument("--max-candidates", type=int, metavar="N",
                     help="candidate budget for the explorer")
    multiquery = run.add_mutually_exclusive_group()
    multiquery.add_argument("--multiquery", action="store_true", default=None,
                            help="use the multi-query (shared-trunk) "
                                 "backtester")
    multiquery.add_argument("--no-multiquery", dest="multiquery",
                            action="store_false",
                            help="force the sequential backtester")
    run.add_argument("--trace-limit", type=int, metavar="N",
                     help="replay only the first N trace packets")
    run.add_argument("--ks-threshold", type=float, metavar="X",
                     help="KS acceptance threshold (default: scenario's)")
    run.add_argument("--max-packet-in-growth", type=float, metavar="X",
                     help="reject repairs growing PacketIn load beyond X×")
    run.add_argument("--batch-size", type=int, metavar="N", dest="batch_size",
                     help="replay the trace in bursts of N packets")
    warm = run.add_mutually_exclusive_group()
    warm.add_argument("--cold", dest="warm", action="store_false",
                      default=None,
                      help="disable warm-engine candidate switching")
    warm.add_argument("--warm", dest="warm", action="store_true",
                      help="force warm-engine candidate switching")
    sched = parser.add_argument_group("scheduling")
    sched.add_argument("--workers", type=int, metavar="N",
                       help="worker count for candidate evaluation")
    sched.add_argument("--transport", choices=["inprocess", "spawn", "socket"],
                       help="evaluate candidates through the distributed "
                            "fabric instead of the local path")
    sched.add_argument("--port", type=int,
                       help="listen port for --transport socket")
    sched.add_argument("--fault-plan", metavar="FILE", dest="fault_plan",
                       help="JSON FaultPlan injected into the transport "
                            "(deterministic chaos reproduction)")
    sched.add_argument("--abort-check-every", type=int, metavar="N",
                       help="enable early abort, checking every N packets")
    sched.add_argument("--abort-ks-slack", type=float, metavar="X",
                       help="slack multiplier for the heuristic KS abort")
    out = parser.add_argument_group("output")
    out.add_argument("--json", action="store_true",
                     help="print the final report as JSON on stdout")
    out.add_argument("--events", metavar="FILE",
                     help="append the session event stream to FILE as JSONL")
    out.add_argument("--quiet", action="store_true",
                     help="no live progress on stderr")
    obs = parser.add_argument_group(
        "telemetry", "any of these switches the observability layer on")
    obs.add_argument("--trace", metavar="FILE",
                     help="write a Chrome trace_event file of the run "
                          "(load in Perfetto or chrome://tracing)")
    obs.add_argument("--stats", metavar="FILE",
                     help="write Prometheus-style metrics text "
                          "('-' for stdout)")
    obs.add_argument("--profile", action="store_true", default=None,
                     help="capture a cProfile per pipeline stage "
                          "(top tables on stderr)")
    obs.add_argument("--trace-slices", type=int, metavar="N",
                     help="emit a replay.slice span every N replayed packets")
    obs.add_argument("--trace-fixpoints", action="store_true", default=None,
                     help="span every engine fixpoint (verbose; deep dives)")


def _config_from_args(args, require_scenario: bool = True) -> RepairConfig:
    """Start from --config (or defaults) and fold in the CLI overrides.

    The scenario may come from either side: an explicit name on the
    command line wins, otherwise the --config file's ``scenario`` drives
    the run.
    """
    config = (RepairConfig.from_file(args.config) if args.config
              else RepairConfig())
    updates = {}
    if getattr(args, "scenario", None):
        from .scenarios.spec import ScenarioSpec
        updates["scenario"] = ScenarioSpec.create(args.scenario)
    elif require_scenario and config.scenario is None:
        print("repro: no scenario specified (name one on the command line "
              "or in the --config file)", file=sys.stderr)
        raise SystemExit(2)
    if args.max_candidates is not None:
        updates["max_candidates"] = args.max_candidates
    if args.multiquery is not None:
        updates["multiquery"] = args.multiquery
    if args.trace_limit is not None:
        updates["trace_limit"] = args.trace_limit
    if args.ks_threshold is not None:
        updates["ks_threshold"] = args.ks_threshold
    if args.max_packet_in_growth is not None:
        updates["max_packet_in_growth"] = args.max_packet_in_growth
    if args.batch_size is not None:
        updates["replay_batch_size"] = args.batch_size
    if args.warm is not None:
        updates["warm_engine"] = args.warm
    if args.workers is not None:
        updates["workers"] = args.workers
    if args.transport is not None:
        updates["transport"] = args.transport
    transport_options = dict(config.transport_options)
    if args.port is not None:
        transport_options["port"] = args.port
    if getattr(args, "fault_plan", None):
        from .distrib.faults import FaultPlan
        # Stored as its wire dict so the folded config stays JSON-able;
        # the transport coerces it back into a FaultPlan.
        transport_options["fault_plan"] = \
            FaultPlan.from_file(args.fault_plan).to_wire()
    if transport_options != config.transport_options:
        updates["transport_options"] = transport_options
    if args.abort_check_every is not None or args.abort_ks_slack is not None:
        base = config.abort or EarlyAbortPolicy()
        updates["abort"] = EarlyAbortPolicy(
            check_every=(args.abort_check_every
                         if args.abort_check_every is not None
                         else base.check_every),
            max_packet_in_growth=base.max_packet_in_growth,
            ks_slack=(args.abort_ks_slack if args.abort_ks_slack is not None
                      else base.ks_slack),
            min_fraction=base.min_fraction)
    telemetry_updates = {}
    if getattr(args, "profile", None):
        telemetry_updates["profile"] = True
    if getattr(args, "trace_slices", None) is not None:
        telemetry_updates["slice_packets"] = args.trace_slices
    if getattr(args, "trace_fixpoints", None):
        telemetry_updates["trace_fixpoints"] = True
    if (telemetry_updates or getattr(args, "trace", None)
            or getattr(args, "stats", None)
            or getattr(args, "force_telemetry", False)):
        base_telemetry = config.telemetry or TelemetryConfig()
        updates["telemetry"] = _dc_replace(base_telemetry, enabled=True,
                                           **telemetry_updates)
    return config.with_updates(**updates) if updates else config


class _LiveRenderer:
    """Event-bus subscriber printing one progress line per event."""

    def __init__(self, stream):
        self.stream = stream

    def __call__(self, event: SessionEvent) -> None:
        line = self._format(event)
        if line is not None:
            print(line, file=self.stream, flush=True)

    def _format(self, event: SessionEvent) -> Optional[str]:
        kind = event.kind
        if kind == "session_started":
            return (f"== {event.scenario}: {event.symptom}\n"
                    f"   stages: {' -> '.join(event.stages)}")
        if kind == "stage_started":
            return f"-- {event.stage} ..."
        if kind == "stage_finished":
            return f"-- {event.stage} done in {event.elapsed_seconds:.2f}s"
        if kind == "candidate_found":
            return (f"   candidate {event.index}/{event.total} "
                    f"[cost {event.cost:.1f}] {event.description}")
        if kind == "backtest_progress":
            verdict = "PASS" if event.accepted else "FAIL"
            return (f"   backtest {event.done}/{event.total} {verdict} "
                    f"KS={event.ks_statistic:.4f} {event.description}")
        if kind == "candidate_aborted":
            return f"   aborted: {event.description} ({event.note})"
        if kind == "candidate_vetoed":
            return f"   vetoed ({event.reason}): {event.description}"
        if kind == "candidate_quarantined":
            return (f"   quarantined ({event.reason}, "
                    f"{event.attempts} attempts): {event.description}")
        if kind == "fabric_fault_stats":
            degraded = ", degraded to serial" if event.degraded else ""
            return (f"   fabric recovery: {event.worker_restarts} worker "
                    f"restart(s), {event.job_retries} retry(ies)"
                    f"{' [' + event.retry_reasons + ']' if event.retry_reasons else ''}, "
                    f"{event.quarantined} quarantined, "
                    f"{event.frame_errors} frame error(s){degraded}")
        if kind == "warm_engine_stats":
            return (f"   warm engine: {event.hits} hits, "
                    f"{event.fallbacks} cold fallbacks; "
                    f"static analysis: {event.vetoed} vetoed, "
                    f"probe {event.probe_hits}/"
                    f"{event.probe_hits + event.probe_misses} inert")
        if kind == "session_finished":
            return (f"== {event.scenario}: {event.generated} candidates, "
                    f"{event.surviving} survived "
                    f"({event.elapsed_seconds:.2f}s)")
        return None


def _emit_telemetry(session, args) -> None:
    """Write the run's trace/metrics/profile artifacts the flags asked for."""
    telemetry = session.telemetry
    if telemetry is None:
        return
    trace_path = getattr(args, "trace", None)
    if trace_path:
        telemetry.write_chrome(trace_path)
        if not args.quiet:
            print(f"-- trace {telemetry.trace_id}: "
                  f"{len(telemetry.tracer.finished)} spans -> {trace_path}",
                  file=sys.stderr)
    stats_path = getattr(args, "stats", None)
    if stats_path:
        text = telemetry.prometheus()
        if stats_path == "-":
            sys.stdout.write(text)
        else:
            with open(stats_path, "w", encoding="utf-8") as handle:
                handle.write(text)
    if getattr(args, "profile", None) and telemetry.profiles:
        for stage, table in telemetry.profiles.items():
            print(f"-- profile: {stage}\n{table}", file=sys.stderr)


def _run_session(args) -> "tuple":
    """Build the configured session from CLI args and run it."""
    config = _config_from_args(args)
    events = EventBus()
    log_handle = None
    if args.events:
        log_handle = open(args.events, "a", encoding="utf-8")
        events.subscribe(JsonlEventWriter(log_handle))
    if not args.quiet:
        events.subscribe(_LiveRenderer(sys.stderr))
    session = RepairSession(config, events=events)
    try:
        report = session.run()
    finally:
        if log_handle is not None:
            log_handle.close()
    _emit_telemetry(session, args)
    return session, report


def _cmd_repair(args) -> int:
    session, report = _run_session(args)
    suggestions = report.suggestions()
    if args.json:
        print(json.dumps(report.to_wire(), indent=2, sort_keys=True))
        return 0 if suggestions else 2
    print(report.summary())
    if not suggestions:
        print("no repair survived backtesting", file=sys.stderr)
        return 2
    best = suggestions[0].candidate
    print(f"\nOperator's pick: {best.description}")
    reference = getattr(session.scenario, "reference_repair", None)
    if reference:
        print(f"Reference repair from the paper: {reference}")
    return 0


def _cmd_backtest(args) -> int:
    _, report = _run_session(args)
    if args.json:
        print(json.dumps(report.to_wire(), indent=2, sort_keys=True))
        return 0
    print(format_table(report.backtest.results))
    generated, surviving = report.counts()
    print(f"\n{generated} candidates backtested over "
          f"{report.backtest.packet_count} packets, {surviving} accepted")
    return 0


def _cmd_bench(args) -> int:
    if args.repeat < 1:
        print("repro: --repeat must be >= 1", file=sys.stderr)
        return 2
    config = _config_from_args(args, require_scenario=False)
    if config.scenario is None:
        from .scenarios.spec import ScenarioSpec
        config = config.with_updates(scenario=ScenarioSpec.create("Q1"))
    log_handle = (open(args.events, "a", encoding="utf-8") if args.events
                  else None)
    rows = []
    try:
        for _ in range(args.repeat):
            events = EventBus(keep_history=False)
            if log_handle is not None:
                events.subscribe(JsonlEventWriter(log_handle))
            if not args.quiet:
                events.subscribe(_LiveRenderer(sys.stderr))
            session = RepairSession(config, events=events)
            session.run()
            rows.append(dict(session.stage_seconds))
    finally:
        if log_handle is not None:
            log_handle.close()
    scenario_name = config.scenario.name
    stages = list(rows[0])
    if args.json:
        print(json.dumps({"scenario": scenario_name, "runs": rows},
                         indent=2, sort_keys=True))
        return 0
    print(f"pipeline stage timings for {scenario_name} "
          f"(best of {args.repeat}):")
    for stage in stages:
        best = min(row[stage] for row in rows)
        print(f"  {stage:10s} {best * 1000.0:9.1f} ms")
    total = min(sum(row.values()) for row in rows)
    print(f"  {'total':10s} {total * 1000.0:9.1f} ms")
    return 0


def _cmd_lint(args) -> int:
    """Statically analyse a program (and optionally vet candidates).

    The target is either a registered scenario name — linted with its
    schemas and static base data — or a path to an ``.ndlog`` source file.
    Exit status: 0 when the program lints clean, 1 when there are
    findings, 2 for unreadable/unparseable input.
    """
    from .analysis import CandidateVetter, lint_program, lint_scenario
    from .ndlog.errors import ParseError
    from .ndlog.parser import parse_program

    target = args.target
    scenario = None
    if target.upper() in SCENARIO_BUILDERS:
        scenario = build_scenario(target.upper())
        source_name = target.upper()
        findings = lint_scenario(scenario)
    else:
        try:
            with open(target, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            print(f"repro lint: cannot read {target}: {exc}", file=sys.stderr)
            return 2
        source_name = target
        try:
            program = parse_program(source, name=target)
        except ParseError as exc:
            print(f"{target}:{exc.line}:{exc.column}: error: (parse) "
                  f"{exc.message}", file=sys.stderr)
            return 2
        findings = lint_program(program)

    vet_rows = []
    if args.candidates:
        if scenario is None:
            print("repro lint: --candidates requires a scenario target "
                  "(schemas and base data)", file=sys.stderr)
            return 2
        from .repair.candidates import candidate_from_wire
        with open(args.candidates, "r", encoding="utf-8") as handle:
            wires = json.load(handle)
        mapping = scenario.mapping
        vetter = CandidateVetter(
            scenario.program,
            schemas={s.name: s for s in scenario.schemas()},
            static_tuples=scenario.static_tuples,
            event_tables={mapping.packet_in_table},
            flow_table=mapping.flow_table)
        for wire in wires:
            candidate = candidate_from_wire(wire)
            verdict = vetter.vet_candidate(candidate)
            vet_rows.append((candidate, verdict))

    if args.json:
        print(json.dumps({
            "target": source_name,
            "clean": not findings,
            "findings": [finding.as_dict() for finding in findings],
            "candidates": [
                {"description": candidate.description,
                 "candidate_id": candidate.candidate_id,
                 "verdict": verdict.verdict,
                 "reason": verdict.reason,
                 "findings": [f.as_dict() for f in verdict.findings]}
                for candidate, verdict in vet_rows],
        }, indent=2, sort_keys=True))
        return 1 if findings else 0

    for finding in findings:
        print(finding.render(source_name))
    for candidate, verdict in vet_rows:
        label = candidate.description or candidate.candidate_id
        print(f"{source_name}: candidate {label}: {verdict.describe()}")
    if findings:
        errors = sum(1 for f in findings if f.severity == "error")
        print(f"{source_name}: {len(findings)} finding(s), "
              f"{errors} error(s)", file=sys.stderr)
        return 1
    if not args.quiet:
        print(f"{source_name}: clean", file=sys.stderr)
    return 0


def _cmd_trace(args) -> int:
    """Run the pipeline with tracing on and write a Chrome trace file."""
    args.trace = args.trace or args.out
    session, _ = _run_session(args)
    telemetry = session.telemetry
    from .obs import validate_chrome_trace
    info = validate_chrome_trace(telemetry.chrome_trace())
    if args.json:
        print(json.dumps({
            "trace_id": telemetry.trace_id,
            "file": args.trace,
            "spans": info["span_count"],
            "pids": sorted(info["pids"]),
            "names": sorted(info["names"]),
        }, indent=2, sort_keys=True))
        return 0
    print(f"trace {telemetry.trace_id}: {info['span_count']} spans over "
          f"{len(info['pids'])} process(es) -> {args.trace}")
    by_name = Counter()
    for span in telemetry.tracer.finished:
        by_name[span["name"]] += 1
    for name, count in sorted(by_name.items()):
        print(f"  {name:20s} {count:5d}")
    return 0


def _cmd_stats(args) -> int:
    """Run the pipeline with metrics on and print the registry."""
    args.force_telemetry = True
    if not args.stats and not args.json:
        args.stats = "-"
    session, _ = _run_session(args)
    if args.json:
        print(json.dumps(session.telemetry.metrics.snapshot(),
                         indent=2, sort_keys=True))
    return 0


def _read_event_log(path):
    from .api import event_from_wire
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(event_from_wire(json.loads(line)))
    return events


def _summarize_sessions(events):
    """Group a (possibly multi-run) event log into per-session summaries."""
    sessions = []
    current = None
    for event in events:
        if event.kind == "session_started" or current is None:
            current = {"scenario": getattr(event, "scenario", ""),
                       "symptom": getattr(event, "symptom", ""),
                       "trace_id": event.trace_id,
                       "stages": [], "candidates": [], "vetoes": [],
                       "aborts": [], "finished": None}
            sessions.append(current)
        if event.trace_id and not current["trace_id"]:
            current["trace_id"] = event.trace_id
        kind = event.kind
        if kind == "stage_finished":
            current["stages"].append((event.stage, event.elapsed_seconds))
        elif kind == "backtest_progress":
            current["candidates"].append(event)
        elif kind == "candidate_vetoed":
            current["vetoes"].append(event)
        elif kind == "candidate_aborted":
            current["aborts"].append(event)
        elif kind == "session_finished":
            current["finished"] = event
    return sessions


def _cmd_events_summarize(args) -> int:
    """Digest a ``--events`` JSONL log into timing and verdict tables."""
    try:
        events = _read_event_log(args.file)
    except OSError as exc:
        print(f"repro events: cannot read {args.file}: {exc}",
              file=sys.stderr)
        return 2
    except (ValueError, KeyError) as exc:
        print(f"repro events: malformed event log {args.file}: {exc}",
              file=sys.stderr)
        return 2
    if not events:
        print(f"repro events: {args.file} holds no events", file=sys.stderr)
        return 2
    sessions = _summarize_sessions(events)
    if args.json:
        print(json.dumps([{
            "scenario": s["scenario"],
            "trace_id": s["trace_id"],
            "stages": [{"stage": name, "seconds": secs}
                       for name, secs in s["stages"]],
            "candidates": [{"description": c.description,
                            "accepted": c.accepted,
                            "ks_statistic": c.ks_statistic,
                            "elapsed_seconds": c.elapsed_seconds,
                            "aborted": c.aborted} for c in s["candidates"]],
            "vetoes": [{"description": v.description, "reason": v.reason}
                       for v in s["vetoes"]],
            "aborts": [{"description": a.description, "note": a.note}
                       for a in s["aborts"]],
        } for s in sessions], indent=2, sort_keys=True))
        return 0
    for number, summary in enumerate(sessions, 1):
        title = summary["scenario"] or "(unknown scenario)"
        trace = (f" [trace {summary['trace_id']}]"
                 if summary["trace_id"] else "")
        print(f"== session {number}: {title}{trace}")
        total = sum(secs for _, secs in summary["stages"]) or 0.0
        if summary["stages"]:
            print("   stage timing:")
            for name, secs in summary["stages"]:
                share = (100.0 * secs / total) if total else 0.0
                print(f"     {name:10s} {secs:8.3f}s  {share:5.1f}%")
            print(f"     {'total':10s} {total:8.3f}s")
        candidates = summary["candidates"]
        if candidates:
            accepted = sum(1 for c in candidates if c.accepted)
            print(f"   candidates: {len(candidates)} backtested, "
                  f"{accepted} accepted, {len(summary['vetoes'])} vetoed, "
                  f"{len(summary['aborts'])} aborted")
            slowest = sorted(candidates, key=lambda c: -c.elapsed_seconds)
            print("   slowest candidates:")
            for candidate in slowest[:args.top]:
                verdict = "PASS" if candidate.accepted else "FAIL"
                print(f"     {candidate.elapsed_seconds:8.3f}s {verdict} "
                      f"KS={candidate.ks_statistic:.4f} "
                      f"{candidate.description}")
        if summary["vetoes"]:
            print("   vetoes by reason:")
            reasons = Counter(v.reason for v in summary["vetoes"])
            for reason, count in reasons.most_common():
                print(f"     {count:4d}  {reason}")
        if summary["aborts"]:
            print("   aborted candidates:")
            for abort in summary["aborts"]:
                print(f"     {abort.description} ({abort.note})")
    return 0


def _cmd_worker(args) -> int:
    from .distrib.worker import main as worker_main
    return worker_main(["--connect", args.connect])


class _WireJsonlLog:
    """JSONL sink for already-wire-format event dicts (serve --events)."""

    def __init__(self, stream):
        self.stream = stream

    def __call__(self, wire) -> None:
        self.stream.write(json.dumps(wire, sort_keys=True, default=str) + "\n")
        self.stream.flush()

    def sync(self) -> None:
        self.stream.flush()
        try:
            os.fsync(self.stream.fileno())
        except (AttributeError, OSError, ValueError):
            pass


def _cmd_serve(args) -> int:
    """Run the multi-tenant repair service (daemon + HTTP front door)."""
    import signal
    import threading

    from .service import RepairServiceDaemon, ServiceHTTPServer

    plan = None
    if args.fault_plan:
        from .distrib.faults import FaultPlan
        plan = FaultPlan.from_file(args.fault_plan)
    log_handle = on_event = None
    if args.events:
        log_handle = open(args.events, "a", encoding="utf-8")
        on_event = _WireJsonlLog(log_handle)
    daemon = RepairServiceDaemon(workers=args.workers,
                                 host=args.daemon_host,
                                 port=args.daemon_port,
                                 spawn_workers=not args.no_spawn_workers,
                                 fault_plan=plan,
                                 on_event=on_event)
    daemon.start()
    server = ServiceHTTPServer((args.host, args.port), daemon,
                               quiet=args.quiet)
    stop = threading.Event()

    def _request_stop(signum, frame):
        stop.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, _request_stop)
        except (ValueError, OSError):
            pass
    serving = threading.Thread(target=server.serve_forever, daemon=True)
    serving.start()
    worker_host, worker_port = daemon.address
    print(f"repro serve: HTTP on {server.url} "
          f"(workers connect to {worker_host}:{worker_port})", flush=True)
    try:
        while not stop.is_set():
            stop.wait(0.2)
    except KeyboardInterrupt:
        pass
    print("repro serve: draining...", flush=True)
    server.shutdown()
    daemon.stop(grace=args.grace)
    if log_handle is not None:
        log_handle.close()
    print("repro serve: stopped", flush=True)
    return 0


def _format_service_session(wire) -> str:
    """Human-readable view of a GET /sessions/<id> wire."""
    lines = [f"session {wire.get('id')} [{wire.get('tenant')}] "
             f"{wire.get('scenario')}: {wire.get('state')}"
             + (f" ({wire.get('error')})" if wire.get("error") else "")]
    report = wire.get("report")
    if report:
        lines.append(f"  generated {report.get('generated')} candidates, "
                     f"{report.get('surviving')} survived backtesting")
        for description in report.get("suggestions", []):
            lines.append(f"    suggested: {description}")
    return "\n".join(lines)


def _cmd_submit(args) -> int:
    """Submit a repair run to a ``repro serve`` front door over HTTP."""
    from .service.client import ClientError, ServiceClient

    config = _config_from_args(args)
    client = ServiceClient(args.url)
    try:
        ack = client.submit(config, tenant=args.tenant)
        session_id = ack["id"]
        if not args.quiet:
            print(f"submitted {session_id} (tenant {ack['tenant']}) "
                  f"to {args.url}", file=sys.stderr)
        if args.no_wait:
            print(json.dumps(ack, indent=2, sort_keys=True) if args.json
                  else session_id)
            return 0
        wire = client.wait(session_id, timeout=args.timeout)
    except ClientError as exc:
        print(f"repro submit: {exc}", file=sys.stderr)
        return 2
    except (OSError, TimeoutError) as exc:
        print(f"repro submit: {args.url}: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(wire, indent=2, sort_keys=True))
    else:
        print(_format_service_session(wire))
    if wire.get("state") == "failed":
        return 1
    report = wire.get("report") or {}
    return 0 if report.get("suggestions") else 2


def _cmd_status(args) -> int:
    """Inspect a running service: all sessions, or one in detail."""
    from .service.client import ClientError, ServiceClient

    client = ServiceClient(args.url)
    try:
        if args.session:
            if args.events:
                for wire in client.events(args.session):
                    print(json.dumps(wire, sort_keys=True, default=str))
                return 0
            wire = client.session(args.session)
            print(json.dumps(wire, indent=2, sort_keys=True) if args.json
                  else _format_service_session(wire))
            return 0
        sessions = client.sessions()
    except ClientError as exc:
        print(f"repro status: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro status: {args.url}: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(sessions, indent=2, sort_keys=True))
        return 0
    if not sessions:
        print("no sessions")
        return 0
    for row in sessions:
        error = f"  {row['error']}" if row.get("error") else ""
        print(f"{row['id']}  {row['tenant']:10s} {row['scenario']:4s} "
              f"{row['state']:8s} attempts={row['attempts']}{error}")
    return 0


def _cmd_scenarios_list(args) -> int:
    entries = []
    for name in sorted(SCENARIO_BUILDERS):
        scenario = build_scenario(name)
        entries.append({
            "name": name,
            "description": getattr(scenario, "description", ""),
            "symptom": getattr(getattr(scenario, "symptom", None),
                               "description", ""),
            "rules": len(scenario.program.rules),
            "trace_packets": len(scenario.trace()),
        })
    if args.json:
        print(json.dumps(entries, indent=2, sort_keys=True))
        return 0
    for entry in entries:
        print(f"{entry['name']:4s} {entry['description']}")
        print(f"     symptom: {entry['symptom']}")
        print(f"     {entry['rules']} rules, "
              f"{entry['trace_packets']} trace packets")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="meta-provenance repair pipeline (NSDI'17 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    repair = sub.add_parser(
        "repair", help="diagnose a scenario and print repair suggestions")
    repair.add_argument("scenario", type=str.upper, nargs="?", default=None,
                        help="registered scenario name (Q1..Q5); optional "
                             "when --config names one")
    _add_config_options(repair)
    repair.set_defaults(func=_cmd_repair)

    backtest = sub.add_parser(
        "backtest", help="print the full candidate verdict table")
    backtest.add_argument("scenario", type=str.upper, nargs="?", default=None)
    _add_config_options(backtest)
    backtest.set_defaults(func=_cmd_backtest)

    bench = sub.add_parser(
        "bench", help="time the pipeline stages for one scenario")
    bench.add_argument("--scenario", type=str.upper, default=None,
                       help="scenario to time (default: the --config's, "
                            "else Q1)")
    bench.add_argument("--repeat", type=int, default=3)
    _add_config_options(bench)
    bench.set_defaults(func=_cmd_bench)

    lint = sub.add_parser(
        "lint", help="statically analyse an NDlog program")
    lint.add_argument("target",
                      help="registered scenario name (Q1..Q5) or path to "
                           "an .ndlog source file")
    lint.add_argument("--candidates", metavar="FILE",
                      help="vet repair candidates from a JSON wire file "
                           "against the scenario's program")
    lint.add_argument("--json", action="store_true",
                      help="print findings (and vet verdicts) as JSON")
    lint.add_argument("--quiet", action="store_true",
                      help="no 'clean' confirmation on stderr")
    lint.set_defaults(func=_cmd_lint)

    trace = sub.add_parser(
        "trace", help="run the pipeline traced and write a Chrome "
                      "trace_event file")
    trace.add_argument("scenario", type=str.upper, nargs="?", default=None)
    trace.add_argument("--out", metavar="FILE", default="trace.json",
                       help="trace file to write (default: trace.json)")
    _add_config_options(trace)
    trace.set_defaults(func=_cmd_trace)

    stats = sub.add_parser(
        "stats", help="run the pipeline and print the metrics registry")
    stats.add_argument("scenario", type=str.upper, nargs="?", default=None)
    _add_config_options(stats)
    stats.set_defaults(func=_cmd_stats)

    events = sub.add_parser("events", help="event-log tooling")
    events_sub = events.add_subparsers(dest="events_command", required=True)
    summarize = events_sub.add_parser(
        "summarize", help="per-stage/per-candidate timing and veto/abort "
                          "tables from an --events JSONL log")
    summarize.add_argument("file", help="JSONL event log (from --events)")
    summarize.add_argument("--top", type=int, default=5, metavar="N",
                           help="slowest candidates to list (default 5)")
    summarize.add_argument("--json", action="store_true",
                           help="print the summary as JSON")
    summarize.set_defaults(func=_cmd_events_summarize)

    worker = sub.add_parser(
        "worker", help="join a socket coordinator as a backtest worker")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT")
    worker.set_defaults(func=_cmd_worker)

    serve = sub.add_parser(
        "serve", help="run the multi-tenant repair service "
                      "(coordinator daemon + HTTP front door)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="HTTP bind host (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8180,
                       help="HTTP front-door port (default 8180; "
                            "0 = ephemeral)")
    serve.add_argument("--daemon-host", default="127.0.0.1",
                       help="worker coordinator bind host")
    serve.add_argument("--daemon-port", type=int, default=0,
                       help="worker coordinator port (default 0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=2,
                       help="local repro-worker processes to spawn")
    serve.add_argument("--no-spawn-workers", action="store_true",
                       help="spawn no local workers (point remote "
                            "repro-worker processes at the daemon port)")
    serve.add_argument("--fault-plan", metavar="FILE", dest="fault_plan",
                       help="JSON FaultPlan armed against the fleet "
                            "(deterministic chaos reproduction)")
    serve.add_argument("--events", metavar="FILE",
                       help="append every session's event stream to FILE "
                            "as JSONL (session_id/tenant annotated)")
    serve.add_argument("--grace", type=float, default=10.0,
                       help="drain budget in seconds on SIGTERM/SIGINT")
    serve.add_argument("--quiet", action="store_true",
                       help="no per-request HTTP log on stderr")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a repair run to a repro serve front door")
    submit.add_argument("scenario", type=str.upper, nargs="?", default=None,
                        help="registered scenario name (Q1..Q5); optional "
                             "when --config names one")
    submit.add_argument("--url", default="http://127.0.0.1:8180",
                        help="service base URL "
                             "(default http://127.0.0.1:8180)")
    submit.add_argument("--tenant", default=None,
                        help="tenant the session is accounted to")
    submit.add_argument("--no-wait", action="store_true",
                        help="print the session id and return immediately")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="seconds to wait for completion")
    _add_config_options(submit)
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser(
        "status", help="inspect a repro serve service's sessions")
    status.add_argument("session", nargs="?", default=None,
                        help="session id (omit for the full listing)")
    status.add_argument("--url", default="http://127.0.0.1:8180",
                        help="service base URL")
    status.add_argument("--events", action="store_true",
                        help="print the session's event stream as JSONL")
    status.add_argument("--json", action="store_true",
                        help="print the raw wire as JSON")
    status.set_defaults(func=_cmd_status)

    scenarios = sub.add_parser("scenarios", help="scenario catalogue")
    scenarios_sub = scenarios.add_subparsers(dest="scenarios_command",
                                             required=True)
    listing = scenarios_sub.add_parser("list",
                                       help="list registered scenarios")
    listing.add_argument("--json", action="store_true")
    listing.set_defaults(func=_cmd_scenarios_list)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
