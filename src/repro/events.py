"""The session event stream: one typed bus for the whole repair pipeline.

Earlier PRs grew ad-hoc observation channels — a ``progress=`` callback on
the distributed coordinator, ``warm_hits`` counters read off backtester
objects, per-phase timing fields assembled by the debugger.  This module
unifies them: every stage of a :class:`~repro.api.session.RepairSession`
publishes typed :class:`SessionEvent` records on an :class:`EventBus`, and
any number of subscribers consume them — the live CLI renderer, a JSONL
log file (:class:`JsonlEventWriter`), a test capturing the stream, or a
dashboard on the other end of a socket.

Events are plain frozen dataclasses with a stable ``kind`` string and a
:meth:`SessionEvent.to_wire` JSON encoding, so the stream is as
wire-friendly as the job/candidate/scenario formats of
:mod:`repro.distrib`: a remote monitor needs nothing but ``json.loads``.

Subscribers must not raise: a broken observer should not kill a repair
run, so :meth:`EventBus.emit` isolates subscriber exceptions — but not
silently: each failure increments the ``bus_sink_errors`` metric on the
bus's :class:`~repro.obs.metrics.MetricsRegistry` and the *first* failure
of each sink emits a ``RuntimeWarning`` (all failures stay on
:attr:`EventBus.subscriber_errors` for tests and debugging).
"""

from __future__ import annotations

import dataclasses
import io
import json
import os
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, IO, List, Optional, Set, Tuple, Type

from .obs.metrics import MetricsRegistry

#: Registry of event dataclasses by their ``kind`` string (filled by
#: :func:`register_event`; used by :func:`event_from_wire`).
EVENT_KINDS: Dict[str, Type["SessionEvent"]] = {}


def register_event(cls):
    """Class decorator: index an event dataclass by its ``kind``."""
    EVENT_KINDS[cls.kind] = cls
    return cls


@dataclass(frozen=True)
class SessionEvent:
    """Base class for everything published on the bus."""

    #: Stable machine-readable discriminator, overridden per subclass.
    kind = "event"

    #: Trace correlation (empty when telemetry is off).  Stamped by the
    #: bus at emit time — see :attr:`EventBus.stamp` — so every event in a
    #: telemetry-enabled run carries the session's trace id and the span
    #: that was open when it fired.
    trace_id: str = ""
    span_id: str = ""

    def to_wire(self) -> Dict[str, object]:
        wire = {"kind": self.kind}
        wire.update(dataclasses.asdict(self))
        return wire

    def to_json(self) -> str:
        return json.dumps(self.to_wire(), sort_keys=True, default=str)


def event_from_wire(wire: Dict[str, object]) -> SessionEvent:
    """Rebuild a typed event from its :meth:`SessionEvent.to_wire` dict."""
    kind = wire.get("kind")
    cls = EVENT_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}")
    fields = {f.name for f in dataclasses.fields(cls)}
    # JSON has no tuples; sequence fields come back as lists.
    return cls(**{k: tuple(v) if isinstance(v, list) else v
                  for k, v in wire.items() if k in fields})


# ---------------------------------------------------------------------------
# The event hierarchy
# ---------------------------------------------------------------------------


@register_event
@dataclass(frozen=True)
class SessionStarted(SessionEvent):
    """A repair session began running its stage pipeline."""

    kind = "session_started"
    scenario: str = ""
    symptom: str = ""
    stages: Tuple[str, ...] = ()


@register_event
@dataclass(frozen=True)
class SessionFinished(SessionEvent):
    """The pipeline completed; headline numbers of the final report."""

    kind = "session_finished"
    scenario: str = ""
    generated: int = 0
    surviving: int = 0
    elapsed_seconds: float = 0.0


@register_event
@dataclass(frozen=True)
class StageStarted(SessionEvent):
    kind = "stage_started"
    stage: str = ""


@register_event
@dataclass(frozen=True)
class StageFinished(SessionEvent):
    kind = "stage_finished"
    stage: str = ""
    elapsed_seconds: float = 0.0


@register_event
@dataclass(frozen=True)
class CandidateFound(SessionEvent):
    """The explorer extracted one repair candidate (in cost order)."""

    kind = "candidate_found"
    index: int = 0
    total: int = 0
    tag: str = ""
    description: str = ""
    cost: float = 0.0


@register_event
@dataclass(frozen=True)
class BacktestProgress(SessionEvent):
    """One candidate's backtest completed (published in completion order)."""

    kind = "backtest_progress"
    done: int = 0
    total: int = 0
    description: str = ""
    accepted: bool = False
    effective: bool = False
    ks_statistic: float = 0.0
    aborted: bool = False
    #: Wall-clock seconds spent evaluating this candidate (0.0 when the
    #: producing path did not measure it).
    elapsed_seconds: float = 0.0


@register_event
@dataclass(frozen=True)
class CandidateAborted(SessionEvent):
    """The early-abort policy killed a candidate's replay mid-trace."""

    kind = "candidate_aborted"
    description: str = ""
    note: str = ""


@register_event
@dataclass(frozen=True)
class CandidateVetoed(SessionEvent):
    """Static analysis rejected a candidate before any replay ran."""

    kind = "candidate_vetoed"
    description: str = ""
    reason: str = ""
    note: str = ""


@register_event
@dataclass(frozen=True)
class CandidateQuarantined(SessionEvent):
    """The fabric gave up on a candidate after exhausting its retries.

    The candidate still appears in the report — as a deterministic,
    flatly rejected result carrying a ``quarantined(<reason>)`` note —
    so one poisonous candidate cannot kill a thousand-candidate run.
    ``reason`` is the machine-readable failure class
    (``worker-exception`` / ``worker-crash`` / ``deadline`` /
    ``disconnect`` / ``frame-error``).
    """

    kind = "candidate_quarantined"
    index: int = 0
    description: str = ""
    reason: str = ""
    attempts: int = 0


@register_event
@dataclass(frozen=True)
class FabricFaultStats(SessionEvent):
    """Fault-recovery counters for one fabric job (emitted only when any
    recovery action actually fired, so fault-free runs keep an unchanged
    event stream).

    ``retry_reasons`` is a compact ``reason=count`` listing (sorted,
    comma-separated) rather than a nested mapping so the event stays a
    flat wire-friendly record.
    """

    kind = "fabric_fault_stats"
    worker_restarts: int = 0
    job_retries: int = 0
    retry_reasons: str = ""
    quarantined: int = 0
    frame_errors: int = 0
    degraded: bool = False


@register_event
@dataclass(frozen=True)
class WarmEngineStats(SessionEvent):
    """Static-analysis and warm-path counters after a backtest stage.

    Besides the warm-engine hit counters this carries the other two
    "work the analysis saved" numbers: candidates vetoed before replay
    and the inert-probe hit/miss counts of the warm controller (local
    paths only; the fields default to zero so old wire records decode)."""

    kind = "warm_engine_stats"
    hits: int = 0
    fallbacks: int = 0
    vetoed: int = 0
    probe_hits: int = 0
    probe_misses: int = 0
    #: Shared rule-plan cache traffic during the stage (process-wide
    #: :data:`repro.ndlog.plan.PLAN_CACHE` delta): near-identical candidate
    #: programs should hit almost every rule.
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0


# ---------------------------------------------------------------------------
# The bus and stock subscribers
# ---------------------------------------------------------------------------

Subscriber = Callable[[SessionEvent], None]


class EventBus:
    """Synchronous fan-out of session events to any number of subscribers.

    Emission never raises on behalf of a subscriber; failures are recorded
    on :attr:`subscriber_errors`, counted in the ``bus_sink_errors``
    metric on :attr:`metrics`, and warned about once per sink — so
    observability cannot break the run but broken observers are no longer
    invisible.  The bus also keeps an optional bounded :attr:`history`
    (handy for tests and post-run summaries); once ``history_limit`` is
    exceeded the *oldest* events are dropped, so the tail —
    ``session_finished``, warm-engine statistics — survives long runs.
    Disable with ``keep_history=False``.
    """

    def __init__(self, keep_history: bool = True, history_limit: int = 10_000,
                 metrics: Optional[MetricsRegistry] = None):
        self._subscribers: List[Subscriber] = []
        self.keep_history = keep_history
        self.history_limit = history_limit
        self.history: "deque[SessionEvent]" = deque(maxlen=history_limit)
        self.subscriber_errors: List[Tuple[Subscriber, BaseException]] = []
        #: Where ``bus_sink_errors`` is counted; a telemetry-enabled
        #: session points this at its own registry so sink failures show
        #: up in ``repro stats``.
        self.metrics: MetricsRegistry = metrics or MetricsRegistry()
        #: Optional hook applied to every event before fan-out (telemetry
        #: uses it to stamp trace/span ids).
        self.stamp: Optional[Callable[[SessionEvent], SessionEvent]] = None
        self._warned_sinks: Set[int] = set()

    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        """Register a callable; returns it (usable as a decorator)."""
        self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        self._subscribers.remove(subscriber)

    def emit(self, event: SessionEvent) -> None:
        if self.stamp is not None:
            event = self.stamp(event)
        if self.keep_history:
            self.history.append(event)
        for subscriber in list(self._subscribers):
            try:
                subscriber(event)
            except Exception as exc:   # noqa: BLE001 — observers must not kill runs
                self.subscriber_errors.append((subscriber, exc))
                self._record_sink_error(subscriber, exc)

    def _record_sink_error(self, subscriber: Subscriber,
                           exc: BaseException) -> None:
        name = (getattr(subscriber, "__qualname__", None)
                or type(subscriber).__name__)
        self.metrics.counter("bus_sink_errors", sink=name).inc()
        key = id(subscriber)
        if key not in self._warned_sinks:
            self._warned_sinks.add(key)
            warnings.warn(
                f"event sink {name} raised {exc!r}; suppressing further "
                f"warnings from this sink (failures are still counted in "
                f"the bus_sink_errors metric)", RuntimeWarning,
                stacklevel=3)

    def of_kind(self, kind: str) -> List[SessionEvent]:
        """History filter: all recorded events with the given ``kind``."""
        return [event for event in self.history if event.kind == kind]


class JsonlEventWriter:
    """Subscriber that appends one JSON line per event to a stream.

    On ``session_finished`` the writer flushes *and* fsyncs the stream
    (``sync_on_finish``), so a reader tailing the log of a live run —
    ``repro events summarize`` against another process's ``--events``
    file — never sees a truncated final line: by the time the session
    reports itself finished, its whole stream is durably on disk.
    """

    def __init__(self, stream: IO[str], flush: bool = True,
                 sync_on_finish: bool = True):
        self.stream = stream
        self.flush = flush
        self.sync_on_finish = sync_on_finish

    def __call__(self, event: SessionEvent) -> None:
        self.stream.write(event.to_json() + "\n")
        if self.flush:
            self.stream.flush()
        if self.sync_on_finish and event.kind == "session_finished":
            self.sync()

    def sync(self) -> None:
        """Flush, then fsync when the stream is a real file (best effort:
        pipes, sockets and StringIO buffers flush only)."""
        self.stream.flush()
        try:
            os.fsync(self.stream.fileno())
        except (AttributeError, OSError, ValueError, io.UnsupportedOperation):
            pass


def progress_to_events(bus: EventBus) -> Callable:
    """Adapt the legacy ``progress(done, total, result)`` callback shape.

    Returns a callback that republishes each completed backtest result as a
    :class:`BacktestProgress` event — the bridge by which pre-event-bus
    call sites (and the distributed coordinator's worker streams) feed the
    unified stream.
    """

    def progress(done: int, total: int, result) -> None:
        note = next((n for n in getattr(result, "notes", ())
                     if str(n).startswith("aborted")), None)
        bus.emit(BacktestProgress(
            done=done, total=total,
            description=result.candidate.description if result.candidate else "",
            accepted=result.accepted, effective=result.effective,
            ks_statistic=result.ks.statistic, aborted=note is not None,
            elapsed_seconds=getattr(result, "elapsed_seconds", 0.0)))
        if note is not None:
            bus.emit(CandidateAborted(
                description=(result.candidate.description
                             if result.candidate else ""),
                note=str(note)))

    return progress
