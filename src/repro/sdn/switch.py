"""Switches, flow tables and flow entries.

A flow entry matches on a subset of header fields (missing fields are
wildcards) and carries an action: forward out of a port, drop, or send to the
controller.  Matching follows OpenFlow conventions: the highest-priority
matching entry wins; a table miss sends the packet to the controller.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .packets import Packet


#: Pseudo "ports" with special meaning in actions.
DROP_PORT = -1
CONTROLLER_PORT = -2
FLOOD_PORT = -3

#: Header fields a flow entry may match on.
MATCH_FIELDS = ("src_ip", "dst_ip", "src_port", "dst_port", "proto",
                "src_mac", "dst_mac", "in_port")

_entry_ids = itertools.count(1)


@dataclass(frozen=True)
class FlowEntry:
    """A single flow-table entry.

    ``match`` maps field names (from :data:`MATCH_FIELDS`, plus ``in_port``)
    to required values; fields not present are wildcarded.  ``out_port`` is a
    physical port number, or one of the special pseudo ports.  ``tags`` is
    used by multi-query backtesting (Section 4.4) to restrict an entry to a
    subset of repair candidates; an empty tag set means "all candidates".
    """

    match: Tuple[Tuple[str, object], ...]
    out_port: int
    priority: int = 1
    tags: Tuple[str, ...] = ()
    entry_id: int = field(default_factory=lambda: next(_entry_ids))

    @classmethod
    def create(cls, match: Dict[str, object], out_port: int, priority: int = 1,
               tags: Iterable[str] = ()) -> "FlowEntry":
        for field_name in match:
            if field_name not in MATCH_FIELDS:
                raise ValueError(f"unknown match field {field_name!r}")
        return cls(match=tuple(sorted(match.items())), out_port=out_port,
                   priority=priority, tags=tuple(tags))

    def match_dict(self) -> Dict[str, object]:
        return dict(self.match)

    def matches(self, packet: Packet, in_port: Optional[int] = None) -> bool:
        header = packet.header()
        header["in_port"] = in_port
        for field_name, value in self.match:
            if value == "*":
                continue
            if header.get(field_name) != value:
                return False
        return True

    def is_drop(self) -> bool:
        return self.out_port == DROP_PORT

    def __str__(self):
        match = ", ".join(f"{k}={v}" for k, v in self.match) or "any"
        action = {DROP_PORT: "drop", CONTROLLER_PORT: "to-controller",
                  FLOOD_PORT: "flood"}.get(self.out_port, f"fwd({self.out_port})")
        tag = f" tags={list(self.tags)}" if self.tags else ""
        return f"FlowEntry[{match} -> {action} prio={self.priority}{tag}]"


class FlowTable:
    """A priority-ordered collection of flow entries.

    Lookups are indexed by *exact-match signature*: entries that wildcard no
    field are grouped by the tuple of fields they match on, and within each
    group hashed on their match values, so a lookup probes one bucket per
    distinct signature instead of scanning the whole table.  Entries with a
    ``*`` wildcard value go to a small residual list that is still scanned
    linearly (reactive programs install them rarely — e.g. the Q5
    MAC-learning heads).  Data-plane forwarding dominates replay cost, which
    makes this the difference between O(table) and O(signatures) per packet.

    The index is rebuilt lazily after mutations; semantics are identical to
    the original linear scan, including the deterministic tie-break.
    """

    def __init__(self, entries: Optional[Iterable[FlowEntry]] = None):
        self._entries: List[FlowEntry] = list(entries or [])
        #: signature (ordered field names) -> match values -> [(pos, entry)]
        self._exact: Dict[Tuple[str, ...],
                          Dict[Tuple, List[Tuple[int, FlowEntry]]]] = {}
        #: [(pos, entry)] for entries with wildcard ("*") values
        self._residual: List[Tuple[int, FlowEntry]] = []
        self._dirty = bool(self._entries)

    def install(self, entry: FlowEntry) -> FlowEntry:
        """Install an entry, de-duplicating exact duplicates.

        Overlapping entries with the same match but different actions are
        allowed to co-exist (as in OpenFlow); lookups resolve ties in favour
        of the entry installed first, which keeps forwarding deterministic.
        """
        self._entries = [
            existing for existing in self._entries
            if not (existing.match == entry.match
                    and existing.priority == entry.priority
                    and existing.out_port == entry.out_port
                    and existing.tags == entry.tags)
        ]
        self._entries.append(entry)
        self._dirty = True
        return entry

    def remove_where(self, predicate) -> int:
        before = len(self._entries)
        self._entries = [e for e in self._entries if not predicate(e)]
        self._dirty = True
        return before - len(self._entries)

    def clear(self):
        self._entries.clear()
        self._dirty = True

    def entries(self) -> List[FlowEntry]:
        return list(self._entries)

    def _rebuild_index(self) -> None:
        self._exact = {}
        self._residual = []
        for position, entry in enumerate(self._entries):
            if any(value == "*" for _field, value in entry.match):
                self._residual.append((position, entry))
                continue
            signature = tuple(name for name, _value in entry.match)
            key = tuple(value for _name, value in entry.match)
            bucket = self._exact.setdefault(signature, {})
            bucket.setdefault(key, []).append((position, entry))
        self._dirty = False

    def lookup(self, packet: Packet, in_port: Optional[int] = None,
               tag: Optional[str] = None) -> Optional[FlowEntry]:
        """Return the best matching entry, or ``None`` on a table miss.

        When ``tag`` is given (multi-query backtesting), only entries whose
        tag set is empty or contains the tag are considered.  The winner is
        the highest-priority match; among equal priorities the entry
        installed first wins, exactly as the pre-index linear scan did.
        """
        if self._dirty:
            self._rebuild_index()
        header = packet.header()
        header["in_port"] = in_port
        best: Optional[FlowEntry] = None
        best_rank = None
        for signature, buckets in self._exact.items():
            key = tuple(header.get(name) for name in signature)
            for position, entry in buckets.get(key, ()):
                if tag is not None and entry.tags and tag not in entry.tags:
                    continue
                if tag is None and entry.tags:
                    continue
                rank = (entry.priority, -position)
                if best_rank is None or rank > best_rank:
                    best, best_rank = entry, rank
        for position, entry in self._residual:
            if tag is not None and entry.tags and tag not in entry.tags:
                continue
            if tag is None and entry.tags:
                continue
            if not entry.matches(packet, in_port):
                continue
            rank = (entry.priority, -position)
            if best_rank is None or rank > best_rank:
                best, best_rank = entry, rank
        return best

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)


@dataclass
class Switch:
    """A simulated OpenFlow switch."""

    switch_id: int
    flow_table: FlowTable = field(default_factory=FlowTable)
    #: port number -> ("switch", switch_id) or ("host", host_id)
    ports: Dict[int, Tuple[str, int]] = field(default_factory=dict)
    name: str = ""

    def __post_init__(self):
        if not self.name:
            self.name = f"S{self.switch_id}"

    def attach(self, port: int, kind: str, identifier: int):
        if kind not in ("switch", "host"):
            raise ValueError(f"unknown attachment kind {kind!r}")
        self.ports[port] = (kind, identifier)

    def neighbor(self, port: int) -> Optional[Tuple[str, int]]:
        return self.ports.get(port)

    def port_to(self, kind: str, identifier: int) -> Optional[int]:
        for port, (neighbor_kind, neighbor_id) in self.ports.items():
            if neighbor_kind == kind and neighbor_id == identifier:
                return port
        return None

    def install(self, entry: FlowEntry) -> FlowEntry:
        return self.flow_table.install(entry)

    def lookup(self, packet: Packet, in_port: Optional[int] = None,
               tag: Optional[str] = None) -> Optional[FlowEntry]:
        return self.flow_table.lookup(packet, in_port, tag)

    def __str__(self):
        return f"{self.name}(ports={sorted(self.ports)}, entries={len(self.flow_table)})"
