"""Workload generation.

The paper's evaluation replays two campus traffic traces (Benson et al.,
IMC 2010) on 1-16 hosts and generates a mix of ICMP ping and HTTP web
traffic on the remaining hosts.  Those traces are not redistributable, so
this module generates a synthetic campus-like workload with the properties
the experiments rely on:

* a protocol mix dominated by web traffic, with a DNS and ICMP component;
* heavy-tailed flow sizes (a few large flows, many small ones);
* many distinct client source addresses spread across edge networks;
* deterministic output for a given seed, so backtests are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .packets import DNS_PORT, HTTP_PORT, Packet, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from .topology import Host, Topology


@dataclass
class TrafficProfile:
    """Mix parameters for the synthetic campus workload."""

    web_fraction: float = 0.70
    dns_fraction: float = 0.15
    icmp_fraction: float = 0.15
    #: Pareto shape for flow sizes (packets per flow); smaller = heavier tail.
    flow_size_alpha: float = 1.3
    max_flow_size: int = 40
    ephemeral_port_range: Tuple[int, int] = (32768, 60999)

    def normalised(self) -> "TrafficProfile":
        total = self.web_fraction + self.dns_fraction + self.icmp_fraction
        if total <= 0:
            raise ValueError("traffic profile fractions must sum to a positive value")
        return TrafficProfile(
            web_fraction=self.web_fraction / total,
            dns_fraction=self.dns_fraction / total,
            icmp_fraction=self.icmp_fraction / total,
            flow_size_alpha=self.flow_size_alpha,
            max_flow_size=self.max_flow_size,
            ephemeral_port_range=self.ephemeral_port_range,
        )


class TrafficGenerator:
    """Generates deterministic synthetic traces over a topology."""

    def __init__(self, topology: Topology, seed: int = 7,
                 profile: Optional[TrafficProfile] = None):
        self.topology = topology
        self.random = random.Random(seed)
        self.profile = (profile or TrafficProfile()).normalised()

    # ------------------------------------------------------------------
    # Host selection helpers
    # ------------------------------------------------------------------

    def _clients(self) -> List[Host]:
        clients = self.topology.hosts_with_role("client")
        return clients or list(self.topology.hosts.values())

    def _servers(self, role: str) -> List[Host]:
        servers = self.topology.hosts_with_role(role)
        if servers:
            return servers
        return self._clients()[:1]

    def _ingress_switch(self, client: Host) -> int:
        return client.switch_id

    def _flow_size(self) -> int:
        size = int(self.random.paretovariate(self.profile.flow_size_alpha))
        return max(1, min(size, self.profile.max_flow_size))

    def _ephemeral_port(self) -> int:
        low, high = self.profile.ephemeral_port_range
        return self.random.randint(low, high)

    # ------------------------------------------------------------------
    # Trace generation
    # ------------------------------------------------------------------

    def generate(self, packet_count: int) -> List[Tuple[int, Packet]]:
        """Generate a trace of (ingress switch, packet) pairs."""
        trace: List[Tuple[int, Packet]] = []
        clients = self._clients()
        web_servers = self._servers("web")
        dns_servers = self._servers("dns")
        while len(trace) < packet_count:
            kind = self.random.random()
            client = self.random.choice(clients)
            ingress = self._ingress_switch(client)
            if kind < self.profile.web_fraction:
                server = self.random.choice(web_servers)
                src_port = self._ephemeral_port()
                for _ in range(self._flow_size()):
                    if len(trace) >= packet_count:
                        break
                    trace.append((ingress, Packet(
                        src_ip=client.ip, dst_ip=server.ip, src_port=src_port,
                        dst_port=HTTP_PORT, proto=PROTO_TCP,
                        src_mac=client.mac, dst_mac=server.mac)))
            elif kind < self.profile.web_fraction + self.profile.dns_fraction:
                server = self.random.choice(dns_servers)
                trace.append((ingress, Packet(
                    src_ip=client.ip, dst_ip=server.ip,
                    src_port=self._ephemeral_port(), dst_port=DNS_PORT,
                    proto=PROTO_UDP, src_mac=client.mac, dst_mac=server.mac)))
            else:
                other = self.random.choice(clients + web_servers)
                trace.append((ingress, Packet(
                    src_ip=client.ip, dst_ip=other.ip, proto=PROTO_ICMP,
                    src_mac=client.mac, dst_mac=other.mac)))
        return trace

    def generate_flows(self, flow_count: int) -> List[Tuple[int, Packet]]:
        """Generate roughly ``flow_count`` flows (variable packet count)."""
        trace: List[Tuple[int, Packet]] = []
        for _ in range(flow_count):
            trace.extend(self.generate(self._flow_size()))
        return trace


def replayed_trace(trace: Sequence[Tuple[int, Packet]],
                   repetitions: int) -> List[Tuple[int, Packet]]:
    """Concatenate a trace with itself ``repetitions`` times.

    Mirrors the paper's setup where a captured trace is "replayed
    continuously during the course of the experiments".
    """
    out: List[Tuple[int, Packet]] = []
    for _ in range(max(1, repetitions)):
        out.extend(trace)
    return out


def protocol_mix(trace: Iterable[Tuple[int, Packet]]) -> Dict[str, int]:
    """Histogram of protocols in a trace (used by tests and benchmarks)."""
    counts: Dict[str, int] = {"web": 0, "dns": 0, "icmp": 0, "other": 0}
    for _, packet in trace:
        if packet.proto == PROTO_ICMP:
            counts["icmp"] += 1
        elif packet.dst_port == HTTP_PORT:
            counts["web"] += 1
        elif packet.dst_port == DNS_PORT:
            counts["dns"] += 1
        else:
            counts["other"] += 1
    return counts
