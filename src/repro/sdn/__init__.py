"""Simulated SDN substrate (the reproduction's Mininet/OpenFlow substitute).

Provides the data plane (switches, flow tables, links, hosts), the control
channel (PacketIn / FlowMod / PacketOut), topology builders including a
Stanford-campus-like network, a synthetic campus traffic generator, and the
historical log that meta provenance and backtesting replay.
"""

from .controller import (
    ControlMessage,
    Controller,
    FlowMod,
    PacketInEvent,
    PacketOut,
    RecordingController,
    StaticController,
)
from .log import DeliveryRecord, HistoricalLog, LOG_ENTRY_BYTES, PacketRecord
from .network import NetworkSimulator, TrafficStats, clear_reactive_state
from .packets import (
    DNS_PORT,
    HTTP_PORT,
    Packet,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    dns_query,
    format_ip,
    http_request,
    icmp_ping,
)
from .switch import (
    CONTROLLER_PORT,
    DROP_PORT,
    FLOOD_PORT,
    FlowEntry,
    FlowTable,
    MATCH_FIELDS,
    Switch,
)
from .topology import Host, Topology, figure1_topology, scaled_campus, stanford_campus
from .traffic import TrafficGenerator, TrafficProfile, protocol_mix, replayed_trace

__all__ = [
    "ControlMessage", "Controller", "FlowMod", "PacketInEvent", "PacketOut",
    "RecordingController", "StaticController",
    "DeliveryRecord", "HistoricalLog", "LOG_ENTRY_BYTES", "PacketRecord",
    "NetworkSimulator", "TrafficStats", "clear_reactive_state",
    "DNS_PORT", "HTTP_PORT", "Packet", "PROTO_ICMP", "PROTO_TCP", "PROTO_UDP",
    "dns_query", "format_ip", "http_request", "icmp_ping",
    "CONTROLLER_PORT", "DROP_PORT", "FLOOD_PORT", "FlowEntry", "FlowTable",
    "MATCH_FIELDS", "Switch",
    "Host", "Topology", "figure1_topology", "scaled_campus", "stanford_campus",
    "TrafficGenerator", "TrafficProfile", "protocol_mix", "replayed_trace",
]
